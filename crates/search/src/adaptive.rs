//! Corpus-guided adaptive search: explore huge candidate spaces
//! without enumerating them, then (when the space is small enough)
//! *prove* the answer exact with a screened verification sweep.
//!
//! The engine layers on the streaming evaluator's per-index pipeline
//! ([`crate::evaluate::Evaluator`]) and runs in three phases:
//!
//! 1. **Seed**: deterministic random probes establish an initial
//!    corpus of scored candidates.
//! 2. **Exploration rounds**: a power schedule ([`crate::power`])
//!    picks frontier parents, mutation operators ([`crate::mutate`])
//!    propose neighbors and lattice jumps, and each round's batch is
//!    screened against the current top-k's worst key before anything
//!    is fully simulated. Rounds are *generation-synchronous* — the
//!    batch is fixed before workers touch it, results merge in index
//!    order — so a fixed `--seed` replays byte-identical reports and
//!    counters on any thread count.
//! 3. **Verification sweep**: on spaces under [`SWEEP_CAP`], the
//!    remaining unvisited indices are screened against the *final*
//!    top-k threshold (a fixed bound, so evaluation decisions stay
//!    deterministic) and the survivors scored. When the sweep
//!    completes, every grid point was either scored or provably
//!    dominated, so the report **equals the exhaustive top-k
//!    exactly** — that is [`AdaptiveOutcome::Exact`].
//!
//! The full-evaluation budget ([`crate::SearchOptions::budget`]) is
//! checked between batches: exhausting it ends the run with the typed
//! [`AdaptiveOutcome::BudgetExhausted`] marker and the best results
//! found — a partial answer, never an error.

use crate::corpus::Corpus;
use crate::error::SearchError;
use crate::evaluate::{
    bounded_push, finish_bounded, pruned_order, rejected_order, CandidateResult, EngineOutcome,
    Evaluator, IndexOutcome, RejectedCandidate,
};
use crate::power::{self, SplitMix64};
use crate::prune::{PruneStats, PrunedCandidate};
use crate::report::rank_cmp;
use crate::{mutate, SearchOptions, SearchProgress};
use lumos_cost::CostModel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Default full-evaluation budget when `--budget` is not given.
const DEFAULT_BUDGET: usize = 4096;

/// Largest space the verification sweep will walk. Above this the run
/// reports [`AdaptiveOutcome::Unverified`]: screening four million
/// indices is seconds of work, screening a billion is not.
const SWEEP_CAP: usize = 4_000_000;

/// Random probes seeding the corpus.
const SEED_PROBES: usize = 64;

/// Frontier parents mutated per exploration round.
const ROUND_PARENTS: usize = 12;

/// Best-scored candidates the frontier retains as mutation parents.
const FRONTIER_CAP: usize = 64;

/// Verification-sweep chunk: the budget is re-checked between chunks,
/// so overshoot is bounded by one chunk's evaluations.
const SWEEP_CHUNK: usize = 16_384;

/// Consecutive exploration rounds allowed to complete zero full
/// evaluations before the engine stops exploring. On spaces whose
/// feasible region is a vanishing fraction of the grid (huge axes,
/// tight GPU budget), random probing could otherwise spin for
/// millions of rounds without ever draining the evaluation budget.
const MAX_DRY_ROUNDS: usize = 64;

/// How an adaptive run terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveOutcome {
    /// Every grid point was either fully scored or provably excluded
    /// by the analytic screen: the reported top-k equals the
    /// exhaustive top-k exactly.
    Exact,
    /// The evaluation budget ran out before the verification sweep
    /// completed. The results are the best candidates found — a valid
    /// partial answer, not proven optimal.
    BudgetExhausted,
    /// The space exceeds the verification-sweep cap, so exactness was
    /// never on the table: results are the best found within budget
    /// (the expected mode on billion-candidate spaces).
    Unverified,
}

impl std::fmt::Display for AdaptiveOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AdaptiveOutcome::Exact => "exact",
            AdaptiveOutcome::BudgetExhausted => "budget-exhausted",
            AdaptiveOutcome::Unverified => "unverified",
        })
    }
}

/// Accounting of one adaptive run, reported alongside the ranking.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveReport {
    /// How the run terminated (see [`AdaptiveOutcome`]).
    pub outcome: AdaptiveOutcome,
    /// Total grid points in the searched space.
    pub grid_points: usize,
    /// Distinct grid indices decoded (probes, mutations, sweep).
    pub visited: usize,
    /// Mutation proposals the power schedule issued.
    pub mutations: usize,
    /// Frontier size at termination.
    pub frontier: usize,
    /// Exploration rounds run after seeding.
    pub rounds: usize,
    /// The effective full-evaluation budget.
    pub budget: usize,
    /// The RNG seed; re-running with it replays the identical search.
    pub seed: u64,
}

impl AdaptiveReport {
    /// Visited share of the grid as a percentage (0 on empty grids —
    /// never divides by zero).
    pub fn visited_percent(&self) -> f64 {
        if self.grid_points == 0 {
            0.0
        } else {
            self.visited as f64 * 100.0 / self.grid_points as f64
        }
    }
}

/// Merged, deterministically ordered state accumulated batch by batch.
struct Aggregate {
    results: Vec<CandidateResult>,
    pruned: Vec<PrunedCandidate>,
    rejected: Vec<RejectedCandidate>,
    stats: PruneStats,
}

impl Aggregate {
    /// Folds one batch's index-ordered outcomes in; scored feasible
    /// candidates also enter the corpus frontier.
    fn apply(
        &mut self,
        outcomes: Vec<(usize, IndexOutcome)>,
        corpus: &mut Corpus,
        opts: &SearchOptions,
    ) {
        for (index, outcome) in outcomes {
            self.stats.enumerated += 1;
            match outcome {
                IndexOutcome::Lattice(crate::RejectReason::Budget) => {
                    self.stats.budget_rejects += 1;
                }
                IndexOutcome::Lattice(crate::RejectReason::Divisibility) => {
                    self.stats.divisibility_rejects += 1;
                }
                IndexOutcome::Lattice(crate::RejectReason::Structural) => {
                    self.stats.structural_rejects += 1;
                }
                IndexOutcome::MemoryPruned(pruned) => {
                    self.stats.memory_pruned += 1;
                    bounded_push(&mut self.pruned, pruned, opts.top_k, pruned_order);
                }
                IndexOutcome::BoundSkipped => self.stats.bound_skipped += 1,
                IndexOutcome::Failed(_) => unreachable!("batch errors handled before apply"),
                IndexOutcome::Scored(result) => {
                    self.stats.evaluated += 1;
                    let result = *result;
                    match result.infeasibility.clone() {
                        Some(reason) => {
                            self.stats.infeasible += 1;
                            bounded_push(
                                &mut self.rejected,
                                RejectedCandidate {
                                    candidate: result.candidate,
                                    label: result.label.clone(),
                                    index,
                                    reason,
                                },
                                opts.top_k,
                                rejected_order,
                            );
                        }
                        None => {
                            corpus.insert(index, opts.objective.key(&result));
                            self.results.push(result);
                        }
                    }
                }
            }
        }
        self.results.sort_by(|a, b| rank_cmp(a, b, opts.objective));
        if let Some(k) = opts.top_k {
            self.results.truncate(k.max(FRONTIER_CAP));
        }
    }

    /// The screen threshold: the k-th best key once k feasible results
    /// exist (`None` before that, or under unbounded retention, where
    /// skipping must stay disabled to keep the full ranking exact).
    fn threshold(&self, opts: &SearchOptions) -> Option<f64> {
        let k = opts.top_k?;
        if k == 0 || self.results.len() < k {
            return None;
        }
        Some(opts.objective.key(&self.results[k - 1]))
    }
}

/// Runs the corpus-guided adaptive search. Returns the engine outcome
/// (same shape the exhaustive walk produces, so refinement and
/// reporting compose unchanged) plus the adaptive accounting.
pub(crate) fn run_adaptive<C>(
    calib: &crate::SearchCalibration<C>,
    spec: &crate::SpaceSpec,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<(EngineOutcome, AdaptiveReport), SearchError>
where
    C: CostModel + Send + Sync,
{
    let evaluator = Evaluator::new(calib, spec, opts);
    let total = evaluator.grid().total();
    let budget = opts.budget.unwrap_or(DEFAULT_BUDGET).max(1);
    let threads = crate::parallel::effective_threads(opts.threads, total);
    let mut rng = SplitMix64::new(opts.seed);
    let mut corpus = Corpus::new(FRONTIER_CAP);
    let mut agg = Aggregate {
        results: Vec::new(),
        pruned: Vec::new(),
        rejected: Vec::new(),
        stats: PruneStats::default(),
    };
    let mut mutations = 0usize;
    let mut rounds = 0usize;

    // Phase 1 — seed probes. Tiny spaces are claimed whole (the
    // sweep would visit them anyway); larger ones get deterministic
    // random probes.
    let mut batch: Vec<usize> = Vec::new();
    if total <= SEED_PROBES {
        for index in 0..total {
            corpus.mark_visited(index);
            batch.push(index);
        }
    } else {
        let mut tries = 0;
        while batch.len() < SEED_PROBES && tries < SEED_PROBES * 8 {
            tries += 1;
            let probe = rng.below(total);
            if corpus.mark_visited(probe) {
                batch.push(probe);
            }
        }
    }
    let outcomes = process_batch(&evaluator, &batch, None, threads, opts, deadline)?;
    agg.apply(outcomes, &mut corpus, opts);
    report_progress(opts, total, &corpus, &agg);

    // Phase 2 — power-scheduled exploration rounds.
    let mut dry_rounds = 0usize;
    while agg.stats.evaluated < budget && corpus.visited_len() < total {
        if dry_rounds >= MAX_DRY_ROUNDS {
            break;
        }
        rounds += 1;
        let evaluated_before = agg.stats.evaluated;
        let mut batch: Vec<usize> = Vec::new();
        for _ in 0..ROUND_PARENTS {
            let Some(pos) = power::pick_parent(&corpus, &mut rng) else {
                break;
            };
            corpus.record_trial(pos);
            let parent = corpus.frontier()[pos].index;
            let mut proposals = Vec::new();
            mutate::propose(evaluator.grid(), parent, &mut rng, &mut proposals);
            mutations += proposals.len();
            for proposal in proposals {
                if corpus.mark_visited(proposal) {
                    batch.push(proposal);
                }
            }
        }
        // Escape hatch: the frontier is empty (nothing feasible found
        // yet) or every proposal was already visited — fall back to
        // fresh random probes.
        if batch.is_empty() {
            let mut tries = 0;
            while batch.len() < SEED_PROBES && tries < SEED_PROBES * 8 {
                tries += 1;
                let probe = rng.below(total);
                if corpus.mark_visited(probe) {
                    batch.push(probe);
                }
            }
        }
        if batch.is_empty() {
            // Sampling can no longer find unvisited points; the sweep
            // below covers whatever remains.
            break;
        }
        let screen = agg.threshold(opts);
        let outcomes = process_batch(&evaluator, &batch, screen, threads, opts, deadline)?;
        agg.apply(outcomes, &mut corpus, opts);
        report_progress(opts, total, &corpus, &agg);
        if agg.stats.evaluated == evaluated_before {
            dry_rounds += 1;
        } else {
            dry_rounds = 0;
        }
    }

    // Phase 3 — verification sweep under a *fixed* threshold (the
    // final adaptive top-k's worst key), so which candidates get
    // evaluated does not depend on worker interleaving.
    let outcome_kind = if corpus.visited_len() == total {
        AdaptiveOutcome::Exact
    } else if total > SWEEP_CAP {
        AdaptiveOutcome::Unverified
    } else {
        let screen = agg.threshold(opts);
        let mut exact = true;
        let mut start = 0usize;
        while start < total {
            if agg.stats.evaluated >= budget {
                exact = false;
                break;
            }
            let end = (start + SWEEP_CHUNK).min(total);
            let chunk: Vec<usize> = (start..end).filter(|&i| corpus.mark_visited(i)).collect();
            if !chunk.is_empty() {
                let outcomes = process_batch(&evaluator, &chunk, screen, threads, opts, deadline)?;
                agg.apply(outcomes, &mut corpus, opts);
                report_progress(opts, total, &corpus, &agg);
            }
            start = end;
        }
        if exact {
            AdaptiveOutcome::Exact
        } else {
            AdaptiveOutcome::BudgetExhausted
        }
    };

    let mut stats = agg.stats;
    stats.visited = corpus.visited_len();
    stats.mutations = mutations;
    stats.frontier = corpus.frontier_len();
    if stats.memory_pruned + stats.bound_skipped + stats.evaluated == 0 {
        return Err(SearchError::EmptySpace {
            enumerated: stats.enumerated,
            rejected: stats.budget_rejects + stats.divisibility_rejects + stats.structural_rejects,
        });
    }

    let mut results = agg.results;
    results.sort_by(|a, b| rank_cmp(a, b, opts.objective));
    if let Some(k) = opts.top_k {
        results.truncate(k);
    }
    let mut pruned = agg.pruned;
    let mut rejected = agg.rejected;
    finish_bounded(&mut pruned, opts.top_k, pruned_order);
    finish_bounded(&mut rejected, opts.top_k, rejected_order);

    let report = AdaptiveReport {
        outcome: outcome_kind,
        grid_points: total,
        visited: stats.visited,
        mutations,
        frontier: stats.frontier,
        rounds,
        budget,
        seed: opts.seed,
    };
    Ok((
        EngineOutcome {
            results,
            pruned,
            rejected,
            stats,
            memo: evaluator.memo_stats(),
            threads,
        },
        report,
    ))
}

/// Scores one fixed batch of grid indices in parallel and returns the
/// outcomes sorted by index. Generation-synchronous: the batch is
/// immutable while workers run, and the merge order is independent of
/// which worker processed what.
fn process_batch<C>(
    evaluator: &Evaluator<'_, C>,
    batch: &[usize],
    screen: Option<f64>,
    threads: usize,
    opts: &SearchOptions,
    deadline: Option<Instant>,
) -> Result<Vec<(usize, IndexOutcome)>, SearchError>
where
    C: CostModel + Send + Sync,
{
    if batch.is_empty() {
        return Ok(Vec::new());
    }
    let workers = threads.min(batch.len());
    let expired = AtomicBool::new(false);
    let per_worker = crate::parallel::run_claimed(workers, batch.len(), |_t, claims| {
        let mut out = Vec::new();
        while let Some(slot) = claims.next() {
            if expired.load(Ordering::Relaxed) {
                break;
            }
            if crate::cancel_requested(opts, deadline) {
                expired.store(true, Ordering::Relaxed);
                break;
            }
            let index = batch[slot];
            out.push((index, evaluator.process(index, screen)));
        }
        out
    });
    if expired.load(Ordering::Relaxed) {
        return Err(SearchError::DeadlineExceeded);
    }
    let mut outcomes: Vec<(usize, IndexOutcome)> = per_worker.into_iter().flatten().collect();
    outcomes.sort_by_key(|(index, _)| *index);
    // Deterministic error selection: the lowest failing index wins.
    if let Some(pos) = outcomes
        .iter()
        .position(|(_, o)| matches!(o, IndexOutcome::Failed(_)))
    {
        let (_, IndexOutcome::Failed(err)) = outcomes.swap_remove(pos) else {
            unreachable!("position matched Failed");
        };
        return Err(*err);
    }
    Ok(outcomes)
}

/// Streams a progress snapshot after each merged batch.
fn report_progress(opts: &SearchOptions, total: usize, corpus: &Corpus, agg: &Aggregate) {
    if let Some(sink) = &opts.progress {
        (sink.0)(SearchProgress {
            grid_points: total,
            claimed: corpus.visited_len(),
            evaluated: agg.stats.evaluated,
            memory_pruned: agg.stats.memory_pruned,
            bound_skipped: agg.stats.bound_skipped,
        });
    }
}
