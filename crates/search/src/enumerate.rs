//! Deterministic candidate enumeration over the divisibility lattice.
//!
//! Enumeration is *streaming*: the grid is a mixed-radix index space
//! decoded on demand ([`Grid`]), never a materialized vector, so
//! million-candidate spaces cost O(1) memory to walk. [`CandidateStream`]
//! is the lazy iterator façade; [`enumerate_candidates`] collects it
//! for callers that want the full set.

use crate::candidate::Candidate;
use crate::space::{ResolvedAxes, SpaceSpec};
use lumos_model::{InterleavedSchedule, ScheduleKind, TrainingSetup};

/// Number of mixed-radix digits a grid index decodes into (innermost
/// first: interleave, micro-batches, dp, pp, tp, schedule, arch).
pub(crate) const AXES: usize = 7;

/// Why a grid point was rejected before costing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// World size exceeds the budget or is not an allowed cluster
    /// size.
    Budget,
    /// Layers/heads/chunks do not divide into the requested degrees,
    /// or the target setup fails validation.
    Divisibility,
    /// TP rescale would change collective structure (`tp = 1 ↔ tp >
    /// 1`), which graph manipulation cannot reach from the trace.
    Structural,
}

/// The grid as a random-access index space: grid point `i` decodes to
/// a candidate in the fixed enumeration order (arch, schedule, tp,
/// pp, dp, micro-batches, interleave — each ascending, interleave
/// innermost).
///
/// Random access is what lets the parallel evaluator shard the grid
/// across workers with one atomic cursor instead of a locked iterator,
/// and what keeps enumeration-order tie-breaks well-defined without
/// materializing anything.
pub(crate) struct Grid<'a> {
    base: &'a TrainingSetup,
    axes: ResolvedAxes,
    /// Spec whose arch table matches the resolved axes (labels and
    /// transforms index into it).
    spec: SpaceSpec,
    total: usize,
}

impl<'a> Grid<'a> {
    /// Builds the grid for `spec` over `base`.
    pub(crate) fn new(spec: &SpaceSpec, base: &'a TrainingSetup) -> Self {
        let axes = spec.resolved_axes(base);
        let resolved_spec = SpaceSpec {
            arch: axes.arch_points.clone(),
            ..spec.clone()
        };
        let arch = axes.arch_points.len().max(1);
        let total = arch
            * axes.schedules.len()
            * axes.tp.len()
            * axes.pp.len()
            * axes.dp.len()
            * axes.microbatches.len()
            * axes.interleave.len();
        Grid {
            base,
            axes,
            spec: resolved_spec,
            total,
        }
    }

    /// Number of grid points.
    pub(crate) fn total(&self) -> usize {
        self.total
    }

    /// The spec enumeration works against (resolved arch table).
    pub(crate) fn spec(&self) -> &SpaceSpec {
        &self.spec
    }

    /// Decodes grid point `index` (`< total()`) into its candidate.
    pub(crate) fn candidate(&self, index: usize) -> Candidate {
        debug_assert!(index < self.total);
        let mut rem = index;
        let take = |rem: &mut usize, axis: &[u32]| {
            let v = axis[*rem % axis.len()];
            *rem /= axis.len();
            v
        };
        let interleave = take(&mut rem, &self.axes.interleave);
        let microbatches = take(&mut rem, &self.axes.microbatches);
        let dp = take(&mut rem, &self.axes.dp);
        let pp = take(&mut rem, &self.axes.pp);
        let tp = take(&mut rem, &self.axes.tp);
        let schedule = self.axes.schedules[rem % self.axes.schedules.len()];
        rem /= self.axes.schedules.len();
        let arch = if self.axes.arch_points.is_empty() {
            None
        } else {
            Some(rem)
        };
        Candidate {
            tp,
            pp,
            dp,
            microbatches,
            interleave,
            schedule,
            arch,
        }
    }

    /// Checks one candidate against the lattice, returning its
    /// validated target setup on success.
    pub(crate) fn admit(&self, cand: &Candidate) -> Result<TrainingSetup, RejectReason> {
        admit(cand, self.base, &self.spec, &self.axes)
    }

    /// Per-axis radices in decode order; every entry is ≥ 1 (the arch
    /// axis contributes 1 when absent), so the product equals
    /// [`Grid::total`].
    pub(crate) fn dims(&self) -> [usize; AXES] {
        [
            self.axes.interleave.len(),
            self.axes.microbatches.len(),
            self.axes.dp.len(),
            self.axes.pp.len(),
            self.axes.tp.len(),
            self.axes.schedules.len(),
            self.axes.arch_points.len().max(1),
        ]
    }

    /// Decodes a grid index into its mixed-radix digits (the inverse
    /// of [`Grid::index_of`]).
    pub(crate) fn coords(&self, index: usize) -> [usize; AXES] {
        debug_assert!(index < self.total);
        let dims = self.dims();
        let mut coords = [0usize; AXES];
        let mut rem = index;
        for (digit, radix) in coords.iter_mut().zip(dims) {
            *digit = rem % radix;
            rem /= radix;
        }
        coords
    }

    /// Re-encodes mixed-radix digits into the grid index.
    pub(crate) fn index_of(&self, coords: &[usize; AXES]) -> usize {
        let dims = self.dims();
        let mut index = 0usize;
        let mut stride = 1usize;
        for (&digit, radix) in coords.iter().zip(dims) {
            debug_assert!(digit < radix);
            index += digit * stride;
            stride *= radix;
        }
        index
    }
}

/// A grid point that survived the lattice: its deterministic
/// enumeration index (the ranking tie-break), the candidate, and its
/// validated target setup.
#[derive(Debug, Clone)]
pub struct EnumeratedCandidate {
    /// Grid index in enumeration order.
    pub index: usize,
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Its validated target setup.
    pub setup: TrainingSetup,
}

/// A lazy walk of the grid: yields lattice-valid candidates one at a
/// time, counting rejections as it goes, with **O(1) memory** in the
/// size of the space.
///
/// The yield order is the crate's deterministic enumeration order;
/// [`CandidateStream::stats`] exposes the rejection counters
/// accumulated so far (complete once the iterator is exhausted).
pub struct CandidateStream<'a> {
    grid: Grid<'a>,
    cursor: usize,
    stats: crate::prune::PruneStats,
}

impl<'a> CandidateStream<'a> {
    /// Starts a streaming enumeration of `spec` over `base`.
    pub fn new(spec: &SpaceSpec, base: &'a TrainingSetup) -> Self {
        CandidateStream {
            grid: Grid::new(spec, base),
            cursor: 0,
            stats: crate::prune::PruneStats::default(),
        }
    }

    /// Number of grid points the full walk visits.
    pub fn grid_size(&self) -> usize {
        self.grid.total()
    }

    /// Counters accumulated so far (complete after exhaustion).
    pub fn stats(&self) -> crate::prune::PruneStats {
        self.stats
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = EnumeratedCandidate;

    fn next(&mut self) -> Option<EnumeratedCandidate> {
        while self.cursor < self.grid.total() {
            let index = self.cursor;
            self.cursor += 1;
            self.stats.enumerated += 1;
            let candidate = self.grid.candidate(index);
            match self.grid.admit(&candidate) {
                Ok(setup) => {
                    return Some(EnumeratedCandidate {
                        index,
                        candidate,
                        setup,
                    })
                }
                Err(RejectReason::Budget) => self.stats.budget_rejects += 1,
                Err(RejectReason::Divisibility) => self.stats.divisibility_rejects += 1,
                Err(RejectReason::Structural) => self.stats.structural_rejects += 1,
            }
        }
        None
    }
}

/// The enumeration result: surviving candidates (with their validated
/// target setups) plus rejection counters.
#[derive(Debug, Clone)]
pub struct EnumerationOutcome {
    /// Lattice-valid candidates in deterministic grid order, paired
    /// with their validated target setups.
    pub candidates: Vec<(Candidate, TrainingSetup)>,
    /// Counters for every grid point visited.
    pub stats: crate::prune::PruneStats,
}

/// Walks the normalized grid in a fixed order (arch, tp, pp, dp,
/// micro-batches, interleave — each ascending) and keeps the
/// lattice-valid candidates.
///
/// This materializes the full survivor set; for large spaces prefer
/// [`CandidateStream`], which yields the same candidates in the same
/// order lazily. The order is part of the crate's determinism
/// contract: ranking tie-breaks fall back to this enumeration index.
pub fn enumerate_candidates(spec: &SpaceSpec, base: &TrainingSetup) -> EnumerationOutcome {
    let mut stream = CandidateStream::new(spec, base);
    let mut candidates = Vec::new();
    for ec in stream.by_ref() {
        candidates.push((ec.candidate, ec.setup));
    }
    EnumerationOutcome {
        candidates,
        stats: stream.stats(),
    }
}

/// Checks one grid point against the lattice, returning its validated
/// target setup on success.
fn admit(
    cand: &Candidate,
    base: &TrainingSetup,
    spec: &SpaceSpec,
    axes: &ResolvedAxes,
) -> Result<TrainingSetup, RejectReason> {
    let world = cand.world_size();
    match &axes.gpus {
        Some(allowed) if !allowed.contains(&world) => return Err(RejectReason::Budget),
        _ => {}
    }
    if world > axes.max_gpus {
        return Err(RejectReason::Budget);
    }
    // Structural TP constraint: the trace either has TP collectives
    // inside its blocks or it does not; crossing tp=1 in either
    // direction would require inserting/deleting them (§3.4).
    if (base.parallelism.tp == 1) != (cand.tp == 1) {
        return Err(RejectReason::Structural);
    }
    let setup = cand
        .target_setup(base, spec)
        .map_err(|_| RejectReason::Divisibility)?;
    if cand.interleave > 1 {
        // Interleaved virtual chunks are defined on 1F1B only (the
        // evaluator's bubble adjustment assumes it).
        if cand.schedule != ScheduleKind::OneFOneB {
            return Err(RejectReason::Structural);
        }
        // Interleaving needs pp > 1, layers divisible into pp × v
        // chunks, and a generable schedule.
        if cand.pp < 2
            || !setup
                .model
                .num_layers
                .is_multiple_of(cand.pp * cand.interleave)
            || InterleavedSchedule::generate(cand.pp, cand.interleave, cand.microbatches).is_err()
        {
            return Err(RejectReason::Divisibility);
        }
    }
    Ok(setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{ModelConfig, Parallelism};

    fn base_tp2() -> TrainingSetup {
        // 4 heads, 2 layers (tiny): tp ∈ {1, 2, 4}, pp ∈ {1, 2}.
        TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(2, 1, 1).unwrap())
    }

    #[test]
    fn lattice_rejects_and_counts() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[1, 2, 3, 4], &[1, 2, 3], &[1, 2]).with_max_gpus(8);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.stats.enumerated, 4 * 3 * 2);
        // tp=1 arm is structural (base tp > 1).
        assert!(out.stats.structural_rejects > 0);
        // tp=3 (heads=4) and pp=3 (layers=2) are divisibility rejects.
        assert!(out.stats.divisibility_rejects > 0);
        // 4*3*2=24 > 8 GPUs appears via (tp=4, pp=3) → divisibility
        // fires first there; force a budget reject separately below.
        for (cand, setup) in &out.candidates {
            assert!(cand.world_size() <= 8);
            assert_eq!(setup.parallelism.tp, cand.tp);
            setup.validate().unwrap();
        }
    }

    #[test]
    fn budget_and_allowed_gpus() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2], &[1], &[1, 2, 4]).with_max_gpus(4);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.candidates.len(), 2); // dp=4 → 8 GPUs > 4
        assert_eq!(out.stats.budget_rejects, 1);

        let spec = SpaceSpec::deployment_grid(&[2], &[1], &[1, 2, 4]).with_gpus(&[8]);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].0.dp, 4);
    }

    #[test]
    fn interleave_needs_chunkable_layers() {
        let mut base = base_tp2();
        base.model.num_layers = 8;
        // pp=2, v=2 ⇒ 8 layers into 4 chunks: fine. v=3 ⇒ 6 chunks: no.
        let spec = SpaceSpec::deployment_grid(&[2], &[2], &[1])
            .with_interleave(&[1, 2, 3])
            .with_microbatches(&[4]);
        let out = enumerate_candidates(&spec, &base);
        let vs: Vec<u32> = out.candidates.iter().map(|(c, _)| c.interleave).collect();
        assert_eq!(vs, vec![1, 2]);
    }

    #[test]
    fn enumeration_order_is_deterministic() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2], &[2, 1]);
        let a = enumerate_candidates(&spec, &base);
        let b = enumerate_candidates(&spec, &base);
        assert_eq!(
            a.candidates.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            b.candidates.iter().map(|(c, _)| *c).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_decode_covers_every_point_in_loop_order() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2], &[1, 2])
            .with_microbatches(&[2, 4])
            .with_interleave(&[1, 2])
            .with_schedules(&[ScheduleKind::OneFOneB, ScheduleKind::GPipe])
            .with_arch(vec![
                crate::space::ArchPoint::new("a", 2, 256, 1024),
                crate::space::ArchPoint::new("b", 4, 256, 1024),
            ]);
        let grid = Grid::new(&spec, &base);
        assert_eq!(grid.total(), 2 * 2 * 2 * 2 * 2 * 2 * 2);
        // Reconstruct the reference nested-loop order and compare.
        let axes = spec.resolved_axes(&base);
        let mut expected = Vec::new();
        for a in 0..axes.arch_points.len().max(1) {
            for &schedule in &axes.schedules {
                for &tp in &axes.tp {
                    for &pp in &axes.pp {
                        for &dp in &axes.dp {
                            for &m in &axes.microbatches {
                                for &v in &axes.interleave {
                                    expected.push(Candidate {
                                        tp,
                                        pp,
                                        dp,
                                        microbatches: m,
                                        interleave: v,
                                        schedule,
                                        arch: (!axes.arch_points.is_empty()).then_some(a),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        let decoded: Vec<Candidate> = (0..grid.total()).map(|i| grid.candidate(i)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn schedule_axis_enumerates_and_gates_interleave() {
        let mut base = base_tp2();
        base.model.num_layers = 8;
        let spec = SpaceSpec::deployment_grid(&[2], &[2], &[1])
            .with_microbatches(&[4])
            .with_interleave(&[1, 2])
            .with_schedules(&[ScheduleKind::OneFOneB, ScheduleKind::ZbH1]);
        let out = enumerate_candidates(&spec, &base);
        let pairs: Vec<(ScheduleKind, u32)> = out
            .candidates
            .iter()
            .map(|(c, _)| (c.schedule, c.interleave))
            .collect();
        // v=2 survives on 1F1B only; zb-h1 enumerates at v=1.
        assert_eq!(
            pairs,
            vec![
                (ScheduleKind::OneFOneB, 1),
                (ScheduleKind::OneFOneB, 2),
                (ScheduleKind::ZbH1, 1),
            ]
        );
        for (cand, setup) in &out.candidates {
            assert_eq!(setup.schedule, cand.schedule);
        }
    }

    #[test]
    fn coords_roundtrip_through_index_of() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2], &[1, 2])
            .with_microbatches(&[2, 4])
            .with_interleave(&[1, 2])
            .with_schedules(&[ScheduleKind::OneFOneB, ScheduleKind::GPipe]);
        let grid = Grid::new(&spec, &base);
        assert_eq!(grid.dims().iter().product::<usize>(), grid.total());
        for index in 0..grid.total() {
            let coords = grid.coords(index);
            assert_eq!(grid.index_of(&coords), index);
        }
    }

    #[test]
    fn stream_yields_same_set_as_materialized() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2], &[1, 2]).with_microbatches(&[2, 4]);
        let materialized = enumerate_candidates(&spec, &base);
        let mut stream = CandidateStream::new(&spec, &base);
        let streamed: Vec<(Candidate, TrainingSetup)> =
            stream.by_ref().map(|ec| (ec.candidate, ec.setup)).collect();
        assert_eq!(streamed, materialized.candidates);
        assert_eq!(stream.stats(), materialized.stats);
        // Indices are strictly increasing grid positions.
        let indices: Vec<usize> = CandidateStream::new(&spec, &base)
            .map(|ec| ec.index)
            .collect();
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        assert!(indices.iter().all(|&i| i < stream.grid_size()));
    }
}
