//! Deterministic candidate enumeration over the divisibility lattice.

use crate::candidate::Candidate;
use crate::space::SpaceSpec;
use lumos_model::{InterleavedSchedule, TrainingSetup};

/// Why a grid point was rejected before costing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// World size exceeds the budget or is not an allowed cluster
    /// size.
    Budget,
    /// Layers/heads/chunks do not divide into the requested degrees,
    /// or the target setup fails validation.
    Divisibility,
    /// TP rescale would change collective structure (`tp = 1 ↔ tp >
    /// 1`), which graph manipulation cannot reach from the trace.
    Structural,
}

/// The enumeration result: surviving candidates (with their validated
/// target setups) plus rejection counters.
#[derive(Debug, Clone)]
pub struct EnumerationOutcome {
    /// Lattice-valid candidates in deterministic grid order, paired
    /// with their validated target setups.
    pub candidates: Vec<(Candidate, TrainingSetup)>,
    /// Counters for every grid point visited.
    pub stats: crate::prune::PruneStats,
}

/// Walks the normalized grid in a fixed order (arch, tp, pp, dp,
/// micro-batches, interleave — each ascending) and keeps the
/// lattice-valid candidates.
///
/// The order is part of the crate's determinism contract: ranking
/// tie-breaks fall back to this enumeration index.
pub fn enumerate_candidates(spec: &SpaceSpec, base: &TrainingSetup) -> EnumerationOutcome {
    let axes = spec.resolved_axes(base);
    let arch_axis: Vec<Option<usize>> = if axes.arch_points.is_empty() {
        vec![None]
    } else {
        (0..axes.arch_points.len()).map(Some).collect()
    };
    // Work against a spec whose arch table matches the resolved axes.
    let resolved_spec = SpaceSpec {
        arch: axes.arch_points.clone(),
        ..spec.clone()
    };

    let mut stats = crate::prune::PruneStats::default();
    let mut candidates = Vec::new();
    for &arch in &arch_axis {
        for &tp in &axes.tp {
            for &pp in &axes.pp {
                for &dp in &axes.dp {
                    for &microbatches in &axes.microbatches {
                        for &interleave in &axes.interleave {
                            stats.enumerated += 1;
                            let cand = Candidate {
                                tp,
                                pp,
                                dp,
                                microbatches,
                                interleave,
                                arch,
                            };
                            match admit(&cand, base, &resolved_spec, &axes) {
                                Ok(setup) => candidates.push((cand, setup)),
                                Err(RejectReason::Budget) => stats.budget_rejects += 1,
                                Err(RejectReason::Divisibility) => stats.divisibility_rejects += 1,
                                Err(RejectReason::Structural) => stats.structural_rejects += 1,
                            }
                        }
                    }
                }
            }
        }
    }
    EnumerationOutcome { candidates, stats }
}

/// Checks one grid point against the lattice, returning its validated
/// target setup on success.
fn admit(
    cand: &Candidate,
    base: &TrainingSetup,
    spec: &SpaceSpec,
    axes: &crate::space::ResolvedAxes,
) -> Result<TrainingSetup, RejectReason> {
    let world = cand.world_size();
    match &axes.gpus {
        Some(allowed) if !allowed.contains(&world) => return Err(RejectReason::Budget),
        _ => {}
    }
    if world > axes.max_gpus {
        return Err(RejectReason::Budget);
    }
    // Structural TP constraint: the trace either has TP collectives
    // inside its blocks or it does not; crossing tp=1 in either
    // direction would require inserting/deleting them (§3.4).
    if (base.parallelism.tp == 1) != (cand.tp == 1) {
        return Err(RejectReason::Structural);
    }
    let setup = cand
        .target_setup(base, spec)
        .map_err(|_| RejectReason::Divisibility)?;
    if cand.interleave > 1 {
        // Interleaved virtual chunks are defined on 1F1B only (the
        // evaluator's bubble adjustment assumes it).
        if base.schedule != lumos_model::ScheduleKind::OneFOneB {
            return Err(RejectReason::Structural);
        }
        // Interleaving needs pp > 1, layers divisible into pp × v
        // chunks, and a generable schedule.
        if cand.pp < 2
            || !setup
                .model
                .num_layers
                .is_multiple_of(cand.pp * cand.interleave)
            || InterleavedSchedule::generate(cand.pp, cand.interleave, cand.microbatches).is_err()
        {
            return Err(RejectReason::Divisibility);
        }
    }
    Ok(setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{ModelConfig, Parallelism};

    fn base_tp2() -> TrainingSetup {
        // 4 heads, 2 layers (tiny): tp ∈ {1, 2, 4}, pp ∈ {1, 2}.
        TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(2, 1, 1).unwrap())
    }

    #[test]
    fn lattice_rejects_and_counts() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[1, 2, 3, 4], &[1, 2, 3], &[1, 2]).with_max_gpus(8);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.stats.enumerated, 4 * 3 * 2);
        // tp=1 arm is structural (base tp > 1).
        assert!(out.stats.structural_rejects > 0);
        // tp=3 (heads=4) and pp=3 (layers=2) are divisibility rejects.
        assert!(out.stats.divisibility_rejects > 0);
        // 4*3*2=24 > 8 GPUs appears via (tp=4, pp=3) → divisibility
        // fires first there; force a budget reject separately below.
        for (cand, setup) in &out.candidates {
            assert!(cand.world_size() <= 8);
            assert_eq!(setup.parallelism.tp, cand.tp);
            setup.validate().unwrap();
        }
    }

    #[test]
    fn budget_and_allowed_gpus() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2], &[1], &[1, 2, 4]).with_max_gpus(4);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.candidates.len(), 2); // dp=4 → 8 GPUs > 4
        assert_eq!(out.stats.budget_rejects, 1);

        let spec = SpaceSpec::deployment_grid(&[2], &[1], &[1, 2, 4]).with_gpus(&[8]);
        let out = enumerate_candidates(&spec, &base);
        assert_eq!(out.candidates.len(), 1);
        assert_eq!(out.candidates[0].0.dp, 4);
    }

    #[test]
    fn interleave_needs_chunkable_layers() {
        let mut base = base_tp2();
        base.model.num_layers = 8;
        // pp=2, v=2 ⇒ 8 layers into 4 chunks: fine. v=3 ⇒ 6 chunks: no.
        let spec = SpaceSpec::deployment_grid(&[2], &[2], &[1])
            .with_interleave(&[1, 2, 3])
            .with_microbatches(&[4]);
        let out = enumerate_candidates(&spec, &base);
        let vs: Vec<u32> = out.candidates.iter().map(|(c, _)| c.interleave).collect();
        assert_eq!(vs, vec![1, 2]);
    }

    #[test]
    fn enumeration_order_is_deterministic() {
        let base = base_tp2();
        let spec = SpaceSpec::deployment_grid(&[2, 4], &[1, 2], &[2, 1]);
        let a = enumerate_candidates(&spec, &base);
        let b = enumerate_candidates(&spec, &base);
        assert_eq!(
            a.candidates.iter().map(|(c, _)| *c).collect::<Vec<_>>(),
            b.candidates.iter().map(|(c, _)| *c).collect::<Vec<_>>()
        );
    }
}
