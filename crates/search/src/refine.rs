//! Phase two of the two-phase search: simulation-refined finals.
//!
//! The streaming screen (phase one) prices every candidate with the
//! closed-form interleaved-1F1B schedule model over a replayed
//! reassembly of the base trace — fast, but blind to the effects only
//! a full multi-rank execution exposes: compute/communication overlap,
//! host-dispatch serialization, and cross-rank collective rendezvous.
//! This module takes the analytic top-k and *replays the paper's
//! ground-truth methodology on each finalist*: lower the candidate's
//! full configuration into per-rank host programs
//! ([`lumos_cluster::lower`]), execute them through the discrete-event
//! engine ([`lumos_cluster::execute`]) against the **same** shared
//! trace-fitted [`LookupCostModel`] the screen used, and re-rank by
//! the *search objective re-evaluated at the simulated makespan* —
//! the user's ranking criterion stays in charge, informed by the
//! engine's number instead of the screen's. Each [`RefinedResult`]
//! reports the analytic-vs-simulated delta so a planner can see where
//! the cheap model diverges from trace-level simulation.
//!
//! An optional **jitter-robustness pass** executes `jitter_replicas`
//! deterministic, seeded variance replicas per finalist
//! ([`JitterModel::realistic`]) and reports mean / p95 makespans plus
//! a stability score (`mean / p95` clamped into `(0, 1]`, 1.0 =
//! perfectly stable; undefined — `None` — below two replicas, where
//! p95 is just the single sample), so the search can prefer
//! configurations that degrade gracefully under run-to-run noise
//! rather than point-estimate winners; the objective is then
//! re-evaluated at the jittered mean.
//!
//! An optional **fault-robustness pass** ([`crate::faults`]) goes
//! further: it injects a [`lumos_cluster::FaultSpec`]'s stragglers,
//! degradation windows, and rank failures into deterministic scenario
//! replicas and re-ranks by the *expected* makespan under faults,
//! reporting expected / p95 / degradation / robustness per finalist.
//!
//! Finalists are refined in parallel on the same worker-pool sizing as
//! the screen ([`crate::parallel::effective_threads`]); every engine
//! execution is deterministic (seeded jitter, wake-order-independent
//! timestamps), so refined rankings are bit-identical across thread
//! counts.
//!
//! Refinement runs the engine in **metrics-only mode**
//! ([`lumos_cluster::PreparedJob::execute_metrics`]): search consumes
//! only the makespan and the pipeline-boundary communication total,
//! so no per-rank `TraceEvent` stream is ever materialized, and each
//! finalist's program is lowered and prepared **once** and shared
//! across the zero-jitter base run and all jitter replicas (jitter is
//! applied at execution time via iteration-indexed multipliers). The
//! numbers are bit-identical to full-trace execution — the engine
//! computes the same timeline either way; only the bookkeeping
//! differs.
//!
//! Candidates with `interleave > 1` are simulated under their plain
//! 1F1B lowering and adjusted by the same interleaving model phase one
//! applies (bubble divided by `v`, pipeline-boundary traffic
//! multiplied by `v`) — the engine, like graph manipulation, does not
//! restage a schedule into virtual chunks, and using the identical
//! adjustment keeps the analytic-vs-simulated delta a statement about
//! *simulation fidelity*, not about schedule-model disagreement.

use crate::candidate::Candidate;
use crate::error::SearchError;
use crate::evaluate::{tokens_per_iter, CandidateResult};
use crate::faults::{fault_pass, FaultStats};
use crate::report::{objective_key_cmp, Objective};
use crate::SearchOptions;
use lumos_cluster::{lower, JitterModel, MeasuredStats, PreparedJob};
use lumos_cost::{CostModel, HostOverheads, LookupCostModel};
use lumos_model::{utilization, TrainingSetup};
use lumos_trace::Dur;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Robustness statistics from the jitter-replica pass of one finalist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterStats {
    /// Deterministic variance replicas executed.
    pub replicas: u32,
    /// Mean simulated makespan across replicas.
    pub mean: Dur,
    /// Nearest-rank 95th-percentile simulated makespan.
    pub p95: Dur,
    /// Stability score `mean / p95`, clamped into `(0, 1]` (with
    /// enough replicas a heavy-tailed draw can push the mean above the
    /// nearest-rank p95): 1.0 means the tail replica is no slower than
    /// the average — the configuration absorbs jitter instead of
    /// amplifying it. `None` below two replicas: the nearest-rank p95
    /// of a single sample is the sample itself, so the score would be
    /// a vacuous 1.0, not evidence of stability.
    pub stability: Option<f64>,
}

/// One finalist after engine refinement: the analytic screen's
/// estimate next to the discrete-event simulation's, with the delta
/// between them and optional jitter-robustness statistics.
#[derive(Debug, Clone)]
pub struct RefinedResult {
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Display label (same as the phase-one result).
    pub label: String,
    /// Phase-one enumeration index (stable identity + tie-break).
    pub index: usize,
    /// Phase one's analytic makespan estimate.
    pub analytic_makespan: Dur,
    /// Zero-jitter engine-simulated makespan (interleave-adjusted the
    /// same way the analytic estimate is).
    pub simulated_makespan: Dur,
    /// Signed relative delta `(simulated − analytic) / analytic`:
    /// positive when the engine found the candidate *slower* than the
    /// screen believed.
    pub delta: f64,
    /// Jitter-robustness statistics, when
    /// [`SearchOptions::jitter_replicas`] > 0.
    pub jitter: Option<JitterStats>,
    /// Fault-robustness statistics, when [`SearchOptions::fault_spec`]
    /// is a non-empty spec and [`SearchOptions::fault_replicas`] > 0.
    pub faults: Option<FaultStats>,
}

impl RefinedResult {
    /// The makespan the refinement objective is evaluated at: the
    /// expected makespan under injected faults when the fault pass
    /// ran (robust ranking), else the jittered mean when the jitter
    /// pass ran (optimize for expected time under noise), else the
    /// zero-jitter simulated makespan.
    pub fn ranking_makespan(&self) -> Dur {
        if let Some(f) = &self.faults {
            return f.expected;
        }
        match &self.jitter {
            Some(j) => j.mean,
            None => self.simulated_makespan,
        }
    }
}

/// The search objective's ranking key re-evaluated at a simulated
/// makespan — the same formulas [`Objective::key`] applies to
/// phase-one results, so phase two re-ranks by the *user's* objective
/// (makespan, per-GPU throughput, or MFU), informed by the engine's
/// number instead of the screen's. Degenerate inputs yield a
/// non-finite key, which the NaN-safe comparator ranks strictly last.
fn refined_key(finalist: &CandidateResult, secs: f64, opts: &SearchOptions) -> f64 {
    if !(secs > 0.0 && secs.is_finite()) {
        return f64::INFINITY;
    }
    let setup = &finalist.setup;
    match opts.objective {
        Objective::Makespan => secs,
        Objective::PerGpuThroughput => {
            -(tokens_per_iter(setup) as f64 / secs / setup.parallelism.world_size() as f64)
        }
        Objective::Mfu => {
            let peak = opts.gpu.peak_flops();
            if !(peak > 0.0 && peak.is_finite()) {
                return f64::INFINITY;
            }
            -utilization(setup, opts.memory_model.recompute, secs, peak).mfu
        }
    }
}

/// Executes every finalist through the discrete-event engine in
/// parallel and returns them re-ranked by the search objective
/// re-evaluated at the simulated makespan (jittered mean when the
/// robustness pass is on), ties broken by the phase-one enumeration
/// index.
///
/// Deterministic: per-finalist work depends only on the finalist and
/// the options, results merge by finalist slot, and ranking uses a
/// total order — so the output is identical for any worker count.
pub(crate) fn refine_finalists<C>(
    finalists: &[CandidateResult],
    opts: &SearchOptions,
    lookup: &LookupCostModel<C>,
    deadline: Option<std::time::Instant>,
) -> Result<Vec<RefinedResult>, SearchError>
where
    C: CostModel + Send + Sync,
{
    if finalists.is_empty() {
        return Ok(Vec::new());
    }
    let threads = crate::parallel::effective_threads(opts.threads, finalists.len());
    let cursor = AtomicUsize::new(0);
    let expired = std::sync::atomic::AtomicBool::new(false);

    let worker = || {
        let mut out: Vec<(usize, Result<RefinedResult, SearchError>)> = Vec::new();
        loop {
            if expired.load(Ordering::Relaxed) {
                break;
            }
            if crate::cancel_requested(opts, deadline) {
                expired.store(true, Ordering::Relaxed);
                break;
            }
            let slot = cursor.fetch_add(1, Ordering::Relaxed);
            if slot >= finalists.len() {
                break;
            }
            out.push((slot, refine_one(&finalists[slot], opts, lookup)));
        }
        out
    };

    let per_worker: Vec<Vec<(usize, Result<RefinedResult, SearchError>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("refinement worker panicked"))
                .collect()
        });

    // A cancelled run leaves unclaimed slots behind — bail before the
    // merge below, which (correctly) insists every slot was claimed.
    if expired.load(Ordering::Relaxed) {
        return Err(SearchError::DeadlineExceeded);
    }

    // Merge by slot so worker scheduling cannot reorder anything, and
    // report the lowest-slot failure deterministically.
    let mut slots: Vec<Option<Result<RefinedResult, SearchError>>> =
        (0..finalists.len()).map(|_| None).collect();
    for (slot, result) in per_worker.into_iter().flatten() {
        slots[slot] = Some(result);
    }
    let mut refined = Vec::with_capacity(finalists.len());
    for slot in slots {
        refined.push(slot.expect("every finalist slot was claimed")?);
    }
    // `refined` is in finalist order here, so pairing with `finalists`
    // recovers each result's setup for the objective re-evaluation.
    let mut keyed: Vec<(f64, RefinedResult)> = refined
        .into_iter()
        .zip(finalists)
        .map(|(r, f)| {
            let key = refined_key(f, r.ranking_makespan().as_secs_f64(), opts);
            (key, r)
        })
        .collect();
    keyed.sort_by(|a, b| objective_key_cmp(a.0, b.0).then_with(|| a.1.index.cmp(&b.1.index)));
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Lowers and executes one finalist: zero-jitter simulation, then the
/// optional jitter-replica pass.
fn refine_one<C>(
    finalist: &CandidateResult,
    opts: &SearchOptions,
    lookup: &LookupCostModel<C>,
) -> Result<RefinedResult, SearchError>
where
    C: CostModel,
{
    let fail = |detail: String| SearchError::Refinement {
        candidate: finalist.label.clone(),
        detail,
    };
    let setup = &finalist.setup;
    let job = lower(setup).map_err(|e| fail(format!("lowering: {e}")))?;
    if opts.verify {
        lumos_cluster::verify(&job).map_err(|e| SearchError::InvalidProgram {
            candidate: finalist.label.clone(),
            source: e,
        })?;
    }
    // One prepared (dense, interned) form shared by the base run and
    // every jitter replica: the engine executes in metrics-only mode,
    // so no trace event is ever materialized on this path.
    let prep = PreparedJob::new(&job).map_err(|e| fail(format!("prepare: {e}")))?;
    let overheads = HostOverheads::default();

    let out = prep
        .execute_metrics(lookup, &overheads, &JitterModel::none(), 0)
        .map_err(|e| fail(format!("engine: {e}")))?;
    let simulated = adjusted_makespan(
        &finalist.candidate,
        setup,
        out.makespan,
        out.pipeline_comm_secs_per_rank(),
    )
    .map_err(fail)?;

    let jitter = if opts.jitter_replicas > 0 {
        let model = JitterModel::realistic(opts.jitter_seed);
        let mut iterations = Vec::with_capacity(opts.jitter_replicas as usize);
        for replica in 0..opts.jitter_replicas {
            let jittered = prep
                .execute_metrics(lookup, &overheads, &model, replica as u64)
                .map_err(|e| fail(format!("engine (jitter replica {replica}): {e}")))?;
            iterations.push(
                adjusted_makespan(
                    &finalist.candidate,
                    setup,
                    jittered.makespan,
                    jittered.pipeline_comm_secs_per_rank(),
                )
                .map_err(fail)?,
            );
        }
        let stats = MeasuredStats { iterations };
        let (mean, p95) = (stats.mean(), stats.p95());
        // A single replica's nearest-rank p95 is the sample itself, so
        // mean/p95 would report a vacuous 1.0 — below two replicas the
        // score is undefined, not perfect.
        let stability = if opts.jitter_replicas < 2 {
            None
        } else if p95.is_zero() {
            Some(1.0)
        } else {
            Some((mean.as_secs_f64() / p95.as_secs_f64()).min(1.0))
        };
        Some(JitterStats {
            replicas: opts.jitter_replicas,
            mean,
            p95,
            stability,
        })
    } else {
        None
    };

    let faults = fault_pass(
        finalist,
        opts,
        lookup,
        &overheads,
        &prep,
        out.makespan,
        simulated,
    )?;

    let analytic = finalist.makespan;
    let delta = if analytic.is_zero() {
        0.0
    } else {
        (simulated.as_secs_f64() - analytic.as_secs_f64()) / analytic.as_secs_f64()
    };
    Ok(RefinedResult {
        candidate: finalist.candidate,
        label: finalist.label.clone(),
        index: finalist.index,
        analytic_makespan: analytic,
        simulated_makespan: simulated,
        delta,
        jitter,
        faults,
    })
}

/// Applies the schedule's engine adjustment to a simulated makespan,
/// so analytic and simulated estimates stay directly comparable.
/// Lowering realizes most schedules natively (including zero-bubble's
/// split backward) and needs no correction; interleaved 1F1B is the
/// exception — its virtual chunks cannot be lowered, so the engine
/// simulates plain 1F1B and the hook rescales.
/// `pp_comm_secs_per_rank` is the engine metrics' mean per-rank
/// pipeline-boundary SendRecv time — the same quantity phase one
/// derives by walking a full trace.
pub(crate) fn adjusted_makespan(
    cand: &Candidate,
    setup: &TrainingSetup,
    simulated: Dur,
    pp_comm_secs_per_rank: f64,
) -> Result<Dur, String> {
    let pp = setup.parallelism.pp;
    let m = setup.batch.num_microbatches;
    match setup.schedule.engine_adjustment(pp, m, cand.interleave) {
        None => Ok(simulated),
        // Phase one rejects degenerate candidates before they can
        // become finalists; fall back to the unadjusted simulation if
        // one slips through via a hand-built result list.
        Some(adj) if adj.is_degenerate() => Ok(simulated),
        Some(adj) => Ok(Dur::from_secs_f64(
            adj.apply_secs(simulated.as_secs_f64(), pp_comm_secs_per_rank),
        )),
    }
}
