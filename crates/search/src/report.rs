//! Ranking and the final search report.

use crate::evaluate::CandidateResult;
use crate::prune::{PruneStats, PrunedCandidate};
use lumos_trace::Dur;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// What the search ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Fastest predicted iteration, GPUs be damned.
    Makespan,
    /// Highest tokens/s **per GPU** — the capacity-planning default,
    /// since it normalizes across cluster sizes.
    #[default]
    PerGpuThroughput,
    /// Highest model-FLOPS utilization.
    Mfu,
}

impl Objective {
    /// Lower-is-better sort key for a result (negated for
    /// higher-is-better objectives).
    fn key(&self, r: &CandidateResult) -> f64 {
        match self {
            Objective::Makespan => r.makespan.as_secs_f64(),
            Objective::PerGpuThroughput => -r.tokens_per_sec_per_gpu,
            Objective::Mfu => -r.utilization.mfu,
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Objective::Makespan => "makespan",
            Objective::PerGpuThroughput => "per-gpu-throughput",
            Objective::Mfu => "mfu",
        })
    }
}

impl FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "makespan" | "iteration" | "time" => Ok(Objective::Makespan),
            "per-gpu-throughput" | "throughput" | "tokens" => Ok(Objective::PerGpuThroughput),
            "mfu" => Ok(Objective::Mfu),
            other => Err(format!(
                "unknown objective `{other}` (expected makespan, throughput, or mfu)"
            )),
        }
    }
}

/// Sorts results by objective, breaking exact ties by enumeration
/// index so rankings are fully deterministic.
pub(crate) fn rank(
    mut results: Vec<CandidateResult>,
    objective: Objective,
) -> Vec<CandidateResult> {
    results.sort_by(|a, b| {
        objective
            .key(a)
            .partial_cmp(&objective.key(b))
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.index.cmp(&b.index))
    });
    results
}

/// The outcome of one search run: ranked results plus everything that
/// was cut and why.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The base configuration the trace came from.
    pub base_label: String,
    /// Recorded makespan of the base trace.
    pub base_makespan: Dur,
    /// The ranking objective.
    pub objective: Objective,
    /// Evaluated candidates, best first.
    pub results: Vec<CandidateResult>,
    /// Candidates cut by the memory gate, with evidence.
    pub pruned: Vec<PrunedCandidate>,
    /// Grid counters.
    pub stats: PruneStats,
    /// Worker threads used.
    pub threads: usize,
}

impl SearchReport {
    /// The best `k` results (fewer if fewer were evaluated).
    pub fn top_k(&self, k: usize) -> &[CandidateResult] {
        &self.results[..k.min(self.results.len())]
    }

    /// The winner, if anything was evaluated.
    pub fn best(&self) -> Option<&CandidateResult> {
        self.results.first()
    }

    /// Formats the header, prune statistics, and the top-`k` table.
    pub fn format_top(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "search over {} grid points from base {} ({:.2} ms recorded)",
            s.enumerated,
            self.base_label,
            self.base_makespan.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "  lattice rejects: {} budget, {} divisibility, {} structural",
            s.budget_rejects, s.divisibility_rejects, s.structural_rejects
        );
        let _ = writeln!(
            out,
            "  memory-pruned before simulation: {}   evaluated (on {} threads): {}",
            s.memory_pruned, self.threads, s.evaluated
        );
        let _ = writeln!(out, "  objective: {}", self.objective);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4}  {:<22} {:>5} {:>11} {:>8} {:>13} {:>8} {:>10}",
            "rank", "candidate", "GPUs", "iter (ms)", "MFU", "tok/s/GPU", "bubble", "mem (GiB)"
        );
        if self.results.is_empty() {
            let _ = writeln!(
                out,
                "      (no feasible candidate survived the memory gate — \
                 see the pruning statistics above)"
            );
        }
        for (i, r) in self.top_k(k).iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:<22} {:>5} {:>11.2} {:>7.1}% {:>13.0} {:>8.3} {:>10.1}",
                i + 1,
                r.label,
                r.world_size(),
                r.makespan.as_ms_f64(),
                r.utilization.mfu * 100.0,
                r.tokens_per_sec_per_gpu,
                r.bubble_fraction,
                r.memory.total() as f64 / (1u64 << 30) as f64,
            );
        }
        if !self.pruned.is_empty() {
            let _ = writeln!(out);
            let worst = self
                .pruned
                .iter()
                .max_by_key(|p| p.required_bytes)
                .expect("non-empty");
            let _ = writeln!(
                out,
                "({} infeasible configs never simulated; worst wanted {:.1} GiB \
                 at stage {} vs {:.1} GiB capacity)",
                self.pruned.len(),
                worst.required_bytes as f64 / (1u64 << 30) as f64,
                worst.stage,
                worst.capacity_bytes as f64 / (1u64 << 30) as f64,
            );
        }
        out
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format_top(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_parses_and_prints() {
        assert_eq!(
            "makespan".parse::<Objective>().unwrap(),
            Objective::Makespan
        );
        assert_eq!(
            "THROUGHPUT".parse::<Objective>().unwrap(),
            Objective::PerGpuThroughput
        );
        assert_eq!("mfu".parse::<Objective>().unwrap(), Objective::Mfu);
        assert!("speed".parse::<Objective>().is_err());
        assert_eq!(Objective::Makespan.to_string(), "makespan");
    }
}
