//! Ranking and the final search report.
//!
//! Ranking is **total-order safe**: objective keys are compared with
//! [`f64::total_cmp`] under a wrapper that sorts *any* non-finite key
//! (NaN, ±∞) strictly after every finite key, so a degenerate
//! candidate can never panic the sort or outrank a real one. The
//! engine additionally rejects non-finite objectives before ranking
//! (see [`crate::CandidateResult::infeasibility`]); the comparator is
//! the defense-in-depth layer underneath.

use crate::adaptive::AdaptiveReport;
use crate::evaluate::{CandidateResult, RejectedCandidate};
use crate::prune::{MemoStats, PruneStats, PrunedCandidate};
use crate::refine::RefinedResult;
use lumos_trace::Dur;
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// What the search ranks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Fastest predicted iteration, GPUs be damned.
    Makespan,
    /// Highest tokens/s **per GPU** — the capacity-planning default,
    /// since it normalizes across cluster sizes.
    #[default]
    PerGpuThroughput,
    /// Highest model-FLOPS utilization.
    Mfu,
}

impl Objective {
    /// Lower-is-better sort key for a result (negated for
    /// higher-is-better objectives).
    pub(crate) fn key(&self, r: &CandidateResult) -> f64 {
        match self {
            Objective::Makespan => r.makespan.as_secs_f64(),
            Objective::PerGpuThroughput => -r.tokens_per_sec_per_gpu,
            Objective::Mfu => -r.utilization.mfu,
        }
    }
}

/// Total order over objective keys: finite keys ascending via
/// [`f64::total_cmp`], every non-finite key (NaN or ±∞, either sign)
/// strictly last. `sort_by` never panics under this comparator.
pub(crate) fn objective_key_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_finite(), b.is_finite()) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => a.total_cmp(&b),
    }
}

/// The full ranking comparator: objective key (non-finite last), then
/// enumeration index so rankings are fully deterministic.
pub(crate) fn rank_cmp(a: &CandidateResult, b: &CandidateResult, objective: Objective) -> Ordering {
    objective_key_cmp(objective.key(a), objective.key(b)).then_with(|| a.index.cmp(&b.index))
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Objective::Makespan => "makespan",
            Objective::PerGpuThroughput => "per-gpu-throughput",
            Objective::Mfu => "mfu",
        })
    }
}

impl FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "makespan" | "iteration" | "time" => Ok(Objective::Makespan),
            "per-gpu-throughput" | "throughput" | "tokens" => Ok(Objective::PerGpuThroughput),
            "mfu" => Ok(Objective::Mfu),
            other => Err(format!(
                "unknown objective `{other}` (expected makespan, throughput, or mfu)"
            )),
        }
    }
}

/// Sorts results by objective under the NaN-safe total order, breaking
/// exact ties by enumeration index so rankings are fully
/// deterministic. Non-finite objective keys sort strictly **last** —
/// they can never outrank a finite one — and the sort cannot panic,
/// whatever mix of NaN/±∞ the keys contain.
pub fn rank(mut results: Vec<CandidateResult>, objective: Objective) -> Vec<CandidateResult> {
    results.sort_by(|a, b| rank_cmp(a, b, objective));
    results
}

/// The outcome of one search run: ranked results plus everything that
/// was cut and why.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// The base configuration the trace came from.
    pub base_label: String,
    /// Recorded makespan of the base trace.
    pub base_makespan: Dur,
    /// The ranking objective.
    pub objective: Objective,
    /// Evaluated candidates, best first. When the search ran with a
    /// retention bound ([`crate::SearchOptions::top_k`]) this holds at
    /// most that many results — the exact global top-k.
    pub results: Vec<CandidateResult>,
    /// Candidates cut by the memory gate, with evidence (bounded to
    /// the retention cap when one is set; `stats.memory_pruned` always
    /// counts all of them).
    pub pruned: Vec<PrunedCandidate>,
    /// Fully scored candidates rejected with a typed infeasibility
    /// reason instead of being ranked (bounded like `pruned`;
    /// `stats.infeasible` counts all of them).
    pub rejected: Vec<RejectedCandidate>,
    /// Grid counters, including lower-bound skip accounting.
    pub stats: PruneStats,
    /// Stage-cost memoization counters.
    pub memo: MemoStats,
    /// Worker threads used.
    pub threads: usize,
    /// Simulation-refined finals ([`crate::SearchOptions::refine_sim`]):
    /// the analytic finals re-ranked by the search objective
    /// re-evaluated at the engine-simulated makespan, with
    /// per-finalist analytic-vs-simulated deltas and optional
    /// jitter-robustness statistics. `None` when refinement was off.
    /// When present, the refined prefix of [`SearchReport::results`]
    /// is reordered to match. The simulated numbers come from
    /// metrics-only engine runs (no trace is materialized), which are
    /// bit-identical to full-trace execution.
    pub refined: Option<Vec<RefinedResult>>,
    /// Adaptive-engine accounting ([`crate::SearchOptions::adaptive`]):
    /// how the run terminated, how much of the space was visited, and
    /// the seed that replays it. `None` for exhaustive runs.
    pub adaptive: Option<AdaptiveReport>,
}

impl SearchReport {
    /// The best `k` results (fewer if fewer were evaluated).
    pub fn top_k(&self, k: usize) -> &[CandidateResult] {
        &self.results[..k.min(self.results.len())]
    }

    /// The winner, if anything was evaluated.
    pub fn best(&self) -> Option<&CandidateResult> {
        self.results.first()
    }

    /// Formats the header, prune statistics, and the top-`k` table.
    pub fn format_top(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let s = &self.stats;
        let _ = writeln!(
            out,
            "search over {} grid points from base {} ({:.2} ms recorded)",
            s.enumerated,
            self.base_label,
            self.base_makespan.as_ms_f64()
        );
        let _ = writeln!(
            out,
            "  lattice rejects: {} budget, {} divisibility, {} structural",
            s.budget_rejects, s.divisibility_rejects, s.structural_rejects
        );
        let _ = writeln!(
            out,
            "  memory-pruned before simulation: {}   evaluated (on {} threads): {}",
            s.memory_pruned, self.threads, s.evaluated
        );
        let _ = writeln!(
            out,
            "  skipped without full simulation: {:.1}%   fully evaluated: {:.1}%",
            s.skip_percent(),
            s.visit_percent()
        );
        if let Some(a) = &self.adaptive {
            let _ = writeln!(
                out,
                "  adaptive: {} — visited {}/{} ({:.1}%), {} mutations over {} rounds, frontier {}, budget {}, seed {}",
                a.outcome,
                a.visited,
                a.grid_points,
                a.visited_percent(),
                a.mutations,
                a.rounds,
                a.frontier,
                a.budget,
                a.seed
            );
        }
        if s.bound_skipped > 0 || s.infeasible > 0 || self.memo.misses > 0 {
            let _ = writeln!(
                out,
                "  lower-bound skips: {}   infeasible: {}   stage-cost memo: {} hits / {} misses",
                s.bound_skipped, s.infeasible, self.memo.hits, self.memo.misses
            );
        }
        let _ = writeln!(out, "  objective: {}", self.objective);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:>4}  {:<22} {:>5} {:>11} {:>8} {:>13} {:>8} {:>10}",
            "rank", "candidate", "GPUs", "iter (ms)", "MFU", "tok/s/GPU", "bubble", "mem (GiB)"
        );
        if self.results.is_empty() {
            let _ = writeln!(
                out,
                "      (no feasible candidate survived the memory gate — \
                 see the pruning statistics above)"
            );
        }
        for (i, r) in self.top_k(k).iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>4}  {:<22} {:>5} {:>11.2} {:>7.1}% {:>13.0} {:>8.3} {:>10.1}",
                i + 1,
                r.label,
                r.world_size(),
                r.makespan.as_ms_f64(),
                r.utilization.mfu * 100.0,
                r.tokens_per_sec_per_gpu,
                r.bubble_fraction,
                r.memory.total() as f64 / (1u64 << 30) as f64,
            );
        }
        if !self.pruned.is_empty() {
            let _ = writeln!(out);
            let worst = self
                .pruned
                .iter()
                .max_by_key(|p| p.required_bytes)
                .expect("non-empty");
            let _ = writeln!(
                out,
                "({} infeasible configs never simulated; worst wanted {:.1} GiB \
                 at stage {} vs {:.1} GiB capacity)",
                s.memory_pruned,
                worst.required_bytes as f64 / (1u64 << 30) as f64,
                worst.stage,
                worst.capacity_bytes as f64 / (1u64 << 30) as f64,
            );
        }
        if !self.rejected.is_empty() {
            let _ = writeln!(
                out,
                "({} candidates rejected during scoring; first: {} — {})",
                s.infeasible, self.rejected[0].label, self.rejected[0].reason
            );
        }
        if let Some(refined) = &self.refined {
            let _ = writeln!(out);
            let with_jitter = refined.iter().any(|r| r.jitter.is_some());
            let with_faults = refined.iter().any(|r| r.faults.is_some());
            let _ = writeln!(
                out,
                "simulation-refined finals (re-ranked by {} at the engine-simulated {}):",
                self.objective,
                if with_faults {
                    "expected makespan under injected faults"
                } else if with_jitter {
                    "mean makespan over jitter replicas"
                } else {
                    "makespan"
                }
            );
            let _ = write!(
                out,
                "{:>4}  {:<22} {:>13} {:>13} {:>8}",
                "rank", "candidate", "analytic (ms)", "simulated (ms)", "delta"
            );
            if with_jitter {
                let _ = write!(
                    out,
                    " {:>11} {:>11} {:>10}",
                    "mean (ms)", "p95 (ms)", "stability"
                );
            }
            if with_faults {
                let _ = write!(
                    out,
                    " {:>13} {:>13} {:>8} {:>7}",
                    "expected (ms)", "f-p95 (ms)", "degrad", "robust"
                );
            }
            let _ = writeln!(out);
            for (i, r) in refined.iter().take(k).enumerate() {
                let _ = write!(
                    out,
                    "{:>4}  {:<22} {:>13.2} {:>13.2} {:>+7.1}%",
                    i + 1,
                    r.label,
                    r.analytic_makespan.as_ms_f64(),
                    r.simulated_makespan.as_ms_f64(),
                    r.delta * 100.0,
                );
                if let Some(j) = &r.jitter {
                    let _ = write!(
                        out,
                        " {:>11.2} {:>11.2}",
                        j.mean.as_ms_f64(),
                        j.p95.as_ms_f64()
                    );
                    match j.stability {
                        Some(s) => {
                            let _ = write!(out, " {:>10.3}", s);
                        }
                        // Undefined below two replicas: p95 of one
                        // sample is the sample, not a tail.
                        None => {
                            let _ = write!(out, " {:>10}", "n/a");
                        }
                    }
                }
                if let Some(fs) = &r.faults {
                    let _ = write!(
                        out,
                        " {:>13.2} {:>13.2} {:>+7.1}% {:>7.3}",
                        fs.expected.as_ms_f64(),
                        fs.p95.as_ms_f64(),
                        fs.degradation * 100.0,
                        fs.robustness,
                    );
                }
                let _ = writeln!(out);
            }
            if refined.is_empty() {
                let _ = writeln!(out, "      (no finalists to refine)");
            }
        }
        out
    }
}

impl fmt::Display for SearchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.format_top(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_parses_and_prints() {
        assert_eq!(
            "makespan".parse::<Objective>().unwrap(),
            Objective::Makespan
        );
        assert_eq!(
            "THROUGHPUT".parse::<Objective>().unwrap(),
            Objective::PerGpuThroughput
        );
        assert_eq!("mfu".parse::<Objective>().unwrap(), Objective::Mfu);
        assert!("speed".parse::<Objective>().is_err());
        assert_eq!(Objective::Makespan.to_string(), "makespan");
    }

    #[test]
    fn objective_key_cmp_is_a_total_order_with_non_finite_last() {
        use std::cmp::Ordering::*;
        let specials = [
            f64::NAN,
            -f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -1.5,
            0.0,
            -0.0,
            2.5,
        ];
        // Finite before non-finite, both directions consistent.
        for &fin in &[-1.5, 0.0, 2.5] {
            for &bad in &[f64::NAN, -f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(objective_key_cmp(fin, bad), Less, "{fin} vs {bad}");
                assert_eq!(objective_key_cmp(bad, fin), Greater, "{bad} vs {fin}");
            }
        }
        // Antisymmetry + transitivity over every triple.
        for &a in &specials {
            for &b in &specials {
                assert_eq!(
                    objective_key_cmp(a, b),
                    objective_key_cmp(b, a).reverse(),
                    "antisymmetry {a} {b}"
                );
                for &c in &specials {
                    if objective_key_cmp(a, b) != Greater && objective_key_cmp(b, c) != Greater {
                        assert_ne!(objective_key_cmp(a, c), Greater, "transitivity {a} {b} {c}");
                    }
                }
            }
        }
        // A sort under the comparator must not panic.
        let mut keys = specials.to_vec();
        keys.sort_by(|a, b| objective_key_cmp(*a, *b));
        assert!(keys[..4].iter().all(|k| k.is_finite()));
        assert!(keys[4..].iter().all(|k| !k.is_finite()));
    }
}
