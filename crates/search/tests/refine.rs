//! Guarantees of the simulation-refined second phase:
//!
//! * `refine_sim` re-ranks the analytic top-k by engine-simulated
//!   makespan and reports per-finalist analytic-vs-simulated deltas;
//! * refined output is bit-identical across worker counts;
//! * on a zero-jitter base, the engine-simulated makespan of a plain
//!   1F1B finalist agrees with the analytic screen within a tight
//!   band (engine-vs-analytic agreement);
//! * jitter replicas are deterministic, and their statistics are
//!   internally consistent (`mean ≤ p95`, stability in `(0, 1]`).

use lumos_cluster::{execute, lower, GroundTruthCluster, JitterModel, MeasuredStats};
use lumos_cost::{AnalyticalCostModel, HostOverheads, LookupCostModel};
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{search, Objective, RefinedResult, SearchOptions, SearchReport, SpaceSpec};
use lumos_trace::ClusterTrace;
use std::sync::OnceLock;

/// An 8-layer research model, small enough that engine-executing a
/// handful of finalists stays fast.
fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("refine-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

/// Zero-jitter base trace: the analytic screen replays exactly what
/// the engine recorded, so refinement deltas isolate modeling effects
/// rather than sampling noise.
fn shared_trace() -> &'static (TrainingSetup, ClusterTrace) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_setup();
        let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap()
            .trace;
        (base, trace)
    })
}

fn plain_spec() -> SpaceSpec {
    SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2]).with_microbatches(&[4, 8])
}

fn run(opts: &SearchOptions) -> SearchReport {
    let (base, trace) = shared_trace();
    search(
        trace,
        base,
        &plain_spec(),
        opts,
        AnalyticalCostModel::h100(),
    )
    .unwrap()
}

fn refined_opts(threads: Option<usize>, jitter_replicas: u32) -> SearchOptions {
    SearchOptions {
        objective: Objective::Makespan,
        top_k: Some(5),
        refine_sim: true,
        jitter_replicas,
        threads,
        ..SearchOptions::default()
    }
}

/// Everything that must be bit-identical across worker counts.
type Fingerprint = (
    String,
    usize,
    u64,
    u64,
    u64,
    Option<(u64, u64, Option<u64>)>,
);

fn fingerprint(r: &RefinedResult) -> Fingerprint {
    (
        r.label.clone(),
        r.index,
        r.analytic_makespan.as_ns(),
        r.simulated_makespan.as_ns(),
        r.delta.to_bits(),
        r.jitter
            .as_ref()
            .map(|j| (j.mean.as_ns(), j.p95.as_ns(), j.stability.map(f64::to_bits))),
    )
}

#[test]
fn refinement_reranks_and_reports_deltas() {
    let base_report = run(&SearchOptions {
        refine_sim: false,
        ..refined_opts(None, 0)
    });
    assert!(base_report.refined.is_none());

    let report = run(&refined_opts(None, 0));
    let refined = report.refined.as_ref().expect("refinement ran");
    assert_eq!(refined.len(), report.results.len());
    assert!(!refined.is_empty());
    // Re-ranked by simulated makespan, ascending.
    for pair in refined.windows(2) {
        assert!(
            pair[0].simulated_makespan <= pair[1].simulated_makespan,
            "refined finals not sorted by simulated makespan"
        );
    }
    // The ranked results were reordered to match the refined order.
    for (res, refd) in report.results.iter().zip(refined) {
        assert_eq!(res.index, refd.index);
        assert_eq!(res.label, refd.label);
        assert_eq!(res.makespan, refd.analytic_makespan);
    }
    // The same finalists, by index, as the unrefined analytic top-k.
    let mut analytic: Vec<usize> = base_report.results.iter().map(|r| r.index).collect();
    let mut sim: Vec<usize> = refined.iter().map(|r| r.index).collect();
    analytic.sort_unstable();
    sim.sort_unstable();
    assert_eq!(analytic, sim);
    // The report prints the refinement table.
    let text = report.format_top(10);
    assert!(text.contains("simulation-refined finals"), "{text}");
    assert!(text.contains("delta"), "{text}");
}

#[test]
fn refined_output_identical_across_worker_counts() {
    let reference: Vec<_> = run(&refined_opts(Some(1), 3))
        .refined
        .unwrap()
        .iter()
        .map(fingerprint)
        .collect();
    for threads in [2, 4, 7] {
        let got: Vec<_> = run(&refined_opts(Some(threads), 3))
            .refined
            .unwrap()
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(
            got, reference,
            "refined output differs at {threads} threads"
        );
    }
}

#[test]
fn engine_agrees_with_analytic_screen_on_zero_jitter_finalists() {
    // Both phases price the same programs from the same trace-fitted
    // cost model; on a zero-jitter base their makespans must stay in a
    // tight band. (The residual is real modeling difference: graph
    // replay of reassembled blocks vs full host-dispatch simulation.)
    let report = run(&refined_opts(None, 0));
    let refined = report.refined.unwrap();
    assert!(!refined.is_empty());
    for r in &refined {
        assert!(
            r.simulated_makespan.as_ns() > 0,
            "{}: empty simulation",
            r.label
        );
        assert!(
            r.delta.abs() < 0.15,
            "{}: analytic {:.3} ms vs simulated {:.3} ms (delta {:+.1}%) out of band",
            r.label,
            r.analytic_makespan.as_ms_f64(),
            r.simulated_makespan.as_ms_f64(),
            r.delta * 100.0
        );
    }
}

#[test]
fn refinement_honors_the_search_objective() {
    // Per-GPU throughput, not raw makespan, must order the refined
    // finals when that is the objective: a bigger cluster with a
    // slightly lower makespan but worse per-GPU efficiency may not
    // outrank a smaller one.
    let report = run(&SearchOptions {
        objective: Objective::PerGpuThroughput,
        ..refined_opts(None, 0)
    });
    let refined = report.refined.as_ref().unwrap();
    assert!(refined.len() > 1);
    // report.results is reordered to match; recompute the throughput
    // key at each finalist's simulated makespan and check descending.
    let throughput_at_sim: Vec<f64> = report
        .results
        .iter()
        .zip(refined)
        .map(|(res, refd)| {
            assert_eq!(res.index, refd.index);
            let s = &res.setup;
            let tokens = s.batch.tokens_per_microbatch() as f64
                * s.batch.num_microbatches as f64
                * s.parallelism.dp as f64;
            tokens / refd.simulated_makespan.as_secs_f64() / s.parallelism.world_size() as f64
        })
        .collect();
    for pair in throughput_at_sim.windows(2) {
        assert!(
            pair[0] >= pair[1],
            "refined finals not ordered by per-GPU throughput: {throughput_at_sim:?}"
        );
    }
}

#[test]
fn full_retention_caps_refined_finalists() {
    // --keep-all retains every result; refinement must still run on a
    // short list (16 when unbounded), not engine-execute the space.
    let (base, trace) = shared_trace();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2]).with_microbatches(&[4, 8, 16]);
    let opts = SearchOptions {
        objective: Objective::Makespan,
        top_k: None,
        refine_sim: true,
        ..SearchOptions::default()
    };
    let report = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert!(
        report.results.len() > 16,
        "need more retained results than the cap, got {}",
        report.results.len()
    );
    let refined = report.refined.as_ref().unwrap();
    assert_eq!(refined.len(), 16);
    // Prefix reordered to the refined ranking, tail left analytic.
    for (res, refd) in report.results.iter().zip(refined) {
        assert_eq!(res.index, refd.index);
    }
}

#[test]
fn jitter_replicas_are_deterministic_and_consistent() {
    let a = run(&refined_opts(None, 5));
    let b = run(&refined_opts(None, 5));
    let (ra, rb) = (a.refined.clone().unwrap(), b.refined.unwrap());
    assert_eq!(
        ra.iter().map(fingerprint).collect::<Vec<_>>(),
        rb.iter().map(fingerprint).collect::<Vec<_>>()
    );
    for r in &ra {
        let j = r.jitter.as_ref().expect("jitter stats present");
        assert_eq!(j.replicas, 5);
        assert!(j.mean <= j.p95, "{}: mean above p95", r.label);
        let stability = j.stability.expect("≥2 replicas define stability");
        assert!(
            stability > 0.0 && stability <= 1.0,
            "{}: stability {} out of (0, 1]",
            r.label,
            stability
        );
        // Jittered means stay in the same ballpark as the zero-jitter
        // simulation (the jitter model is mean-1 multiplicative).
        let rel = j.mean.relative_error(r.simulated_makespan);
        assert!(rel < 0.2, "{}: jittered mean drifted {rel}", r.label);
    }
    // With replicas on, the ranking key is the jittered mean.
    for pair in ra.windows(2) {
        let (ma, mb) = (
            pair[0].jitter.as_ref().unwrap().mean,
            pair[1].jitter.as_ref().unwrap().mean,
        );
        assert!(ma <= mb, "refined finals not sorted by jittered mean");
    }
    // And the report gains the robustness columns.
    let text = a.format_top(10);
    assert!(text.contains("p95 (ms)"), "{text}");
    assert!(text.contains("stability"), "{text}");
}

#[test]
fn single_jitter_replica_has_undefined_stability() {
    // The nearest-rank p95 of one sample is the sample itself, so
    // mean/p95 would be a vacuous 1.0 — the score must be reported as
    // undefined, not as perfect stability.
    let report = run(&refined_opts(None, 1));
    let refined = report.refined.as_ref().unwrap();
    assert!(!refined.is_empty());
    for r in refined {
        let j = r.jitter.as_ref().expect("jitter stats present");
        assert_eq!(j.replicas, 1);
        assert_eq!(j.mean, j.p95, "one replica: mean is the sample");
        assert!(
            j.stability.is_none(),
            "{}: stability must be undefined with 1 replica",
            r.label
        );
    }
    let text = report.format_top(10);
    assert!(text.contains("n/a"), "{text}");
    // With two replicas the score is defined again.
    let two = run(&refined_opts(None, 2));
    for r in two.refined.as_ref().unwrap() {
        assert!(r.jitter.as_ref().unwrap().stability.is_some());
    }
}

#[test]
fn metrics_only_refinement_matches_full_trace_engine_execution() {
    // The refinement phase runs the engine in metrics-only mode (no
    // TraceEvent is ever constructed). Re-execute every finalist with
    // *full* trace collection against an identically fitted cost
    // model: the makespans the report ranked by must be bit-identical
    // — the sink changes bookkeeping, never the timeline.
    let (_base, trace) = shared_trace();
    let opts = refined_opts(None, 3);
    let report = run(&opts);
    let refined = report.refined.as_ref().expect("refinement ran");
    assert!(!refined.is_empty());
    // The same fit `search` performs internally (same trace, same
    // fallback, same gpus-per-node classification).
    let lookup =
        LookupCostModel::fit_from_trace(trace, AnalyticalCostModel::h100(), opts.gpus_per_node);
    let oh = HostOverheads::default();
    for (res, refd) in report.results.iter().zip(refined) {
        assert_eq!(res.index, refd.index);
        // plain_spec() enumerates no interleaving, so the simulated
        // makespan is the raw engine number (no adjustment applied).
        assert!(refd.candidate.interleave <= 1);
        let job = lower(&res.setup).unwrap();
        let full = execute(&job, &lookup, &oh, &JitterModel::none(), 0).unwrap();
        assert_eq!(
            refd.simulated_makespan, full.makespan,
            "{}: metrics-only refinement diverged from full-trace execution",
            refd.label
        );
        // Jitter replicas reproduce too: same seeds, same iteration
        // indices, full-trace engine.
        let model = JitterModel::realistic(opts.jitter_seed);
        let iterations: Vec<_> = (0..opts.jitter_replicas)
            .map(|r| {
                execute(&job, &lookup, &oh, &model, r as u64)
                    .unwrap()
                    .makespan
            })
            .collect();
        let stats = MeasuredStats { iterations };
        let j = refd.jitter.as_ref().expect("jitter stats present");
        assert_eq!(j.mean, stats.mean(), "{}: jittered mean", refd.label);
        assert_eq!(j.p95, stats.p95(), "{}: jittered p95", refd.label);
    }
}
