//! The issue-mandated behavioral guarantees of `lumos-search`:
//! determinism across runs and thread counts, exactness of the
//! memory-pruning gate, top-k ranking sanity, and a ≥200-point space
//! completing end to end with parallel evaluation.

use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{
    enumerate_candidates, search, Objective, SearchOptions, SearchReport, SpaceSpec,
};
use lumos_trace::ClusterTrace;

/// An 8-layer research model: divisible into pp ∈ {1, 2, 4, 8} and
/// interleavable, small enough that hundreds of replays stay fast.
fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("search-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn base_trace(base: &TrainingSetup) -> ClusterTrace {
    GroundTruthCluster::new(base, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(42))
        .profile_iteration(0)
        .unwrap()
        .trace
}

fn report_fingerprint(r: &SearchReport) -> Vec<(String, u64, u64)> {
    r.results
        .iter()
        .map(|c| (c.label.clone(), c.makespan.as_ns(), c.memory.total()))
        .collect()
}

#[test]
fn same_spec_same_report_across_runs_and_thread_counts() {
    let base = base_setup();
    let trace = base_trace(&base);
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2])
        .with_microbatches(&[2, 4, 8])
        .with_interleave(&[1, 2]);

    let mut fingerprints = Vec::new();
    for threads in [1, 2, 7] {
        let opts = SearchOptions {
            threads: Some(threads),
            ..SearchOptions::default()
        };
        let report = search(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
        assert!(!report.results.is_empty());
        fingerprints.push(report_fingerprint(&report));
    }
    assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 threads");
    assert_eq!(fingerprints[0], fingerprints[2], "1 vs 7 threads");

    // And a genuinely repeated run (fresh trace from the same seed).
    let opts = SearchOptions::default();
    let again = search(
        &base_trace(&base),
        &base,
        &spec,
        &opts,
        AnalyticalCostModel::h100(),
    )
    .unwrap();
    assert_eq!(fingerprints[0], report_fingerprint(&again), "repeated run");
}

#[test]
fn pruning_is_exact_and_loses_no_candidate() {
    // ~510M parameters at 18 bytes/param: pp=1 holds ~8.6 GiB of
    // model state, pp=2 about half — so a 7 GiB device (with runtime
    // overhead zeroed below) prunes exactly the pp=1 arm.
    let base = TrainingSetup {
        model: ModelConfig::custom("prune-model", 8, 2048, 8192, 4, 512),
        parallelism: Parallelism::new(1, 2, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = base_trace(&base);
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2]).with_microbatches(&[2, 4, 8]);

    // A deliberately small device so the gate has real work to do;
    // overhead is zeroed so the discriminating term is model state.
    let mut gpu = lumos_cost::GpuSpec::h100_sxm();
    gpu.memory_gib = 7;
    let opts = SearchOptions {
        gpu,
        memory_model: lumos_model::MemoryModel {
            overhead_bytes: 0,
            ..lumos_model::MemoryModel::default()
        },
        ..SearchOptions::default()
    };
    let capacity = opts.gpu.memory_bytes();
    let report = search(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();

    assert!(
        !report.pruned.is_empty(),
        "test needs a capacity tight enough to prune something"
    );
    assert!(
        !report.results.is_empty(),
        "test needs a capacity loose enough to keep something"
    );

    // Every pruned candidate really exceeds the budget…
    for p in &report.pruned {
        assert_eq!(p.capacity_bytes, capacity);
        assert!(
            p.required_bytes > capacity,
            "{} was pruned but fits: {} <= {capacity}",
            p.label,
            p.required_bytes
        );
        let est = opts
            .memory_model
            .estimate_peak(&p.candidate.target_setup(&base, &spec).unwrap());
        assert_eq!(est.1.total(), p.required_bytes);
    }
    // …every evaluated candidate really fits…
    for r in &report.results {
        assert!(
            r.memory.total() <= capacity,
            "{} was evaluated but overflows",
            r.label
        );
    }
    // …and together they account for every lattice-admitted candidate.
    let admitted = enumerate_candidates(&spec, &base).candidates.len();
    assert_eq!(report.results.len() + report.pruned.len(), admitted);
    assert_eq!(report.stats.evaluated, report.results.len());
    assert_eq!(report.stats.memory_pruned, report.pruned.len());
}

#[test]
fn top_k_ranking_is_sane() {
    let base = base_setup();
    let trace = base_trace(&base);
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2]).with_microbatches(&[2, 4]);

    for objective in [
        Objective::Makespan,
        Objective::PerGpuThroughput,
        Objective::Mfu,
    ] {
        let opts = SearchOptions {
            objective,
            ..SearchOptions::default()
        };
        let report = search(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
        let key = |r: &lumos_search::CandidateResult| match objective {
            Objective::Makespan => r.makespan.as_secs_f64(),
            Objective::PerGpuThroughput => -r.tokens_per_sec_per_gpu,
            Objective::Mfu => -r.utilization.mfu,
        };
        for pair in report.results.windows(2) {
            assert!(
                key(&pair[0]) <= key(&pair[1]),
                "ranking violates {objective}: {} before {}",
                pair[0].label,
                pair[1].label
            );
        }
        assert_eq!(report.top_k(3).len(), 3.min(report.results.len()));
        assert_eq!(report.top_k(usize::MAX).len(), report.results.len());
        assert_eq!(report.best().unwrap().label, report.results[0].label);
    }
}

#[test]
fn two_hundred_candidate_space_completes_in_parallel() {
    let base = base_setup();
    let trace = base_trace(&base);
    // 1 × 5 × 3 × 4 × 2 × 2 (arch) = 240 grid points.
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4, 8, 16], &[1, 2, 4])
        .with_microbatches(&[2, 4, 6, 8])
        .with_interleave(&[1, 2])
        .with_arch(vec![
            lumos_search::ArchPoint::new("8L-d256", 8, 256, 1024),
            lumos_search::ArchPoint::new("8L-d512", 8, 512, 2048),
        ])
        .with_max_gpus(32);
    assert!(spec.grid_upper_bound(&base) >= 200);

    let opts = SearchOptions::default();
    let report = search(&trace, &base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert_eq!(report.stats.enumerated, 240);
    assert!(report.stats.evaluated > 50, "stats: {:?}", report.stats);
    assert!(report.threads >= 1);
    // The report renders with a ranked table and pruning statistics.
    let text = report.format_top(10);
    assert!(text.contains("grid points"));
    assert!(text.contains("rank"));
    assert!(text.contains("tok/s/GPU"));
}
