//! Issue-mandated guarantees of the streaming search rewrite:
//!
//! * streaming enumeration yields exactly the candidate set of the
//!   materialized grid (property-tested over arbitrary small spaces);
//! * bounded top-k retention + lower-bound skipping returns results
//!   byte-identical to ranking every candidate (same seed/trace);
//! * `rank()` is a total order over arbitrary finite/NaN/∞ key mixes —
//!   it never panics and never ranks a non-finite objective above a
//!   finite one (regression for the `partial_cmp(..).unwrap_or(Equal)`
//!   sort-panic bug);
//! * degenerate candidates surface as typed rejections, not NaN rows;
//! * a ≥100k-candidate space completes with retention proportional to
//!   top-k, not to the space size.

use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{
    enumerate_candidates, search, CandidateResult, CandidateStream, Infeasibility, Objective,
    SearchOptions, SearchReport, SpaceSpec,
};
use lumos_trace::ClusterTrace;
use proptest::prelude::*;
use std::sync::OnceLock;

/// An 8-layer research model: divisible into pp ∈ {1, 2, 4, 8} and
/// interleavable, small enough that hundreds of replays stay fast.
fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("stream-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn shared_trace() -> &'static (TrainingSetup, ClusterTrace) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_setup();
        let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .with_jitter(JitterModel::realistic(42))
            .profile_iteration(0)
            .unwrap()
            .trace;
        (base, trace)
    })
}

/// Everything that must be byte-identical between the bounded and the
/// full-ranking paths.
fn fingerprint(r: &CandidateResult) -> (String, usize, u64, u64, u64, u64) {
    (
        r.label.clone(),
        r.index,
        r.makespan.as_ns(),
        r.memory.total(),
        r.utilization.mfu.to_bits(),
        r.tokens_per_sec_per_gpu.to_bits(),
    )
}

fn run(spec: &SpaceSpec, objective: Objective, top_k: Option<usize>) -> SearchReport {
    let (base, trace) = shared_trace();
    let opts = SearchOptions {
        objective,
        top_k,
        ..SearchOptions::default()
    };
    search(trace, base, spec, &opts, AnalyticalCostModel::h100()).unwrap()
}

#[test]
fn bounded_topk_is_byte_identical_to_full_ranking() {
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2])
        .with_microbatches(&[2, 4])
        .with_interleave(&[1, 2])
        .with_arch(vec![
            lumos_search::ArchPoint::new("8L-d256", 8, 256, 1024),
            lumos_search::ArchPoint::new("8L-d512", 8, 512, 2048),
        ]);
    for objective in [
        Objective::Makespan,
        Objective::PerGpuThroughput,
        Objective::Mfu,
    ] {
        let full = run(&spec, objective, None);
        assert!(full.results.len() > 5, "need a non-trivial survivor set");
        for k in [1, 3, full.results.len() + 10] {
            let bounded = run(&spec, objective, Some(k));
            let want: Vec<_> = full.results.iter().take(k).map(fingerprint).collect();
            let got: Vec<_> = bounded.results.iter().map(fingerprint).collect();
            assert_eq!(got, want, "objective {objective}, k {k}");
            // Every admitted candidate is accounted for: fully scored,
            // memory-pruned, or provably dominated.
            let s = &bounded.stats;
            assert_eq!(
                s.evaluated + s.bound_skipped + s.memory_pruned,
                full.stats.evaluated + full.stats.memory_pruned,
                "objective {objective}, k {k}: {s:?}"
            );
            assert_eq!(s.enumerated, full.stats.enumerated);
        }
    }
}

#[test]
fn full_ranking_mode_never_skips() {
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2]).with_microbatches(&[2, 4]);
    let report = run(&spec, Objective::PerGpuThroughput, None);
    assert_eq!(report.stats.bound_skipped, 0);
    assert_eq!(report.stats.evaluated, report.results.len());
}

#[test]
fn memo_shares_stage_costs_across_pp_dp_microbatch_variants() {
    // One tensor-parallel degree and two architectures: at most three
    // distinct stage-cost keys however many PP/DP/micro-batch
    // variants the grid holds.
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2, 4])
        .with_microbatches(&[2, 4, 8])
        .with_arch(vec![
            lumos_search::ArchPoint::new("8L-d256", 8, 256, 1024),
            lumos_search::ArchPoint::new("8L-d512", 8, 512, 2048),
        ]);
    let report = run(&spec, Objective::Makespan, Some(1));
    assert!(
        report.memo.misses <= 3,
        "one derivation per stage-cost key, got {:?}",
        report.memo
    );
    assert!(
        report.memo.hits > 0,
        "bound queries after the first per key must hit, got {:?}",
        report.memo
    );
    assert!(report.stats.bound_skipped > 0, "{:?}", report.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming enumeration is the materialized grid, lazily.
    #[test]
    fn streaming_enumeration_matches_materialized(
        tp_mask in 1u32..8,
        pp_mask in 1u32..16,
        dp_mask in 1u32..8,
        mb_mask in 1u32..8,
        v_mask in 1u32..4,
        max_gpus in prop_oneof![Just(4u32), Just(8u32), Just(64u32)],
    ) {
        let pick = |mask: u32, values: &[u32]| -> Vec<u32> {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        };
        let base = base_setup();
        let spec = SpaceSpec {
            tp: pick(tp_mask, &[1, 2, 3]),
            pp: pick(pp_mask, &[1, 2, 3, 4]),
            dp: pick(dp_mask, &[1, 2, 4]),
            microbatches: pick(mb_mask, &[2, 4, 6]),
            interleave: pick(v_mask, &[1, 2]),
            ..SpaceSpec::empty()
        }
        .with_max_gpus(max_gpus);

        let materialized = enumerate_candidates(&spec, &base);
        let mut stream = CandidateStream::new(&spec, &base);
        let streamed: Vec<_> = stream.by_ref().map(|ec| (ec.candidate, ec.setup)).collect();
        prop_assert_eq!(&streamed, &materialized.candidates);
        prop_assert_eq!(stream.stats(), materialized.stats);
    }

    /// Bounded top-k equals the full-ranking prefix on arbitrary small
    /// spaces (the end-to-end streaming-vs-materialized guarantee).
    #[test]
    fn bounded_topk_prefix_property(
        pp_mask in 1u32..8,
        mb_mask in 1u32..4,
        k in 1usize..6,
    ) {
        let pick = |mask: u32, values: &[u32]| -> Vec<u32> {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        };
        let spec = SpaceSpec::deployment_grid(&[1], &pick(pp_mask, &[1, 2, 4]), &[1, 2])
            .with_microbatches(&pick(mb_mask, &[2, 4]));
        let full = run(&spec, Objective::PerGpuThroughput, None);
        let bounded = run(&spec, Objective::PerGpuThroughput, Some(k));
        let want: Vec<_> = full.results.iter().take(k).map(fingerprint).collect();
        let got: Vec<_> = bounded.results.iter().map(fingerprint).collect();
        prop_assert_eq!(got, want);
    }

    /// `rank()` tolerates arbitrary finite/NaN/∞ objective-key mixes:
    /// no panic, finite keys ascending, non-finite keys strictly last,
    /// ties broken by enumeration index.
    #[test]
    fn rank_is_total_over_arbitrary_key_mixes(
        raw in proptest::collection::vec(
            prop_oneof![
                Just(f64::NAN),
                Just(-f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                -1.0e12..1.0e12,
                Just(0.0),
                Just(-0.0),
            ],
            0..24,
        ),
    ) {
        let template = template_result();
        let results: Vec<CandidateResult> = raw
            .iter()
            .enumerate()
            .map(|(index, &tput)| {
                let mut r = template.clone();
                r.index = index;
                // PerGpuThroughput key = -tokens_per_sec_per_gpu.
                r.tokens_per_sec_per_gpu = tput;
                r
            })
            .collect();
        let ranked = lumos_search::rank(results, Objective::PerGpuThroughput);
        prop_assert_eq!(ranked.len(), raw.len());
        let keys: Vec<f64> = ranked.iter().map(|r| -r.tokens_per_sec_per_gpu).collect();
        let first_bad = keys.iter().position(|k| !k.is_finite()).unwrap_or(keys.len());
        // Finite prefix ascending under total_cmp (ties by index),
        // non-finite suffix.
        for (w, kw) in ranked[..first_bad].windows(2).zip(keys.windows(2)) {
            match kw[0].total_cmp(&kw[1]) {
                std::cmp::Ordering::Less => {}
                std::cmp::Ordering::Equal => prop_assert!(w[0].index < w[1].index),
                std::cmp::Ordering::Greater => {
                    prop_assert!(false, "finite keys out of order: {} > {}", kw[0], kw[1])
                }
            }
        }
        for k in &keys[first_bad..] {
            prop_assert!(!k.is_finite());
        }
    }
}

/// One real evaluated result to clone as a template for synthetic
/// ranking inputs.
fn template_result() -> &'static CandidateResult {
    static CELL: OnceLock<CandidateResult> = OnceLock::new();
    CELL.get_or_init(|| {
        let spec = SpaceSpec::deployment_grid(&[1], &[2], &[1]).with_microbatches(&[2]);
        let report = run(&spec, Objective::PerGpuThroughput, None);
        report.results[0].clone()
    })
}

/// The headline regression: a NaN-keyed result must sort strictly
/// last, never panic the sort, and never displace a finite result.
#[test]
fn nan_producing_candidate_ranks_last_not_first() {
    let template = template_result();
    let mut nan_result = template.clone();
    nan_result.index = 0; // most-favored tie-break position
    nan_result.tokens_per_sec_per_gpu = f64::NAN;
    let mut inf_result = template.clone();
    inf_result.index = 1;
    inf_result.tokens_per_sec_per_gpu = f64::INFINITY; // key = -∞: "best" under naive sorts
    let mut good = template.clone();
    good.index = 2;

    let ranked = lumos_search::rank(
        vec![nan_result, inf_result, good.clone()],
        Objective::PerGpuThroughput,
    );
    assert_eq!(ranked[0].index, good.index, "finite result must win");
    assert!(!ranked[1].tokens_per_sec_per_gpu.is_finite());
    assert!(!ranked[2].tokens_per_sec_per_gpu.is_finite());
}

#[test]
fn degenerate_candidates_are_rejected_with_reasons_not_ranked() {
    let (base, trace) = shared_trace();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1]).with_microbatches(&[2, 4]);
    // A device with no peak FLOP/s makes MFU undefined for every
    // candidate: all must land in `rejected` with a typed reason.
    let mut opts = SearchOptions {
        objective: Objective::Mfu,
        ..SearchOptions::default()
    };
    opts.gpu.peak_tflops_bf16 = 0.0;
    let report = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert!(report.results.is_empty(), "nothing rankable");
    assert!(!report.rejected.is_empty());
    assert_eq!(report.stats.infeasible, report.stats.evaluated);
    for r in &report.rejected {
        assert_eq!(r.reason, Infeasibility::NoPeakFlops);
        assert!(r.reason.to_string().contains("peak FLOP"));
    }
    // The report renders the rejection summary instead of panicking.
    let text = report.format_top(5);
    assert!(text.contains("rejected during scoring"), "{text}");
}

#[test]
fn hundred_thousand_candidate_space_completes_with_bounded_retention() {
    let (base, trace) = shared_trace();
    // 1 × 2 × 340 × 3 × 50 = 102 000 grid points; the lattice admits
    // only the handful with ≤ 8 GPUs and chunkable interleaving, so
    // the walk must be cheap and retention must stay ∝ top-k.
    let dp: Vec<u32> = (1..=340).collect();
    let interleave: Vec<u32> = (1..=50).collect();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &dp)
        .with_microbatches(&[2, 4, 8])
        .with_interleave(&interleave)
        .with_max_gpus(8);
    let k = 10;
    let opts = SearchOptions {
        objective: Objective::PerGpuThroughput,
        top_k: Some(k),
        ..SearchOptions::default()
    };
    let report = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert_eq!(report.stats.enumerated, 102_000);
    assert!(report.results.len() <= k);
    assert!(report.pruned.len() <= k);
    assert!(report.rejected.len() <= k);
    assert!(!report.results.is_empty());

    // Byte-identical to the materialized full ranking of the same
    // space (the admitted set is small enough to rank exhaustively).
    let full = search(
        trace,
        base,
        &spec,
        &SearchOptions {
            objective: Objective::PerGpuThroughput,
            top_k: None,
            ..SearchOptions::default()
        },
        AnalyticalCostModel::h100(),
    )
    .unwrap();
    let want: Vec<_> = full.results.iter().take(k).map(fingerprint).collect();
    let got: Vec<_> = report.results.iter().map(fingerprint).collect();
    assert_eq!(got, want);
    // Accounting covers every admitted candidate.
    let admitted = enumerate_candidates(&spec, base).candidates.len();
    let s = &report.stats;
    assert_eq!(s.evaluated + s.bound_skipped + s.memory_pruned, admitted);
}

#[test]
fn deadline_and_cancel_interrupt_search_with_typed_error() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let (base, trace) = shared_trace();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &[1, 2]).with_microbatches(&[2, 4]);

    // An already-expired deadline cancels before any candidate is
    // claimed: the typed error, not a partial report.
    let opts = SearchOptions {
        deadline: Some(std::time::Duration::ZERO),
        ..SearchOptions::default()
    };
    let err = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap_err();
    assert!(
        matches!(err, lumos_search::SearchError::DeadlineExceeded),
        "{err:?}"
    );
    assert!(err.to_string().contains("deadline"), "{err}");

    // A pre-set cancel flag takes the same cooperative path (this is
    // what makes `--keep-all` searches interruptible).
    let opts = SearchOptions {
        cancel: Some(Arc::new(AtomicBool::new(true))),
        ..SearchOptions::default()
    };
    let err = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap_err();
    assert!(
        matches!(err, lumos_search::SearchError::DeadlineExceeded),
        "{err:?}"
    );

    // An armed-but-unset flag must not perturb the run: results are
    // byte-identical to a plain search.
    let plain = run(&spec, Objective::PerGpuThroughput, None);
    let opts = SearchOptions {
        objective: Objective::PerGpuThroughput,
        cancel: Some(Arc::new(AtomicBool::new(false))),
        deadline: Some(std::time::Duration::from_secs(3600)),
        ..SearchOptions::default()
    };
    let flagged = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    let want: Vec<_> = plain.results.iter().map(fingerprint).collect();
    let got: Vec<_> = flagged.results.iter().map(fingerprint).collect();
    assert_eq!(got, want);
}

#[test]
fn deadline_interrupts_refinement_phase_too() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let (base, trace) = shared_trace();
    let spec = SpaceSpec::deployment_grid(&[1], &[2], &[1]).with_microbatches(&[2]);
    // The cancel flag flips during the screen, so the run reaches the
    // refinement phase already cancelled — its workers must bail with
    // the typed error instead of panicking on unclaimed slots.
    let cancel = Arc::new(AtomicBool::new(true));
    let opts = SearchOptions {
        refine_sim: true,
        cancel: Some(cancel),
        ..SearchOptions::default()
    };
    let err = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap_err();
    assert!(
        matches!(err, lumos_search::SearchError::DeadlineExceeded),
        "{err:?}"
    );
}

#[test]
fn shared_memo_warms_across_runs_without_changing_results() {
    use std::sync::Arc;
    let (base, trace) = shared_trace();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2])
        .with_microbatches(&[2, 4])
        .with_interleave(&[1, 2]);
    let plain = run(&spec, Objective::PerGpuThroughput, Some(5));

    let memo = Arc::new(lumos_search::SharedStageMemo::new());
    let opts = || SearchOptions {
        objective: Objective::PerGpuThroughput,
        top_k: Some(5),
        shared_memo: Some(Arc::clone(&memo)),
        ..SearchOptions::default()
    };
    let first = search(trace, base, &spec, &opts(), AnalyticalCostModel::h100()).unwrap();
    let after_first = memo.stats();
    assert!(
        after_first.misses > 0,
        "first run must populate the shared memo, got {after_first:?}"
    );
    let second = search(trace, base, &spec, &opts(), AnalyticalCostModel::h100()).unwrap();
    let after_second = memo.stats();
    // The second run derives nothing new — every stage-work lookup is
    // answered from the shared memo.
    assert_eq!(
        after_second.misses, after_first.misses,
        "warm run must not re-derive stage work"
    );
    assert!(after_second.hits > after_first.hits);

    // Warmth is an accounting matter only: all three runs rank
    // byte-identically.
    let want: Vec<_> = plain.results.iter().map(fingerprint).collect();
    for report in [&first, &second] {
        let got: Vec<_> = report.results.iter().map(fingerprint).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn progress_sink_fires_on_large_grids() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    let (base, trace) = shared_trace();
    let dp: Vec<u32> = (1..=100).collect();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2], &dp)
        .with_microbatches(&[2])
        .with_max_gpus(4);
    let calls = Arc::new(AtomicUsize::new(0));
    let seen = calls.clone();
    let opts = SearchOptions {
        top_k: Some(3),
        progress: Some(lumos_search::ProgressSink::new(move |p| {
            assert!(p.claimed <= p.grid_points);
            seen.fetch_add(1, Ordering::Relaxed);
        })),
        ..SearchOptions::default()
    };
    search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
    assert!(calls.load(Ordering::Relaxed) > 0);
}
