//! Calibrate-once guarantees of the search engine:
//!
//! * a search against a [`SearchCalibration`] rebuilt from a
//!   serialized → deserialized [`CalibrationArtifact`] produces a
//!   [`SearchReport`] byte-identical (formatted output included) to a
//!   fit-on-the-fly [`search`] of the source trace — through the
//!   simulation-refined phase too;
//! * repeated queries against one calibration are self-consistent
//!   (same report every time, different spaces answered from the same
//!   fit).

use lumos_calib::CalibrationArtifact;
use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{
    search, search_calibrated, Objective, SearchCalibration, SearchOptions, SearchReport, SpaceSpec,
};
use lumos_trace::ClusterTrace;
use std::sync::OnceLock;

fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("calib-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn shared() -> &'static (TrainingSetup, ClusterTrace, CalibrationArtifact) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace, CalibrationArtifact)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_setup();
        let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .with_jitter(JitterModel::realistic(42))
            .profile_iteration(0)
            .unwrap()
            .trace;
        let artifact = CalibrationArtifact::calibrate(&trace, &base, "h100", 8).unwrap();
        // Round-trip through the on-disk representation before use:
        // the whole point is that the reloaded artifact answers
        // identically.
        let artifact = CalibrationArtifact::from_json(&artifact.to_json()).unwrap();
        (base, trace, artifact)
    })
}

/// Everything observable about a report, as comparable text.
fn render(report: &SearchReport) -> String {
    let mut s = report.format_top(32);
    for r in &report.results {
        s.push_str(&format!(
            "|{} idx={} mk={} sim={} tok={:.9} mfu={:.9}",
            r.label,
            r.index,
            r.makespan.as_ns(),
            r.simulated_makespan.as_ns(),
            r.tokens_per_sec_per_gpu,
            r.utilization.mfu,
        ));
    }
    if let Some(refined) = &report.refined {
        for r in refined {
            s.push_str(&format!(
                "|R {} idx={} an={} sim={} d={:.12}",
                r.label,
                r.index,
                r.analytic_makespan.as_ns(),
                r.simulated_makespan.as_ns(),
                r.delta,
            ));
        }
    }
    s
}

#[test]
fn artifact_round_trip_search_is_byte_identical() {
    let (base, trace, artifact) = shared();
    let spec = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2, 4]).with_microbatches(&[2, 4]);
    for objective in [
        Objective::PerGpuThroughput,
        Objective::Makespan,
        Objective::Mfu,
    ] {
        let opts = SearchOptions {
            objective,
            top_k: Some(5),
            refine_sim: true,
            jitter_replicas: 2,
            ..SearchOptions::default()
        };
        let fresh = search(trace, base, &spec, &opts, AnalyticalCostModel::h100()).unwrap();
        let calib = SearchCalibration::from_artifact(artifact, AnalyticalCostModel::h100());
        let reloaded = search_calibrated(&calib, &spec, &opts).unwrap();
        assert_eq!(render(&fresh), render(&reloaded), "objective {objective:?}");
        assert_eq!(fresh.base_makespan, reloaded.base_makespan);
        assert_eq!(fresh.base_label, reloaded.base_label);
    }
}

#[test]
fn one_calibration_answers_many_queries() {
    let (_, _, artifact) = shared();
    let calib = SearchCalibration::from_artifact(artifact, AnalyticalCostModel::h100());
    let opts = SearchOptions {
        top_k: Some(3),
        ..SearchOptions::default()
    };

    // Different spaces, one fit.
    let narrow = SpaceSpec::deployment_grid(&[1], &[2], &[1, 2]).with_microbatches(&[4]);
    let wide = SpaceSpec::deployment_grid(&[1], &[1, 2, 4], &[1, 2, 4]).with_microbatches(&[2, 4]);
    let narrow_report = search_calibrated(&calib, &narrow, &opts).unwrap();
    let wide_report = search_calibrated(&calib, &wide, &opts).unwrap();
    assert!(!narrow_report.results.is_empty());
    assert!(wide_report.stats.evaluated >= narrow_report.stats.evaluated);

    // Determinism across repeated identical queries.
    let again = search_calibrated(&calib, &wide, &opts).unwrap();
    assert_eq!(render(&wide_report), render(&again));
}
