//! Issue-mandated guarantees of the corpus-guided adaptive engine:
//!
//! * adaptive top-k equals exhaustive top-k on every committed example
//!   space, across 1/2/4/7 workers (the verification sweep makes small
//!   spaces provably exact — `AdaptiveOutcome::Exact`);
//! * the same equality holds property-tested over arbitrary small
//!   spaces;
//! * a fixed `--seed` replays byte-identical reports;
//! * exhausting the evaluation budget returns the typed
//!   `AdaptiveOutcome::BudgetExhausted` partial-result marker, never an
//!   error.

use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_search::{
    search, AdaptiveOutcome, CandidateResult, SearchOptions, SearchReport, SpaceSpec, SpecFile,
};
use lumos_trace::ClusterTrace;
use proptest::prelude::*;
use std::sync::OnceLock;

/// An 8-layer research model profiled at tp=2, so the committed
/// example spaces (whose tp axes start at 2) are trace-reachable.
fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("adaptive-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(2, 1, 1).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn shared_trace() -> &'static (TrainingSetup, ClusterTrace) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_setup();
        let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .with_jitter(JitterModel::realistic(42))
            .profile_iteration(0)
            .unwrap()
            .trace;
        (base, trace)
    })
}

/// Everything that must agree between adaptive and exhaustive runs.
fn fingerprint(r: &CandidateResult) -> (String, usize, u64, u64, u64, u64) {
    (
        r.label.clone(),
        r.index,
        r.makespan.as_ns(),
        r.memory.total(),
        r.utilization.mfu.to_bits(),
        r.tokens_per_sec_per_gpu.to_bits(),
    )
}

fn run(spec: &SpaceSpec, opts: &SearchOptions) -> SearchReport {
    let (base, trace) = shared_trace();
    search(trace, base, spec, opts, AnalyticalCostModel::h100()).unwrap()
}

fn exhaustive_opts(top_k: usize) -> SearchOptions {
    SearchOptions {
        top_k: Some(top_k),
        ..SearchOptions::default()
    }
}

fn adaptive_opts(top_k: usize, threads: usize) -> SearchOptions {
    SearchOptions {
        top_k: Some(top_k),
        threads: Some(threads),
        adaptive: true,
        ..SearchOptions::default()
    }
}

/// Asserts everything the daemon/CLI JSON contract exposes is equal:
/// ranked results, grid accounting, lattice counters, memory prunes.
fn assert_reports_match(adaptive: &SearchReport, exhaustive: &SearchReport, context: &str) {
    let got: Vec<_> = adaptive.results.iter().map(fingerprint).collect();
    let want: Vec<_> = exhaustive.results.iter().map(fingerprint).collect();
    assert_eq!(got, want, "{context}: ranked results differ");
    let (a, e) = (&adaptive.stats, &exhaustive.stats);
    assert_eq!(a.enumerated, e.enumerated, "{context}: grid accounting");
    assert_eq!(a.budget_rejects, e.budget_rejects, "{context}");
    assert_eq!(a.divisibility_rejects, e.divisibility_rejects, "{context}");
    assert_eq!(a.structural_rejects, e.structural_rejects, "{context}");
    assert_eq!(a.memory_pruned, e.memory_pruned, "{context}");
    // Every admitted candidate is accounted for: scored, pruned, or
    // provably dominated by the screen.
    assert_eq!(
        a.evaluated + a.bound_skipped,
        e.evaluated + e.bound_skipped,
        "{context}: screen accounting"
    );
}

fn example_space(name: &str) -> SpaceSpec {
    let path = format!(
        "{}/../../examples/spaces/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).unwrap();
    SpecFile::parse(&text).unwrap().space
}

#[test]
fn adaptive_equals_exhaustive_on_committed_example_spaces_across_workers() {
    for name in ["sweep.toml", "schedules.toml"] {
        let spec = example_space(name);
        let exhaustive = run(&spec, &exhaustive_opts(10));
        assert!(
            !exhaustive.results.is_empty(),
            "{name}: fixture must be feasible from the tp=2 base"
        );
        for threads in [1usize, 2, 4, 7] {
            let report = run(&spec, &adaptive_opts(10, threads));
            let adaptive = report.adaptive.expect("adaptive run reports accounting");
            assert_eq!(
                adaptive.outcome,
                AdaptiveOutcome::Exact,
                "{name}: committed spaces are under the sweep cap, so the \
                 verification sweep must prove exactness"
            );
            assert_reports_match(&report, &exhaustive, &format!("{name} threads={threads}"));
        }
    }
}

#[test]
fn fixed_seed_replays_byte_identical_reports() {
    // A space large enough (> the seed-probe count) that the RNG
    // actually steers exploration.
    let spec = SpaceSpec::deployment_grid(&[1, 2], &[1, 2, 4, 8], &[1, 2, 4])
        .with_microbatches(&[2, 4, 8])
        .with_interleave(&[1, 2]);
    let mut opts = adaptive_opts(10, 1);
    opts.seed = 7;
    let first = run(&spec, &opts);
    let second = run(&spec, &opts);
    assert_eq!(
        format!("{first}"),
        format!("{second}"),
        "same seed, same space: the rendered report must be byte-identical"
    );
    let (a, b) = (first.adaptive.unwrap(), second.adaptive.unwrap());
    assert_eq!(a.visited, b.visited);
    assert_eq!(a.mutations, b.mutations);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.outcome, b.outcome);
}

#[test]
fn budget_exhaustion_is_a_typed_marker_not_an_error() {
    // > 64 grid points (so the run cannot finish inside the seed
    // batch) and a budget of one full evaluation.
    let spec = SpaceSpec::deployment_grid(&[2], &[1, 2, 4, 8], &[1, 2, 4, 8])
        .with_microbatches(&[1, 2, 4, 8, 16]);
    let mut opts = adaptive_opts(5, 2);
    opts.budget = Some(1);
    let report = run(&spec, &opts);
    let adaptive = report.adaptive.expect("adaptive accounting present");
    assert_eq!(
        adaptive.outcome,
        AdaptiveOutcome::BudgetExhausted,
        "a one-evaluation budget cannot cover the space: {adaptive:?}"
    );
    assert!(
        adaptive.visited < adaptive.grid_points,
        "exhaustion must leave part of the space unvisited: {adaptive:?}"
    );
    // The partial answer is still a ranked, usable report.
    assert!(!report.results.is_empty());
}

#[test]
fn adaptive_display_names_the_outcome() {
    let spec = example_space("schedules.toml");
    let report = run(&spec, &adaptive_opts(5, 1));
    let text = format!("{report}");
    assert!(
        text.contains("adaptive: exact"),
        "report must surface the adaptive outcome:\n{text}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adaptive equals exhaustive top-k on arbitrary small spaces, for
    /// every worker count the issue names.
    #[test]
    fn adaptive_equals_exhaustive_property(
        pp_mask in 1u32..8,
        dp_mask in 1u32..4,
        mb_mask in 1u32..4,
        k in 1usize..6,
        seed in 0u64..1000,
    ) {
        let pick = |mask: u32, values: &[u32]| -> Vec<u32> {
            values
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect()
        };
        let spec = SpaceSpec::deployment_grid(&[2], &pick(pp_mask, &[1, 2, 4]), &pick(dp_mask, &[1, 2]))
            .with_microbatches(&pick(mb_mask, &[2, 4]));
        let exhaustive = run(&spec, &exhaustive_opts(k));
        for threads in [1usize, 2, 4, 7] {
            let mut opts = adaptive_opts(k, threads);
            opts.seed = seed;
            let report = run(&spec, &opts);
            prop_assert_eq!(
                report.adaptive.unwrap().outcome,
                AdaptiveOutcome::Exact
            );
            let got: Vec<_> = report.results.iter().map(fingerprint).collect();
            let want: Vec<_> = exhaustive.results.iter().map(fingerprint).collect();
            prop_assert_eq!(got, want, "threads={}, seed={}", threads, seed);
        }
    }
}
