//! Guarantees of the fault-robustness pass:
//!
//! * identical `(spec, seed, replica-count)` inputs produce
//!   byte-identical robust rankings on 1/2/4/7 worker threads
//!   (property-tested over seeds and replica counts);
//! * a `--faults` run with an **empty** spec is byte-identical to a
//!   plain `--refine-sim` run — down to the formatted report;
//! * the committed `examples/spaces/robust-demo.toml` space has a
//!   robust-optimal deployment that differs from its clean-optimal
//!   one under `examples/fixtures/faults-pp-degraded.toml`;
//! * the committed `examples/fixtures/faults.toml` CI fixture stays
//!   pinned to the spec this test generates.

use lumos_cluster::scenario::{DegradationSpec, FailureSpec, StragglerSpec};
use lumos_cluster::FaultSpec;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{
    BatchConfig, ModelConfig, Parallelism, RecoveryCosts, ScheduleKind, ScopeClass, TrainingSetup,
};
use lumos_search::{search, Objective, RefinedResult, SearchOptions, SearchReport, SpecFile};
use lumos_trace::ClusterTrace;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Small research model; the base deployment can transform into every
/// candidate the tests enumerate.
fn shared_trace() -> &'static (TrainingSetup, ClusterTrace) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = TrainingSetup {
            model: ModelConfig::custom("faults-e2e", 8, 256, 1024, 4, 64),
            parallelism: Parallelism::new(1, 2, 2).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let trace = lumos_cluster::GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .profile_iteration(0)
            .unwrap()
            .trace;
        (base, trace)
    })
}

fn mixed_spec() -> FaultSpec {
    FaultSpec::parse(
        r#"
        version = 1
        [[straggler]]
        probability = 0.5
        ranks = 1
        slowdown = 1.5
        [[degradation]]
        probability = 0.4
        scope = "dp"
        bandwidth_factor = 0.25
        [[failure]]
        probability = 0.25
        checkpoint_interval = 50
        [[failure]]
        probability = 0.2
        elastic = true
        "#,
    )
    .unwrap()
}

fn run(opts: &SearchOptions, space: &str) -> SearchReport {
    let (base, trace) = shared_trace();
    let spec = SpecFile::parse(space).unwrap();
    search(trace, base, &spec.space, opts, AnalyticalCostModel::h100()).unwrap()
}

const SMALL_SPACE: &str = "tp = [1]\npp = [1, 2]\ndp = [1, 2]\nmicrobatches = [4, 8]";

fn fault_opts(threads: Option<usize>, replicas: u32, seed: u64) -> SearchOptions {
    SearchOptions {
        objective: Objective::Makespan,
        top_k: Some(4),
        refine_sim: true,
        fault_spec: Some(mixed_spec()),
        fault_replicas: replicas,
        fault_seed: seed,
        threads,
        ..SearchOptions::default()
    }
}

/// `(replicas, expected_ns, p95_ns, degradation_bits, robustness_bits)`.
type FaultBits = (u32, u64, u64, u64, u64);

/// Everything of the robust ranking that must be bit-identical.
fn fingerprint(r: &RefinedResult) -> (String, usize, u64, Option<FaultBits>) {
    (
        r.label.clone(),
        r.index,
        r.simulated_makespan.as_ns(),
        r.faults.as_ref().map(|f| {
            (
                f.replicas,
                f.expected.as_ns(),
                f.p95.as_ns(),
                f.degradation.to_bits(),
                f.robustness.to_bits(),
            )
        }),
    )
}

proptest! {
    // Engine-refined searches are expensive; a few sampled
    // (seed, replica-count) points across four thread counts each is
    // plenty to falsify order-dependence.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn robust_rankings_byte_identical_across_thread_counts(
        seed in 0u64..1_000_000,
        replicas in 1u32..10,
    ) {
        let reference: Vec<_> = run(&fault_opts(Some(1), replicas, seed), SMALL_SPACE)
            .refined
            .unwrap()
            .iter()
            .map(fingerprint)
            .collect();
        prop_assert!(reference.iter().any(|f| f.3.is_some()));
        for threads in [2usize, 4, 7] {
            let got: Vec<_> = run(&fault_opts(Some(threads), replicas, seed), SMALL_SPACE)
                .refined
                .unwrap()
                .iter()
                .map(fingerprint)
                .collect();
            prop_assert_eq!(
                &got,
                &reference,
                "robust ranking differs at {} threads (seed {}, {} replicas)",
                threads,
                seed,
                replicas
            );
        }
    }
}

#[test]
fn empty_spec_is_byte_identical_to_plain_refine() {
    let plain = run(
        &SearchOptions {
            fault_spec: None,
            ..fault_opts(None, 8, 2025)
        },
        SMALL_SPACE,
    );
    let empty = run(
        &SearchOptions {
            fault_spec: Some(FaultSpec::default()),
            ..fault_opts(None, 8, 2025)
        },
        SMALL_SPACE,
    );
    // Same rankings, same stats, and the formatted report is
    // byte-identical — no robustness columns appear for an empty spec.
    assert_eq!(plain.format_top(10), empty.format_top(10));
    assert!(empty.refined.unwrap().iter().all(|r| r.faults.is_none()));
}

#[test]
fn committed_space_has_differing_robust_winner() {
    let space = include_str!("../../../examples/spaces/robust-demo.toml");
    let faults = FaultSpec::parse(include_str!(
        "../../../examples/fixtures/faults-pp-degraded.toml"
    ))
    .unwrap();

    let clean = run(
        &SearchOptions {
            fault_spec: None,
            ..fault_opts(None, 0, 2025)
        },
        space,
    );
    let clean_winner = clean.refined.as_ref().unwrap()[0].label.clone();
    assert_eq!(
        clean_winner, "1x2x1 m=8",
        "the pipeline should win on a clean cluster"
    );

    let robust = run(
        &SearchOptions {
            fault_spec: Some(faults),
            fault_replicas: 4,
            ..fault_opts(None, 0, 2025)
        },
        space,
    );
    let refined = robust.refined.as_ref().unwrap();
    let robust_winner = refined[0].label.clone();
    assert_eq!(
        robust_winner, "1x1x1 m=8",
        "under severe pp degradation the single-GPU deployment must win"
    );
    assert_ne!(clean_winner, robust_winner);
    // The ranked results prefix follows the robust order, and the
    // report carries the robustness columns.
    assert_eq!(robust.results[0].label, robust_winner);
    let text = robust.format_top(10);
    assert!(
        text.contains("expected makespan under injected faults"),
        "{text}"
    );
    assert!(text.contains("robust"), "{text}");
    // The pipelined loser shows real degradation; the winner is clean.
    let loser = refined
        .iter()
        .find(|r| r.label == "1x2x1 m=8")
        .expect("pp=2 finalist present");
    assert!(loser.faults.as_ref().unwrap().degradation > 0.5);
    let winner_faults = refined[0].faults.as_ref().unwrap();
    assert!(winner_faults.degradation.abs() < 1e-9);
    assert!((winner_faults.robustness - 1.0).abs() < 1e-9);
}

#[test]
fn ci_fixture_is_pinned() {
    // The generator for examples/fixtures/faults.toml: if the file
    // drifts from this spec, regenerate it (or revert the edit).
    let text = include_str!("../../../examples/fixtures/faults.toml");
    let expected = FaultSpec {
        stragglers: vec![StragglerSpec {
            probability: 0.4,
            ranks: 1,
            slowdown: 1.35,
        }],
        degradations: vec![DegradationSpec {
            probability: 0.3,
            scope: Some(ScopeClass::Dp),
            bandwidth_factor: 0.25,
            start_frac: 0.25,
            end_frac: 0.75,
        }],
        failures: vec![
            FailureSpec {
                probability: 0.1,
                elastic: false,
                recovery: RecoveryCosts {
                    checkpoint_interval_iters: 100,
                    restart_latency_s: 120.0,
                    reshard_cost_s: 45.0,
                },
            },
            FailureSpec {
                probability: 0.05,
                elastic: true,
                recovery: RecoveryCosts {
                    checkpoint_interval_iters: 100,
                    restart_latency_s: 120.0,
                    reshard_cost_s: 45.0,
                },
            },
        ],
    };
    assert_eq!(FaultSpec::parse(text).unwrap(), expected);
}

#[test]
fn fault_stats_are_internally_consistent() {
    let report = run(&fault_opts(None, 12, 7), SMALL_SPACE);
    let refined = report.refined.unwrap();
    assert!(!refined.is_empty());
    for r in &refined {
        let f = r.faults.as_ref().expect("fault stats present");
        assert_eq!(f.replicas, 12);
        assert!(f.expected <= f.p95, "{}: expected above p95", r.label);
        assert!(
            f.expected >= r.simulated_makespan,
            "{}: faults cannot speed a run up",
            r.label
        );
        assert!(f.degradation >= 0.0, "{}", r.label);
        assert!(
            f.robustness > 0.0 && f.robustness <= 1.0,
            "{}: robustness {} out of (0, 1]",
            r.label,
            f.robustness
        );
    }
    // Re-ranked by expected makespan under faults, ascending.
    for pair in refined.windows(2) {
        let (a, b) = (
            pair[0].faults.as_ref().unwrap().expected,
            pair[1].faults.as_ref().unwrap().expected,
        );
        assert!(a <= b, "refined finals not sorted by expected makespan");
    }
}
