//! Model, parallelism, and schedule descriptions for Lumos.
//!
//! This crate captures everything the toolkit needs to know about
//! *what* is being trained and *how* it is deployed:
//!
//! * [`ModelConfig`] — GPT-3 transformer architectures (the paper's
//!   Table 1 presets and Table 2 variants), with parameter and FLOP
//!   accounting;
//! * [`Parallelism`] — 3D (tensor × pipeline × data) parallelism,
//!   Megatron-style rank coordinates and communicator groups;
//! * [`BatchConfig`] — sequence length, micro-batch size and count;
//! * [`ops`] — the logical operator IR for one transformer layer under
//!   tensor parallelism (forward and backward), embedding/head ops,
//!   and the optimizer step;
//! * [`PipelineSchedule`] — pipeline-schedule generation with
//!   validation and bubble analytics, driven by the pluggable
//!   [`registry`] of [`Schedule`] policies (1F1B per Narayanan et
//!   al., 2021, GPipe, and the zero-bubble ZB-H1 variant built in);
//! * [`memory`] — per-rank GPU memory estimation (weights, gradients,
//!   optimizer state, in-flight activations) with OOM checking, the
//!   feasibility gate the paper's §5 limitations call for.
//!
//! # Example
//!
//! ```
//! use lumos_model::{ModelConfig, Parallelism, PipelineSchedule, ScheduleKind};
//!
//! let model = ModelConfig::gpt3_15b();
//! let par = Parallelism::new(2, 2, 4)?;
//! assert_eq!(par.world_size(), 16);
//! let schedule = PipelineSchedule::generate(ScheduleKind::OneFOneB, par.pp, 8)?;
//! assert_eq!(schedule.stage(0).unwrap().len(), 16); // 8 fwd + 8 bwd
//! assert!(model.num_params() > 14_000_000_000);
//! # Ok::<(), lumos_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
pub mod flops;
mod gpt3;
pub mod inference;
pub mod interleaved;
pub mod memory;
pub mod ops;
mod parallel;
pub mod recovery;
pub mod registry;
mod schedule;
mod setup;
pub mod stagecost;

pub use batch::BatchConfig;
pub use error::ModelError;
pub use flops::{iteration_flops, utilization, IterationFlops, Utilization};
pub use gpt3::ModelConfig;
pub use inference::InferenceSetup;
pub use interleaved::{InterleavedItem, InterleavedSchedule};
pub use memory::{MemoryEstimate, MemoryModel, OomError, OptimizerPlacement, Recompute};
pub use parallel::{CommScope, GroupRegistry, Parallelism, RankCoords, ScopeClass};
pub use recovery::RecoveryCosts;
pub use registry::{Schedule, ScheduleAdjustment, ScheduleBuilder};
pub use schedule::{PipelineSchedule, ScheduleItem, ScheduleKind};
pub use setup::TrainingSetup;
pub use stagecost::{StageCostKey, StageWork};
