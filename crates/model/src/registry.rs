//! Pluggable pipeline-schedule registry.
//!
//! A [`Schedule`] object owns everything the toolkit needs to know
//! about one pipeline policy: per-stage item generation, in-flight
//! activation accounting (the memory model's bound), analytic bubble
//! fractions, and the adjustment applied when a simulated makespan for
//! one schedule shape stands in for another (replayed traces are
//! always 1F1B/GPipe-shaped; see [`ScheduleAdjustment`]).
//!
//! The built-in policies — 1F1B, GPipe, interleaved-aware 1F1B, and
//! the zero-bubble ZB-H1 variant — are registered at start-up.
//! Downstream crates register additional policies with [`register`]
//! and look them up by name with [`resolve`]; search spaces, the CLI,
//! and the serve daemon all go through the same names.

use crate::error::ModelError;
use crate::interleaved::InterleavedSchedule;
use crate::schedule::{PipelineSchedule, ScheduleItem, ScheduleKind};
use std::sync::Mutex;
use std::sync::OnceLock;

/// Rescales a makespan simulated under one schedule shape (the
/// *skeleton*) into an estimate for the schedule actually being
/// scored (the *target*).
///
/// Replay-based estimation pastes recorded blocks into a plain
/// 1F1B/GPipe skeleton, so schedules that reshape the pipeline —
/// interleaved 1F1B, zero-bubble — are scored by stripping the
/// skeleton's analytic bubble out of the simulated time and
/// re-applying their own, plus any extra pipeline-communication cost:
///
/// ```text
/// work  = simulated · (1 − skeleton_bubble)
/// extra = (comm_amplification − 1) · pp_comm_secs_per_rank
/// time  = work / (1 − target_bubble) + extra
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleAdjustment {
    /// Analytic bubble fraction of the schedule shape that was
    /// simulated.
    pub skeleton_bubble: f64,
    /// Analytic bubble fraction of the schedule being scored.
    pub target_bubble: f64,
    /// Pipeline-communication multiplier vs the skeleton (1.0 when
    /// the target sends the same activation traffic).
    pub comm_amplification: f64,
}

impl ScheduleAdjustment {
    /// Returns `true` when the bubble fractions make the rescale
    /// meaningless (degenerate pipelines where a bubble reaches 1).
    pub fn is_degenerate(&self) -> bool {
        self.target_bubble >= 1.0 || self.target_bubble.is_nan() || self.skeleton_bubble >= 1.0
    }

    /// Applies the adjustment to a simulated makespan, both in
    /// seconds. `pp_comm_secs_per_rank` is the average per-rank time
    /// spent in pipeline send/recv kernels during the simulation.
    pub fn apply_secs(&self, simulated_secs: f64, pp_comm_secs_per_rank: f64) -> f64 {
        let work_secs = simulated_secs * (1.0 - self.skeleton_bubble);
        let extra_comm_secs = (self.comm_amplification - 1.0) * pp_comm_secs_per_rank;
        (work_secs / (1.0 - self.target_bubble) + extra_comm_secs).max(0.0)
    }

    /// The factor a lower bound on the skeleton's makespan must be
    /// scaled by to remain a lower bound on the adjusted makespan
    /// (communication extras are dropped — they only add time).
    pub fn bound_scale(&self) -> f64 {
        (1.0 - self.skeleton_bubble) / (1.0 - self.target_bubble)
    }
}

/// One pipeline-scheduling policy.
///
/// Implementations are registered as `&'static` objects (see
/// [`register`]) and handled through the copyable
/// [`ScheduleKind`] wrapper everywhere else.
pub trait Schedule: Sync {
    /// Registry name (`"1f1b"`, `"gpipe"`, `"zb-h1"`), used in space
    /// files, CLI flags, and reports.
    fn name(&self) -> &'static str;

    /// Stable serialization tag. The built-in policies keep their
    /// pre-registry enum variant names (`"OneFOneB"`, `"GPipe"`) so
    /// existing setups and calibration artifacts load byte-identically.
    fn wire_name(&self) -> &'static str {
        self.name()
    }

    /// One-line description for catalogues and `lumos info`.
    fn description(&self) -> &'static str;

    /// The execution order of one stage: which micro-batch
    /// forward/backward/weight-grad items it runs, in order.
    fn stage_order(&self, stage: u32, num_stages: u32, num_microbatches: u32) -> Vec<ScheduleItem>;

    /// Peak number of in-flight micro-batches (live activation sets)
    /// on `stage`; the memory model charges activations for this many
    /// micro-batches and the validator enforces it as a bound.
    fn in_flight(&self, num_stages: u32, stage: u32, microbatches: u32) -> u32;

    /// Analytic pipeline bubble fraction under equal stage times.
    fn analytic_bubble(&self, num_stages: u32, num_microbatches: u32) -> f64;

    /// Whether backward is split into input-grad (`B`) and
    /// weight-grad (`W`) items. Split schedules lower `W` as separate
    /// compute on the backward thread and relocate data-parallel
    /// gradient reductions to the last `W`.
    fn split_backward(&self) -> bool {
        false
    }

    /// Adjustment for phase-1 estimates, where the simulated trace is
    /// a replayed 1F1B/GPipe-shaped skeleton. `None` means the replay
    /// already has the right shape.
    fn replay_adjustment(&self, pp: u32, m: u32, interleave: u32) -> Option<ScheduleAdjustment>;

    /// Adjustment for phase-2 estimates, where the engine simulates a
    /// natively lowered program. `None` means the lowering already
    /// realizes this schedule (no analytic correction needed).
    fn engine_adjustment(&self, pp: u32, m: u32, interleave: u32) -> Option<ScheduleAdjustment>;
}

/// Megatron-LM's one-forward-one-backward policy (Narayanan et al.,
/// 2021): bounded activation memory, `(P−1)/(M+P−1)` bubble. Carries
/// the interleaved virtual-stage adjustment when `interleave > 1`.
pub struct OneFOneB;

impl Schedule for OneFOneB {
    fn name(&self) -> &'static str {
        "1f1b"
    }

    fn wire_name(&self) -> &'static str {
        "OneFOneB"
    }

    fn description(&self) -> &'static str {
        "one-forward-one-backward (Megatron default; bounded activation memory)"
    }

    fn stage_order(&self, stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
        one_f_one_b_order(stage, num_stages, m)
    }

    fn in_flight(&self, num_stages: u32, stage: u32, microbatches: u32) -> u32 {
        microbatches.min(num_stages - stage)
    }

    fn analytic_bubble(&self, num_stages: u32, num_microbatches: u32) -> f64 {
        PipelineSchedule::analytic_bubble(num_stages, num_microbatches)
    }

    fn replay_adjustment(&self, pp: u32, m: u32, interleave: u32) -> Option<ScheduleAdjustment> {
        if interleave <= 1 {
            return None;
        }
        Some(ScheduleAdjustment {
            skeleton_bubble: PipelineSchedule::analytic_bubble(pp, m),
            target_bubble: InterleavedSchedule::analytic_bubble(pp, interleave, m),
            comm_amplification: InterleavedSchedule::analytic_comm_amplification(pp, interleave),
        })
    }

    fn engine_adjustment(&self, pp: u32, m: u32, interleave: u32) -> Option<ScheduleAdjustment> {
        // The engine lowers plain 1F1B programs; interleaved
        // candidates still need the virtual-stage correction.
        self.replay_adjustment(pp, m, interleave)
    }
}

/// GPipe: all forwards, then all backwards. Same analytic bubble as
/// 1F1B but unbounded in-flight activations.
pub struct GPipe;

impl Schedule for GPipe {
    fn name(&self) -> &'static str {
        "gpipe"
    }

    fn wire_name(&self) -> &'static str {
        "GPipe"
    }

    fn description(&self) -> &'static str {
        "all forwards then all backwards (unbounded activation memory)"
    }

    fn stage_order(&self, _stage: u32, _num_stages: u32, m: u32) -> Vec<ScheduleItem> {
        gpipe_order(m)
    }

    fn in_flight(&self, _num_stages: u32, _stage: u32, microbatches: u32) -> u32 {
        microbatches
    }

    fn analytic_bubble(&self, num_stages: u32, num_microbatches: u32) -> f64 {
        PipelineSchedule::analytic_bubble(num_stages, num_microbatches)
    }

    fn replay_adjustment(&self, _pp: u32, _m: u32, _interleave: u32) -> Option<ScheduleAdjustment> {
        None
    }

    fn engine_adjustment(&self, _pp: u32, _m: u32, _interleave: u32) -> Option<ScheduleAdjustment> {
        None
    }
}

/// ZB-H1-style zero-bubble schedule (Qi et al., 2023): backward is
/// split into an input-grad item `B` and a weight-grad item `W`;
/// weight-grad work fills the cool-down bubble, shrinking the
/// analytic bubble to `(P−1)/(3M+P−1)` at 1F1B's activation memory.
pub struct ZbH1;

impl Schedule for ZbH1 {
    fn name(&self) -> &'static str {
        "zb-h1"
    }

    fn description(&self) -> &'static str {
        "zero-bubble H1: backward split into input-grad and weight-grad; \
         weight-grad fills the cool-down bubble"
    }

    fn stage_order(&self, stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
        zb_h1_order(stage, num_stages, m)
    }

    fn in_flight(&self, num_stages: u32, stage: u32, microbatches: u32) -> u32 {
        // Same activation bound as 1F1B — the H1 variant's defining
        // property (weight-grad needs stashed inputs, not the full
        // activation set, and those are charged to the backward).
        microbatches.min(num_stages - stage)
    }

    fn analytic_bubble(&self, num_stages: u32, num_microbatches: u32) -> f64 {
        // With F = B = W = one unit of work, each stage runs 3M units
        // and the pipeline fill costs P−1.
        let p = num_stages as f64;
        let m = num_microbatches as f64;
        (p - 1.0) / (3.0 * m + p - 1.0)
    }

    fn split_backward(&self) -> bool {
        true
    }

    fn replay_adjustment(&self, pp: u32, m: u32, _interleave: u32) -> Option<ScheduleAdjustment> {
        // Replayed skeletons paste full recorded backward blocks into
        // a 1F1B shape; rescale that shape's bubble into ZB-H1's.
        Some(ScheduleAdjustment {
            skeleton_bubble: PipelineSchedule::analytic_bubble(pp, m),
            target_bubble: self.analytic_bubble(pp, m),
            comm_amplification: 1.0,
        })
    }

    fn engine_adjustment(&self, _pp: u32, _m: u32, _interleave: u32) -> Option<ScheduleAdjustment> {
        // The lowering splits backward natively, so the engine
        // simulates the real zero-bubble program.
        None
    }
}

/// The built-in `1f1b` schedule object.
pub static ONE_F_ONE_B: OneFOneB = OneFOneB;
/// The built-in `gpipe` schedule object.
pub static GPIPE: GPipe = GPipe;
/// The built-in `zb-h1` schedule object.
pub static ZB_H1: ZbH1 = ZbH1;

const BUILTINS: [&'static dyn Schedule; 3] = [&ONE_F_ONE_B, &GPIPE, &ZB_H1];

fn extras() -> &'static Mutex<Vec<&'static dyn Schedule>> {
    static EXTRAS: OnceLock<Mutex<Vec<&'static dyn Schedule>>> = OnceLock::new();
    EXTRAS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers an additional schedule. The object must live for the
/// program's lifetime (a `static`, or a leaked box).
///
/// # Errors
///
/// Returns [`ModelError::InvalidSchedule`] when a schedule with the
/// same name (or wire name) is already registered.
pub fn register(schedule: &'static dyn Schedule) -> Result<(), ModelError> {
    let mut extras = extras().lock().expect("schedule registry poisoned");
    let clash = BUILTINS
        .iter()
        .chain(extras.iter())
        .any(|s| s.name() == schedule.name() || s.wire_name() == schedule.wire_name());
    if clash {
        return Err(ModelError::InvalidSchedule {
            reason: format!("schedule `{}` is already registered", schedule.name()),
        });
    }
    extras.push(schedule);
    Ok(())
}

/// Looks up a schedule by registry name or wire name.
pub fn resolve(name: &str) -> Option<ScheduleKind> {
    let extras = extras().lock().expect("schedule registry poisoned");
    BUILTINS
        .iter()
        .chain(extras.iter())
        .find(|s| s.name() == name || s.wire_name() == name)
        .map(|s| ScheduleKind::from_schedule(*s))
}

/// The names of every registered schedule, built-ins first, in
/// registration order.
pub fn known_names() -> Vec<&'static str> {
    let extras = extras().lock().expect("schedule registry poisoned");
    BUILTINS
        .iter()
        .chain(extras.iter())
        .map(|s| s.name())
        .collect()
}

/// Every registered schedule, built-ins first, in registration order.
pub fn all() -> Vec<ScheduleKind> {
    let extras = extras().lock().expect("schedule registry poisoned");
    BUILTINS
        .iter()
        .chain(extras.iter())
        .map(|s| ScheduleKind::from_schedule(*s))
        .collect()
}

/// Constructs a [`ScheduleKind`] from configuration — the one place
/// that turns user-supplied names (space files, CLI flags, serve
/// requests) into schedule objects.
///
/// ```
/// use lumos_model::registry::ScheduleBuilder;
/// use lumos_model::ScheduleKind;
///
/// let kind = ScheduleBuilder::from_name("zb-h1").build()?;
/// assert_eq!(kind, ScheduleKind::ZbH1);
/// # Ok::<(), lumos_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    name: String,
}

impl ScheduleBuilder {
    /// Starts a builder for the named schedule.
    pub fn from_name(name: &str) -> Self {
        ScheduleBuilder {
            name: name.to_string(),
        }
    }

    /// Resolves the configured name against the registry.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownSchedule`] naming the known set
    /// when the name does not resolve.
    pub fn build(&self) -> Result<ScheduleKind, ModelError> {
        resolve(&self.name).ok_or_else(|| ModelError::UnknownSchedule {
            name: self.name.clone(),
            known: known_names().join(", "),
        })
    }
}

/// Megatron 1F1B order for one stage: `P − s − 1` warm-up forwards, a
/// steady phase alternating forward/backward, then cool-down
/// backwards.
pub(crate) fn one_f_one_b_order(stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
    let warmup = (num_stages - stage - 1).min(m);
    let mut order = Vec::with_capacity(2 * m as usize);
    for mb in 0..warmup {
        order.push(ScheduleItem::Forward { mb });
    }
    let steady = m - warmup;
    for i in 0..steady {
        order.push(ScheduleItem::Forward { mb: warmup + i });
        order.push(ScheduleItem::Backward { mb: i });
    }
    for mb in steady..m {
        order.push(ScheduleItem::Backward { mb });
    }
    order
}

/// GPipe order: all forwards, then all backwards.
pub(crate) fn gpipe_order(m: u32) -> Vec<ScheduleItem> {
    (0..m)
        .map(|mb| ScheduleItem::Forward { mb })
        .chain((0..m).map(|mb| ScheduleItem::Backward { mb }))
        .collect()
}

/// ZB-H1 order for one stage: the 1F1B skeleton with weight-grad
/// items filling the cool-down (one `W` after each cool-down `B`) and
/// the remainder draining at the end. Dropping the `W` items yields
/// exactly the 1F1B order — replay paths rely on this.
pub(crate) fn zb_h1_order(stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
    let warmup = (num_stages - stage - 1).min(m);
    let steady = m - warmup;
    let mut order = Vec::with_capacity(3 * m as usize);
    for mb in 0..warmup {
        order.push(ScheduleItem::Forward { mb });
    }
    for i in 0..steady {
        order.push(ScheduleItem::Forward { mb: warmup + i });
        order.push(ScheduleItem::Backward { mb: i });
    }
    for mb in steady..m {
        order.push(ScheduleItem::Backward { mb });
        order.push(ScheduleItem::WeightGrad { mb: mb - steady });
    }
    for mb in warmup..m {
        order.push(ScheduleItem::WeightGrad { mb });
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_resolve() {
        for name in ["1f1b", "gpipe", "zb-h1", "OneFOneB", "GPipe"] {
            assert!(resolve(name).is_some(), "{name} should resolve");
        }
        assert!(resolve("pipedream").is_none());
    }

    #[test]
    fn builder_reports_known_set() {
        let err = ScheduleBuilder::from_name("bogus").build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bogus"), "{msg}");
        assert!(msg.contains("1f1b") && msg.contains("zb-h1"), "{msg}");
    }

    #[test]
    fn zb_h1_drops_to_one_f_one_b_skeleton() {
        for p in 1..6u32 {
            for m in 1..10u32 {
                for s in 0..p {
                    let zb: Vec<_> = zb_h1_order(s, p, m)
                        .into_iter()
                        .filter(|i| !matches!(i, ScheduleItem::WeightGrad { .. }))
                        .collect();
                    assert_eq!(zb, one_f_one_b_order(s, p, m), "p={p} m={m} s={s}");
                }
            }
        }
    }

    #[test]
    fn zb_h1_bubble_beats_one_f_one_b() {
        let zb = ZB_H1.analytic_bubble(4, 8);
        let plain = PipelineSchedule::analytic_bubble(4, 8);
        assert!(zb < plain, "{zb} vs {plain}");
        assert!((zb - 3.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn adjustment_matches_interleave_formula() {
        let adj = ONE_F_ONE_B.replay_adjustment(4, 8, 2).expect("interleaved");
        assert_eq!(adj.skeleton_bubble, PipelineSchedule::analytic_bubble(4, 8));
        assert_eq!(
            adj.target_bubble,
            InterleavedSchedule::analytic_bubble(4, 2, 8)
        );
        assert_eq!(adj.comm_amplification, 7.0 / 3.0);
        assert!(ONE_F_ONE_B.replay_adjustment(4, 8, 1).is_none());
    }

    #[test]
    fn zb_adjustment_rescales_makespan_down() {
        let adj = ZB_H1.replay_adjustment(4, 8, 1).expect("zb adjusts replay");
        assert!(!adj.is_degenerate());
        let adjusted = adj.apply_secs(11.0, 0.0);
        // 11 s of 1F1B-shaped time = 8 s of work; ZB-H1 runs it in
        // 8 / (1 - 3/27) = 9 s.
        assert!((adjusted - 9.0).abs() < 1e-9, "{adjusted}");
        assert!(ZB_H1.engine_adjustment(4, 8, 1).is_none());
    }
}
