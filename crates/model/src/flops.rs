//! Iteration-level FLOP accounting and model-FLOPS-utilization (MFU).
//!
//! The paper's §5 limitations list "FLOPS utilization" among the
//! system-level metrics left to future work; this module provides it.
//! Definitions follow the PaLM / Megatron convention:
//!
//! * **model FLOPs** — the FLOPs the *algorithm* requires: one forward
//!   pass plus the backward pass (2× forward);
//! * **hardware FLOPs** — model FLOPs plus any recomputation the
//!   implementation performs (activation checkpointing re-runs the
//!   forward pass during backward);
//! * **MFU** = model FLOPs ÷ (wall time × #GPUs × peak FLOP/s);
//! * **HFU** = hardware FLOPs ÷ (wall time × #GPUs × peak FLOP/s).
//!
//! FLOPs are computed from the transformer shapes, not from the 6·N·D
//! approximation, so the quadratic attention term is priced exactly.

use crate::memory::Recompute;
use crate::setup::TrainingSetup;
use serde::{Deserialize, Serialize};
use std::fmt;

/// FLOPs of one training iteration, summed over every rank (global).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationFlops {
    /// Forward-pass FLOPs (transformer layers + LM head).
    pub forward: u64,
    /// Backward-pass FLOPs (2× forward, dgrad + wgrad).
    pub backward: u64,
    /// Extra forward FLOPs re-executed under activation
    /// checkpointing (zero unless [`Recompute::Full`]).
    pub recompute: u64,
}

impl IterationFlops {
    /// FLOPs the algorithm requires (MFU numerator).
    pub fn model_flops(&self) -> u64 {
        self.forward + self.backward
    }

    /// FLOPs the hardware executes (HFU numerator).
    pub fn hardware_flops(&self) -> u64 {
        self.forward + self.backward + self.recompute
    }
}

/// Computes the global per-iteration FLOPs of a training setup.
///
/// Covers the transformer stack and the LM-head projection; embedding
/// lookups and optimizer arithmetic are omitted (sub-0.1% of total for
/// GPT-3-scale models).
pub fn iteration_flops(setup: &TrainingSetup, recompute: Recompute) -> IterationFlops {
    let model = &setup.model;
    let batch = &setup.batch;
    let seq = batch.seq_len;
    // Tokens processed per iteration across all data-parallel replicas.
    let tokens = batch.global_batch(setup.parallelism.dp) * seq;
    let layers = model.forward_flops(tokens, seq);
    let head = 2 * model.hidden_size * model.vocab_size * tokens;
    let forward = layers + head;
    let backward = 2 * forward;
    let recompute = match recompute {
        // Selective recomputation re-runs only softmax-scale work; the
        // flash-attention backward already re-reads K/Q so its cost is
        // inside the backward factor. Treat it as free, like MFU
        // reports from Megatron do.
        Recompute::None | Recompute::Selective => 0,
        Recompute::Full => forward - head, // layers re-run; head is not checkpointed
    };
    IterationFlops {
        forward,
        backward,
        recompute,
    }
}

/// Utilization of a replayed or measured iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// Model-FLOPS utilization in `[0, 1]`.
    pub mfu: f64,
    /// Hardware-FLOPS utilization in `[0, 1]` (≥ MFU).
    pub hfu: f64,
    /// Achieved model TFLOP/s per GPU.
    pub tflops_per_gpu: f64,
}

impl fmt::Display for Utilization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MFU {:.1}% / HFU {:.1}% ({:.0} TFLOP/s per GPU)",
            self.mfu * 100.0,
            self.hfu * 100.0,
            self.tflops_per_gpu
        )
    }
}

/// Computes MFU/HFU for an iteration that took `iter_time_secs` on
/// `setup.parallelism.world_size()` GPUs with the given per-GPU peak.
///
/// # Panics
///
/// Panics if `iter_time_secs` or `peak_flops_per_gpu` is not positive.
pub fn utilization(
    setup: &TrainingSetup,
    recompute: Recompute,
    iter_time_secs: f64,
    peak_flops_per_gpu: f64,
) -> Utilization {
    assert!(iter_time_secs > 0.0, "iteration time must be positive");
    assert!(peak_flops_per_gpu > 0.0, "peak FLOP/s must be positive");
    let flops = iteration_flops(setup, recompute);
    let gpus = setup.parallelism.world_size() as f64;
    let denom = iter_time_secs * gpus * peak_flops_per_gpu;
    Utilization {
        mfu: flops.model_flops() as f64 / denom,
        hfu: flops.hardware_flops() as f64 / denom,
        tflops_per_gpu: flops.model_flops() as f64 / (iter_time_secs * gpus) / 1e12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpt3::ModelConfig;
    use crate::parallel::Parallelism;

    fn setup_175b() -> TrainingSetup {
        TrainingSetup::new(ModelConfig::gpt3_175b(), Parallelism::new(8, 4, 8).unwrap())
    }

    #[test]
    fn matches_6nd_approximation() {
        // Model FLOPs per token should be within ~25% of 6·N (the
        // approximation undercounts attention and the LM head).
        let s = setup_175b();
        let flops = iteration_flops(&s, Recompute::Selective);
        let tokens = s.batch.global_batch(8) * s.batch.seq_len;
        let per_token = flops.model_flops() as f64 / tokens as f64;
        let approx = 6.0 * s.model.num_params() as f64;
        let ratio = per_token / approx;
        assert!(
            (0.95..1.25).contains(&ratio),
            "per-token {per_token:.3e} vs 6N {approx:.3e} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn backward_is_twice_forward() {
        let flops = iteration_flops(&setup_175b(), Recompute::Selective);
        assert_eq!(flops.backward, 2 * flops.forward);
        assert_eq!(flops.recompute, 0);
        assert_eq!(flops.model_flops(), flops.hardware_flops());
    }

    #[test]
    fn full_recompute_adds_one_forward() {
        let none = iteration_flops(&setup_175b(), Recompute::Selective);
        let full = iteration_flops(&setup_175b(), Recompute::Full);
        assert!(full.recompute > 0);
        assert!(full.recompute < full.forward); // head not recomputed
        assert_eq!(none.model_flops(), full.model_flops());
        assert!(full.hardware_flops() > full.model_flops());
    }

    #[test]
    fn flops_scale_with_dp() {
        let mut s = setup_175b();
        let base = iteration_flops(&s, Recompute::Selective);
        s.parallelism = Parallelism::new(8, 4, 16).unwrap();
        let doubled = iteration_flops(&s, Recompute::Selective);
        assert_eq!(doubled.forward, 2 * base.forward);
    }

    #[test]
    fn mfu_is_plausible_for_h100() {
        // 8 micro-batches of 2048 tokens × 8 replicas on 256 H100s: a
        // 7-second iteration corresponds to ~40% MFU — the realistic
        // band for the paper's Figure 1 setup (~7s iterations).
        let s = setup_175b();
        let u = utilization(&s, Recompute::Selective, 7.0, 989e12);
        assert!((0.05..0.95).contains(&u.mfu), "implausible MFU {}", u.mfu);
        assert_eq!(u.mfu, u.hfu);
        assert!(u.tflops_per_gpu > 0.0);
    }

    #[test]
    fn hfu_at_least_mfu() {
        let s = setup_175b();
        let u = utilization(&s, Recompute::Full, 7.0, 989e12);
        assert!(u.hfu > u.mfu);
    }

    #[test]
    fn faster_iteration_higher_mfu() {
        let s = setup_175b();
        let fast = utilization(&s, Recompute::Selective, 5.0, 989e12);
        let slow = utilization(&s, Recompute::Selective, 10.0, 989e12);
        assert!(fast.mfu > slow.mfu);
        assert!((fast.mfu / slow.mfu - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_time_panics() {
        let _ = utilization(&setup_175b(), Recompute::Selective, 0.0, 1.0);
    }

    #[test]
    fn display_formats_percent() {
        let u = Utilization {
            mfu: 0.412,
            hfu: 0.52,
            tflops_per_gpu: 407.0,
        };
        let text = u.to_string();
        assert!(text.contains("41.2%"));
        assert!(text.contains("407"));
    }
}
