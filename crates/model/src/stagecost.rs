//! Stage-cost factoring for configuration search.
//!
//! A pipeline candidate's per-stage compute cost is determined by a
//! small sub-configuration of the full [`TrainingSetup`]: the tensor-
//! parallel degree (kernel shard shapes), the layer shape (hidden /
//! feed-forward / head / vocabulary dimensions), and the per-micro-
//! batch workload (sequence length × micro-batch size). Pipeline
//! depth, data parallelism, interleaving, and the *number* of
//! micro-batches only rearrange those per-stage costs — they never
//! change them.
//!
//! [`StageCostKey`] captures exactly that determining tuple, so cost
//! derivations can be memoized once per key and shared across every
//! candidate that differs only in PP/DP/micro-batch-count/interleave.
//! [`StageWork`] holds derived per-micro-batch stage seconds and
//! combines them into the analytic serial-work lower bound search
//! engines use to skip provably dominated candidates.

use crate::setup::TrainingSetup;

/// The sub-configuration that determines per-stage compute costs.
///
/// Two setups with equal keys have identical per-layer, embedding, and
/// LM-head costs under any cost model that prices kernels by shape —
/// regardless of their pipeline/data-parallel degrees, micro-batch
/// counts, or interleaving.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StageCostKey {
    /// Tensor-parallel degree (shard shapes).
    pub tp: u32,
    /// Model (hidden) dimension.
    pub hidden: u64,
    /// Feed-forward inner dimension.
    pub ffn: u64,
    /// Attention heads.
    pub heads: u32,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Vocabulary size (embedding / LM-head shapes).
    pub vocab: u64,
    /// Sequence length per sample.
    pub seq_len: u64,
    /// Samples per micro-batch.
    pub microbatch_size: u64,
}

impl StageCostKey {
    /// The stage-cost key of a setup.
    pub fn of(setup: &TrainingSetup) -> Self {
        StageCostKey {
            tp: setup.parallelism.tp,
            hidden: setup.model.hidden_size,
            ffn: setup.model.ffn_size,
            heads: setup.model.num_heads,
            head_dim: setup.model.head_dim,
            vocab: setup.model.vocab_size,
            seq_len: setup.batch.seq_len,
            microbatch_size: setup.batch.microbatch_size,
        }
    }
}

/// Per-micro-batch stage work in seconds, resolved for one candidate's
/// layer arrangement: `layer_secs[l]` is the combined forward +
/// backward compute cost of target layer `l`, with embedding and head
/// costs held separately (they pin to the first and last stage).
///
/// All entries are *lower bounds* on serial device time when built for
/// pruning; combinators preserve that direction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageWork {
    /// Forward + backward seconds per target layer, per micro-batch.
    pub layer_secs: Vec<f64>,
    /// Embedding block seconds (first stage), per micro-batch.
    pub embed_secs: f64,
    /// LM-head block seconds (last stage), per micro-batch.
    pub head_secs: f64,
}

impl StageWork {
    /// Per-micro-batch work of `stage` when the layers are dealt
    /// contiguously over `pp` stages (the Megatron partition). Layers
    /// that do not divide evenly are not supported by the schedules
    /// this models, so `layer_secs.len()` must be a multiple of `pp`.
    pub fn stage_secs(&self, pp: u32, stage: u32) -> f64 {
        let per_stage = self.layer_secs.len() / pp as usize;
        let start = per_stage * stage as usize;
        let mut secs: f64 = self.layer_secs[start..start + per_stage].iter().sum();
        if stage == 0 {
            secs += self.embed_secs;
        }
        if stage == pp - 1 {
            secs += self.head_secs;
        }
        secs
    }

    /// Per-micro-batch work of the busiest stage.
    pub fn bottleneck_stage_secs(&self, pp: u32) -> f64 {
        (0..pp).map(|s| self.stage_secs(pp, s)).fold(0.0, f64::max)
    }

    /// Analytic lower bound on any pipeline-parallel iteration over
    /// `num_microbatches` micro-batches: the busiest stage must run
    /// its forward and backward work for every micro-batch serially,
    /// whatever the schedule, overlap, or communication pattern.
    pub fn pipeline_lower_bound_secs(&self, pp: u32, num_microbatches: u32) -> f64 {
        num_microbatches as f64 * self.bottleneck_stage_secs(pp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpt3::ModelConfig;
    use crate::parallel::Parallelism;

    fn setup(tp: u32, pp: u32, dp: u32, microbatches: u32) -> TrainingSetup {
        let mut s = TrainingSetup::new(
            ModelConfig::custom("stagecost", 8, 512, 2048, 8, 64),
            Parallelism::new(tp, pp, dp).unwrap(),
        );
        s.batch.num_microbatches = microbatches;
        s
    }

    #[test]
    fn key_ignores_pp_dp_microbatch_count_and_interleave() {
        let a = StageCostKey::of(&setup(2, 1, 1, 2));
        let b = StageCostKey::of(&setup(2, 4, 8, 16));
        assert_eq!(a, b);
    }

    #[test]
    fn key_distinguishes_tp_and_shape() {
        let base = StageCostKey::of(&setup(2, 2, 1, 4));
        assert_ne!(base, StageCostKey::of(&setup(4, 2, 1, 4)));
        let mut wider = setup(2, 2, 1, 4);
        wider.model.hidden_size = 1024;
        assert_ne!(base, StageCostKey::of(&wider));
        let mut longer = setup(2, 2, 1, 4);
        longer.batch.seq_len *= 2;
        assert_ne!(base, StageCostKey::of(&longer));
    }

    #[test]
    fn stage_secs_partitions_layers_and_pins_embed_head() {
        let work = StageWork {
            layer_secs: vec![1.0, 2.0, 3.0, 4.0],
            embed_secs: 10.0,
            head_secs: 20.0,
        };
        // pp=2: stage 0 = layers 0..2 + embed, stage 1 = 2..4 + head.
        assert_eq!(work.stage_secs(2, 0), 1.0 + 2.0 + 10.0);
        assert_eq!(work.stage_secs(2, 1), 3.0 + 4.0 + 20.0);
        // pp=1: everything on the single stage.
        assert_eq!(work.stage_secs(1, 0), 1.0 + 2.0 + 3.0 + 4.0 + 30.0);
        assert_eq!(work.bottleneck_stage_secs(2), 27.0);
    }

    #[test]
    fn lower_bound_scales_with_microbatches() {
        let work = StageWork {
            layer_secs: vec![1.0, 1.0],
            embed_secs: 0.0,
            head_secs: 0.0,
        };
        assert_eq!(work.pipeline_lower_bound_secs(2, 1), 1.0);
        assert_eq!(work.pipeline_lower_bound_secs(2, 8), 8.0);
        assert_eq!(work.pipeline_lower_bound_secs(1, 4), 8.0);
    }
}
