//! Pipeline-parallel schedules.
//!
//! Generates per-stage forward/backward orderings for the 1F1B policy
//! (Narayanan et al., 2021 — the policy named in the paper's Figure 4),
//! GPipe (all-forward-then-all-backward, for comparison studies), and
//! any other policy registered in [`crate::registry`]. Graph
//! manipulation regenerates these schedules when the
//! pipeline-parallel degree changes (§3.4).

use crate::error::ModelError;
use crate::registry::{self, Schedule, ScheduleAdjustment};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

/// One slot in a stage's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleItem {
    /// Forward pass of micro-batch `mb`.
    Forward {
        /// Micro-batch index (0-based).
        mb: u32,
    },
    /// Backward pass of micro-batch `mb`. For split-backward
    /// schedules this is the input-grad half only.
    Backward {
        /// Micro-batch index (0-based).
        mb: u32,
    },
    /// Weight-gradient pass of micro-batch `mb` (only emitted by
    /// split-backward schedules such as `zb-h1`).
    WeightGrad {
        /// Micro-batch index (0-based).
        mb: u32,
    },
}

impl ScheduleItem {
    /// The micro-batch this item processes.
    pub fn mb(&self) -> u32 {
        match *self {
            ScheduleItem::Forward { mb }
            | ScheduleItem::Backward { mb }
            | ScheduleItem::WeightGrad { mb } => mb,
        }
    }

    /// Returns `true` for forward items.
    pub fn is_forward(&self) -> bool {
        matches!(self, ScheduleItem::Forward { .. })
    }
}

impl fmt::Display for ScheduleItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleItem::Forward { mb } => write!(f, "F{mb}"),
            ScheduleItem::Backward { mb } => write!(f, "B{mb}"),
            ScheduleItem::WeightGrad { mb } => write!(f, "W{mb}"),
        }
    }
}

/// A handle to one registered scheduling policy.
///
/// Historically a closed enum; now a copyable wrapper around a
/// `&'static dyn Schedule` from [`crate::registry`], so new policies
/// plug in without touching generation, memory accounting, scoring,
/// or lowering. The built-in policies remain reachable as associated
/// constants (`ScheduleKind::OneFOneB`, `ScheduleKind::GPipe`,
/// `ScheduleKind::ZbH1`) and keep their pre-registry serialized names.
#[derive(Clone, Copy)]
pub struct ScheduleKind(&'static dyn Schedule);

impl ScheduleKind {
    /// One-forward-one-backward (Megatron's default; bounded
    /// activation memory).
    #[allow(non_upper_case_globals)]
    pub const OneFOneB: ScheduleKind = ScheduleKind(&registry::ONE_F_ONE_B);
    /// GPipe: all forwards, then all backwards.
    #[allow(non_upper_case_globals)]
    pub const GPipe: ScheduleKind = ScheduleKind(&registry::GPIPE);
    /// Zero-bubble H1: backward split into input-grad and weight-grad
    /// items; weight-grad fills the cool-down bubble.
    #[allow(non_upper_case_globals)]
    pub const ZbH1: ScheduleKind = ScheduleKind(&registry::ZB_H1);

    /// Wraps a registered schedule object.
    pub(crate) fn from_schedule(schedule: &'static dyn Schedule) -> Self {
        ScheduleKind(schedule)
    }

    /// Looks the name up in the registry (accepts registry names like
    /// `"1f1b"` and legacy wire names like `"OneFOneB"`).
    pub fn from_name(name: &str) -> Option<Self> {
        registry::resolve(name)
    }

    /// The underlying schedule object.
    pub fn as_schedule(&self) -> &'static dyn Schedule {
        self.0
    }

    /// Registry name (`"1f1b"`, `"gpipe"`, `"zb-h1"`).
    pub fn name(&self) -> &'static str {
        self.0.name()
    }

    /// Stable serialization tag (`"OneFOneB"`, `"GPipe"`, `"zb-h1"`).
    pub fn wire_name(&self) -> &'static str {
        self.0.wire_name()
    }

    /// One-line description for catalogues and `lumos info`.
    pub fn description(&self) -> &'static str {
        self.0.description()
    }

    /// The execution order of one stage.
    pub fn stage_order(&self, stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
        self.0.stage_order(stage, num_stages, m)
    }

    /// Peak in-flight micro-batches on `stage` (activation-memory
    /// accounting and the validator's bound).
    pub fn in_flight(&self, num_stages: u32, stage: u32, microbatches: u32) -> u32 {
        self.0.in_flight(num_stages, stage, microbatches)
    }

    /// Analytic pipeline bubble fraction under equal stage times.
    pub fn analytic_bubble(&self, num_stages: u32, num_microbatches: u32) -> f64 {
        self.0.analytic_bubble(num_stages, num_microbatches)
    }

    /// Whether backward is split into input-grad and weight-grad
    /// items.
    pub fn split_backward(&self) -> bool {
        self.0.split_backward()
    }

    /// Adjustment for replay-based (phase-1) estimates; see
    /// [`Schedule::replay_adjustment`].
    pub fn replay_adjustment(
        &self,
        pp: u32,
        m: u32,
        interleave: u32,
    ) -> Option<ScheduleAdjustment> {
        self.0.replay_adjustment(pp, m, interleave)
    }

    /// Adjustment for engine-simulated (phase-2) estimates; see
    /// [`Schedule::engine_adjustment`].
    pub fn engine_adjustment(
        &self,
        pp: u32,
        m: u32,
        interleave: u32,
    ) -> Option<ScheduleAdjustment> {
        self.0.engine_adjustment(pp, m, interleave)
    }
}

impl PartialEq for ScheduleKind {
    fn eq(&self, other: &Self) -> bool {
        // Registry names are unique, so name equality is identity.
        self.0.name() == other.0.name()
    }
}

impl Eq for ScheduleKind {}

impl Hash for ScheduleKind {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.name().hash(state);
    }
}

impl fmt::Debug for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the pre-registry derived output for the built-ins
        // ("OneFOneB", "GPipe").
        f.write_str(self.wire_name())
    }
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Serialize for ScheduleKind {
    fn serialize_value(&self) -> serde::Value {
        // Byte-identical to the old derived enum encoding: a plain
        // string holding the variant (wire) name.
        serde::Value::String(self.wire_name().to_string())
    }
}

impl Deserialize for ScheduleKind {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::de::Error> {
        match v {
            serde::Value::String(s) => registry::resolve(s).ok_or_else(|| {
                serde::de::Error::new(format!(
                    "unknown schedule `{s}` for ScheduleKind (known: {})",
                    registry::known_names().join(", ")
                ))
            }),
            other => Err(serde::de::Error::expected("string for ScheduleKind", other)),
        }
    }
}

/// A complete pipeline schedule: for each stage, the order in which it
/// executes micro-batch forward and backward passes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    kind: ScheduleKind,
    num_stages: u32,
    num_microbatches: u32,
    stages: Vec<Vec<ScheduleItem>>,
}

impl PipelineSchedule {
    /// Generates a schedule by asking the policy object for every
    /// stage's order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySchedule`] when `num_stages` or
    /// `num_microbatches` is zero.
    pub fn generate(
        kind: ScheduleKind,
        num_stages: u32,
        num_microbatches: u32,
    ) -> Result<Self, ModelError> {
        if num_stages == 0 || num_microbatches == 0 {
            return Err(ModelError::EmptySchedule);
        }
        let stages = (0..num_stages)
            .map(|s| kind.stage_order(s, num_stages, num_microbatches))
            .collect();
        let schedule = PipelineSchedule {
            kind,
            num_stages,
            num_microbatches,
            stages,
        };
        schedule
            .validate()
            .expect("generated schedules are always valid");
        Ok(schedule)
    }

    /// The policy used.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> u32 {
        self.num_stages
    }

    /// Number of micro-batches per iteration.
    pub fn num_microbatches(&self) -> u32 {
        self.num_microbatches
    }

    /// The execution order of a stage.
    pub fn stage(&self, stage: u32) -> Option<&[ScheduleItem]> {
        self.stages.get(stage as usize).map(Vec::as_slice)
    }

    /// Iterates over `(stage, order)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[ScheduleItem])> {
        self.stages
            .iter()
            .enumerate()
            .map(|(s, v)| (s as u32, v.as_slice()))
    }

    /// Validates schedule safety and completeness:
    ///
    /// * every stage runs every micro-batch exactly once forward and
    ///   once backward (plus exactly one weight-grad for
    ///   split-backward policies, and none otherwise);
    /// * forwards appear in micro-batch order, as do backwards and
    ///   weight-grads;
    /// * on every stage, `B(i)` comes after `F(i)` and `W(i)` after
    ///   `B(i)`;
    /// * the number of in-flight micro-batches on stage `s` never
    ///   exceeds the policy's own bound
    ///   ([`ScheduleKind::in_flight`]; `P − s` for 1F1B and ZB-H1,
    ///   unbounded-up-to-`M` for GPipe).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSchedule`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), ModelError> {
        let m = self.num_microbatches;
        let expected_w = if self.kind.split_backward() { m } else { 0 };
        for (s, order) in self.iter() {
            let mut next_f = 0u32;
            let mut next_b = 0u32;
            let mut next_w = 0u32;
            let mut in_flight = 0i64;
            let mut max_in_flight = 0i64;
            for item in order {
                match item {
                    ScheduleItem::Forward { mb } => {
                        if *mb != next_f {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: expected F{next_f}, found F{mb}"),
                            });
                        }
                        next_f += 1;
                        in_flight += 1;
                        max_in_flight = max_in_flight.max(in_flight);
                    }
                    ScheduleItem::Backward { mb } => {
                        if *mb != next_b {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: expected B{next_b}, found B{mb}"),
                            });
                        }
                        if *mb >= next_f {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: B{mb} precedes its forward"),
                            });
                        }
                        next_b += 1;
                        in_flight -= 1;
                    }
                    ScheduleItem::WeightGrad { mb } => {
                        if *mb != next_w {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: expected W{next_w}, found W{mb}"),
                            });
                        }
                        if *mb >= next_b {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: W{mb} precedes its backward"),
                            });
                        }
                        next_w += 1;
                    }
                }
            }
            if next_f != m || next_b != m {
                return Err(ModelError::InvalidSchedule {
                    reason: format!(
                        "stage {s}: ran {next_f} forwards / {next_b} backwards, expected {m}"
                    ),
                });
            }
            if next_w != expected_w {
                return Err(ModelError::InvalidSchedule {
                    reason: format!("stage {s}: ran {next_w} weight-grads, expected {expected_w}"),
                });
            }
            let bound = self.kind.in_flight(self.num_stages, s, m) as i64;
            if max_in_flight > bound {
                return Err(ModelError::InvalidSchedule {
                    reason: format!(
                        "stage {s}: {max_in_flight} micro-batches in flight exceeds {} bound {bound}",
                        self.kind.name()
                    ),
                });
            }
        }
        Ok(())
    }

    /// The analytic pipeline bubble fraction of this schedule under
    /// equal stage times (`(P-1)/(M+P-1)` for 1F1B and GPipe;
    /// policy-specific otherwise).
    pub fn bubble_fraction(&self) -> f64 {
        self.kind
            .analytic_bubble(self.num_stages, self.num_microbatches)
    }

    /// The 1F1B/GPipe bubble `(P-1)/(M+P-1)` without generating the
    /// schedule — for planners and cost bounds that only need the
    /// number (the formula is shared by every unsplit
    /// single-chunk policy).
    pub fn analytic_bubble(num_stages: u32, num_microbatches: u32) -> f64 {
        let p = num_stages as f64;
        let m = num_microbatches as f64;
        (p - 1.0) / (m + p - 1.0)
    }

    /// Compact rendering of one stage's order (e.g.
    /// `F0 F1 B0 F2 B1 B2`), used in diagnostics and docs.
    pub fn stage_string(&self, stage: u32) -> String {
        self.stage(stage)
            .map(|items| {
                items
                    .iter()
                    .map(ScheduleItem::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_orders() {
        // Figure 4 (original): PP=4, M=8, stage 0 reads
        // F1 F2 F3 F4 B1 F5 B2 F6 B3 F7 B4 F8 B5 B6 B7 B8 (1-based).
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 8).unwrap();
        assert_eq!(
            s.stage_string(0),
            "F0 F1 F2 F3 B0 F4 B1 F5 B2 F6 B3 F7 B4 B5 B6 B7"
        );
        // Figure 4 (2x PP): PP=2, M=4... the paper keeps M=8 for the
        // original but scales to the TPxPP convention for the 2x row:
        // F1 F2 B1 F3 B2 F4 B3 B4 (1-based) at PP=2, M=4.
        let s2 = PipelineSchedule::generate(ScheduleKind::OneFOneB, 2, 4).unwrap();
        assert_eq!(s2.stage_string(0), "F0 F1 B0 F2 B1 F3 B2 B3");
    }

    #[test]
    fn last_stage_is_strictly_alternating() {
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 6).unwrap();
        let last = s.stage(3).unwrap();
        // Warm-up of 0: F0 B0 F1 B1 ...
        for (i, item) in last.iter().enumerate() {
            if i % 2 == 0 {
                assert!(item.is_forward());
            } else {
                assert!(!item.is_forward());
            }
            assert_eq!(item.mb(), (i / 2) as u32);
        }
    }

    #[test]
    fn fewer_microbatches_than_stages() {
        // M < P: warm-up saturates at M.
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 8, 2).unwrap();
        assert_eq!(s.stage_string(0), "F0 F1 B0 B1");
        s.validate().unwrap();
    }

    #[test]
    fn gpipe_all_f_then_all_b() {
        let s = PipelineSchedule::generate(ScheduleKind::GPipe, 4, 3).unwrap();
        assert_eq!(s.stage_string(2), "F0 F1 F2 B0 B1 B2");
    }

    #[test]
    fn zb_h1_fills_cooldown_with_weight_grads() {
        let s = PipelineSchedule::generate(ScheduleKind::ZbH1, 4, 8).unwrap();
        // Stage 0: 1F1B skeleton with W's after each cool-down B and
        // the rest draining at the end.
        assert_eq!(
            s.stage_string(0),
            "F0 F1 F2 F3 B0 F4 B1 F5 B2 F6 B3 F7 B4 B5 W0 B6 W1 B7 W2 W3 W4 W5 W6 W7"
        );
        // Last stage: strict 1F1B alternation, then the W drain.
        assert_eq!(
            s.stage_string(3),
            "F0 B0 F1 B1 F2 B2 F3 B3 F4 B4 F5 B5 F6 B6 F7 B7 \
             W0 W1 W2 W3 W4 W5 W6 W7"
        );
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(
            PipelineSchedule::generate(ScheduleKind::OneFOneB, 0, 4),
            Err(ModelError::EmptySchedule)
        );
        assert_eq!(
            PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 0),
            Err(ModelError::EmptySchedule)
        );
    }

    #[test]
    fn bubble_fraction_shrinks_with_microbatches() {
        let few = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 4).unwrap();
        let many = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 64).unwrap();
        assert!(few.bubble_fraction() > many.bubble_fraction());
        let single = PipelineSchedule::generate(ScheduleKind::OneFOneB, 1, 4).unwrap();
        assert_eq!(single.bubble_fraction(), 0.0);
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let mut s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 2, 2).unwrap();
        // Swap first two items of stage 0 to break forward ordering.
        s.stages[0].swap(0, 1);
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn validator_rejects_backward_before_forward() {
        let s = PipelineSchedule {
            kind: ScheduleKind::OneFOneB,
            num_stages: 1,
            num_microbatches: 1,
            stages: vec![vec![
                ScheduleItem::Backward { mb: 0 },
                ScheduleItem::Forward { mb: 0 },
            ]],
        };
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn validator_rejects_weight_grad_before_backward() {
        let s = PipelineSchedule {
            kind: ScheduleKind::ZbH1,
            num_stages: 1,
            num_microbatches: 1,
            stages: vec![vec![
                ScheduleItem::Forward { mb: 0 },
                ScheduleItem::WeightGrad { mb: 0 },
                ScheduleItem::Backward { mb: 0 },
            ]],
        };
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn validator_rejects_weight_grads_in_unsplit_schedules() {
        let s = PipelineSchedule {
            kind: ScheduleKind::OneFOneB,
            num_stages: 1,
            num_microbatches: 1,
            stages: vec![vec![
                ScheduleItem::Forward { mb: 0 },
                ScheduleItem::Backward { mb: 0 },
                ScheduleItem::WeightGrad { mb: 0 },
            ]],
        };
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn one_f_one_b_respects_memory_bound() {
        // In-flight micro-batches on stage s never exceed P - s; this
        // is 1F1B's reason to exist (and ZB-H1 keeps the same bound).
        for p in 1..6 {
            for m in 1..10 {
                for kind in [ScheduleKind::OneFOneB, ScheduleKind::ZbH1] {
                    let s = PipelineSchedule::generate(kind, p, m).unwrap();
                    s.validate().unwrap();
                }
            }
        }
    }

    #[test]
    fn kind_round_trips_through_serde() {
        for kind in [
            ScheduleKind::OneFOneB,
            ScheduleKind::GPipe,
            ScheduleKind::ZbH1,
        ] {
            let v = kind.serialize_value();
            assert_eq!(ScheduleKind::deserialize_value(&v).unwrap(), kind);
        }
        // Legacy artifacts hold the old derived enum encoding.
        for (wire, kind) in [
            ("OneFOneB", ScheduleKind::OneFOneB),
            ("GPipe", ScheduleKind::GPipe),
        ] {
            let v = serde::Value::String(wire.to_string());
            assert_eq!(ScheduleKind::deserialize_value(&v).unwrap(), kind);
            assert_eq!(kind.serialize_value(), v);
        }
        let bogus = serde::Value::String("pipedream".to_string());
        let err = ScheduleKind::deserialize_value(&bogus).unwrap_err();
        assert!(err.to_string().contains("1f1b"), "{err}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn generated_schedules_always_validate(
            p in 1u32..12,
            m in 1u32..24,
            kind in prop_oneof![
                Just(ScheduleKind::OneFOneB),
                Just(ScheduleKind::GPipe),
                Just(ScheduleKind::ZbH1),
            ],
        ) {
            let s = PipelineSchedule::generate(kind, p, m).unwrap();
            prop_assert!(s.validate().is_ok());
            // Every stage has 2*m items (3*m for split-backward kinds).
            let per_mb = if kind.split_backward() { 3 } else { 2 };
            for (_, order) in s.iter() {
                prop_assert_eq!(order.len(), per_mb * m as usize);
            }
        }

        #[test]
        fn global_dependency_feasibility(
            p in 1u32..8,
            m in 1u32..16,
            kind in prop_oneof![
                Just(ScheduleKind::OneFOneB),
                Just(ScheduleKind::ZbH1),
            ],
        ) {
            // A schedule is globally feasible if executing stages
            // concurrently never deadlocks: simulate with unit-time
            // items and cross-stage readiness.
            let s = PipelineSchedule::generate(kind, p, m).unwrap();
            let mut pos = vec![0usize; p as usize];
            // fwd_done[s][mb], bwd_done[s][mb]
            let mut fwd_done = vec![vec![false; m as usize]; p as usize];
            let mut bwd_done = vec![vec![false; m as usize]; p as usize];
            let per_mb = if kind.split_backward() { 3 } else { 2 };
            let total: usize = per_mb * (p * m) as usize;
            let mut done = 0usize;
            let mut progressed = true;
            while done < total {
                prop_assert!(progressed, "schedule deadlocked");
                progressed = false;
                for stage in 0..p as usize {
                    let order = s.stage(stage as u32).unwrap();
                    if pos[stage] >= order.len() {
                        continue;
                    }
                    let item = order[pos[stage]];
                    let ready = match item {
                        ScheduleItem::Forward { mb } => {
                            stage == 0 || fwd_done[stage - 1][mb as usize]
                        }
                        ScheduleItem::Backward { mb } => {
                            if stage + 1 == p as usize {
                                fwd_done[stage][mb as usize]
                            } else {
                                bwd_done[stage + 1][mb as usize]
                            }
                        }
                        // Weight-grad only needs this stage's own
                        // input-grad pass.
                        ScheduleItem::WeightGrad { mb } => bwd_done[stage][mb as usize],
                    };
                    if ready {
                        match item {
                            ScheduleItem::Forward { mb } => fwd_done[stage][mb as usize] = true,
                            ScheduleItem::Backward { mb } => bwd_done[stage][mb as usize] = true,
                            ScheduleItem::WeightGrad { .. } => {}
                        }
                        pos[stage] += 1;
                        done += 1;
                        progressed = true;
                    }
                }
            }
        }
    }
}
