//! Pipeline-parallel schedules.
//!
//! Generates per-stage forward/backward orderings for the 1F1B policy
//! (Narayanan et al., 2021 — the policy named in the paper's Figure 4)
//! and GPipe (all-forward-then-all-backward, for comparison studies).
//! Graph manipulation regenerates these schedules when the
//! pipeline-parallel degree changes (§3.4).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One slot in a stage's execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleItem {
    /// Forward pass of micro-batch `mb`.
    Forward {
        /// Micro-batch index (0-based).
        mb: u32,
    },
    /// Backward pass of micro-batch `mb`.
    Backward {
        /// Micro-batch index (0-based).
        mb: u32,
    },
}

impl ScheduleItem {
    /// The micro-batch this item processes.
    pub fn mb(&self) -> u32 {
        match *self {
            ScheduleItem::Forward { mb } | ScheduleItem::Backward { mb } => mb,
        }
    }

    /// Returns `true` for forward items.
    pub fn is_forward(&self) -> bool {
        matches!(self, ScheduleItem::Forward { .. })
    }
}

impl fmt::Display for ScheduleItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleItem::Forward { mb } => write!(f, "F{mb}"),
            ScheduleItem::Backward { mb } => write!(f, "B{mb}"),
        }
    }
}

/// Which scheduling policy to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// One-forward-one-backward (Megatron's default; bounded
    /// activation memory).
    OneFOneB,
    /// GPipe: all forwards, then all backwards.
    GPipe,
}

/// A complete pipeline schedule: for each stage, the order in which it
/// executes micro-batch forward and backward passes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSchedule {
    kind: ScheduleKind,
    num_stages: u32,
    num_microbatches: u32,
    stages: Vec<Vec<ScheduleItem>>,
}

impl PipelineSchedule {
    /// Generates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySchedule`] when `num_stages` or
    /// `num_microbatches` is zero.
    pub fn generate(
        kind: ScheduleKind,
        num_stages: u32,
        num_microbatches: u32,
    ) -> Result<Self, ModelError> {
        if num_stages == 0 || num_microbatches == 0 {
            return Err(ModelError::EmptySchedule);
        }
        let stages = (0..num_stages)
            .map(|s| match kind {
                ScheduleKind::OneFOneB => one_f_one_b(s, num_stages, num_microbatches),
                ScheduleKind::GPipe => gpipe(num_microbatches),
            })
            .collect();
        let schedule = PipelineSchedule {
            kind,
            num_stages,
            num_microbatches,
            stages,
        };
        schedule
            .validate()
            .expect("generated schedules are always valid");
        Ok(schedule)
    }

    /// The policy used.
    pub fn kind(&self) -> ScheduleKind {
        self.kind
    }

    /// Number of pipeline stages.
    pub fn num_stages(&self) -> u32 {
        self.num_stages
    }

    /// Number of micro-batches per iteration.
    pub fn num_microbatches(&self) -> u32 {
        self.num_microbatches
    }

    /// The execution order of a stage.
    pub fn stage(&self, stage: u32) -> Option<&[ScheduleItem]> {
        self.stages.get(stage as usize).map(Vec::as_slice)
    }

    /// Iterates over `(stage, order)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[ScheduleItem])> {
        self.stages
            .iter()
            .enumerate()
            .map(|(s, v)| (s as u32, v.as_slice()))
    }

    /// Validates schedule safety and completeness:
    ///
    /// * every stage runs every micro-batch exactly once forward and
    ///   once backward;
    /// * forwards appear in micro-batch order, as do backwards;
    /// * on every stage, `B(i)` comes after `F(i)`;
    /// * the number of in-flight micro-batches on stage `s` never
    ///   exceeds `num_stages - s` (1F1B memory bound; GPipe is exempt).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSchedule`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), ModelError> {
        let m = self.num_microbatches;
        for (s, order) in self.iter() {
            let mut next_f = 0u32;
            let mut next_b = 0u32;
            let mut in_flight = 0i64;
            let mut max_in_flight = 0i64;
            for item in order {
                match item {
                    ScheduleItem::Forward { mb } => {
                        if *mb != next_f {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: expected F{next_f}, found F{mb}"),
                            });
                        }
                        next_f += 1;
                        in_flight += 1;
                        max_in_flight = max_in_flight.max(in_flight);
                    }
                    ScheduleItem::Backward { mb } => {
                        if *mb != next_b {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: expected B{next_b}, found B{mb}"),
                            });
                        }
                        if *mb >= next_f {
                            return Err(ModelError::InvalidSchedule {
                                reason: format!("stage {s}: B{mb} precedes its forward"),
                            });
                        }
                        next_b += 1;
                        in_flight -= 1;
                    }
                }
            }
            if next_f != m || next_b != m {
                return Err(ModelError::InvalidSchedule {
                    reason: format!(
                        "stage {s}: ran {next_f} forwards / {next_b} backwards, expected {m}"
                    ),
                });
            }
            if self.kind == ScheduleKind::OneFOneB {
                let bound = (self.num_stages - s) as i64;
                if max_in_flight > bound.min(m as i64) {
                    return Err(ModelError::InvalidSchedule {
                        reason: format!(
                            "stage {s}: {max_in_flight} micro-batches in flight exceeds 1F1B bound {bound}"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// The analytic pipeline bubble fraction `(P-1)/(M+P-1)` of the
    /// 1F1B (and GPipe) schedule with equal stage times.
    pub fn bubble_fraction(&self) -> f64 {
        PipelineSchedule::analytic_bubble(self.num_stages, self.num_microbatches)
    }

    /// [`PipelineSchedule::bubble_fraction`] without generating the
    /// schedule — for planners and cost bounds that only need the
    /// number (the formula is schedule-kind independent).
    pub fn analytic_bubble(num_stages: u32, num_microbatches: u32) -> f64 {
        let p = num_stages as f64;
        let m = num_microbatches as f64;
        (p - 1.0) / (m + p - 1.0)
    }

    /// Compact rendering of one stage's order (e.g.
    /// `F0 F1 B0 F2 B1 B2`), used in diagnostics and docs.
    pub fn stage_string(&self, stage: u32) -> String {
        self.stage(stage)
            .map(|items| {
                items
                    .iter()
                    .map(ScheduleItem::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default()
    }
}

/// Megatron 1F1B order for one stage: `P - s - 1` warm-up forwards,
/// a steady phase alternating forward/backward, then cool-down
/// backwards.
fn one_f_one_b(stage: u32, num_stages: u32, m: u32) -> Vec<ScheduleItem> {
    let warmup = (num_stages - stage - 1).min(m);
    let mut order = Vec::with_capacity(2 * m as usize);
    for mb in 0..warmup {
        order.push(ScheduleItem::Forward { mb });
    }
    let steady = m - warmup;
    for i in 0..steady {
        order.push(ScheduleItem::Forward { mb: warmup + i });
        order.push(ScheduleItem::Backward { mb: i });
    }
    for mb in steady..m {
        order.push(ScheduleItem::Backward { mb });
    }
    order
}

/// GPipe order: all forwards, then all backwards.
fn gpipe(m: u32) -> Vec<ScheduleItem> {
    (0..m)
        .map(|mb| ScheduleItem::Forward { mb })
        .chain((0..m).map(|mb| ScheduleItem::Backward { mb }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure4_orders() {
        // Figure 4 (original): PP=4, M=8, stage 0 reads
        // F1 F2 F3 F4 B1 F5 B2 F6 B3 F7 B4 F8 B5 B6 B7 B8 (1-based).
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 8).unwrap();
        assert_eq!(
            s.stage_string(0),
            "F0 F1 F2 F3 B0 F4 B1 F5 B2 F6 B3 F7 B4 B5 B6 B7"
        );
        // Figure 4 (2x PP): PP=2, M=4... the paper keeps M=8 for the
        // original but scales to the TPxPP convention for the 2x row:
        // F1 F2 B1 F3 B2 F4 B3 B4 (1-based) at PP=2, M=4.
        let s2 = PipelineSchedule::generate(ScheduleKind::OneFOneB, 2, 4).unwrap();
        assert_eq!(s2.stage_string(0), "F0 F1 B0 F2 B1 F3 B2 B3");
    }

    #[test]
    fn last_stage_is_strictly_alternating() {
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 6).unwrap();
        let last = s.stage(3).unwrap();
        // Warm-up of 0: F0 B0 F1 B1 ...
        for (i, item) in last.iter().enumerate() {
            if i % 2 == 0 {
                assert!(item.is_forward());
            } else {
                assert!(!item.is_forward());
            }
            assert_eq!(item.mb(), (i / 2) as u32);
        }
    }

    #[test]
    fn fewer_microbatches_than_stages() {
        // M < P: warm-up saturates at M.
        let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 8, 2).unwrap();
        assert_eq!(s.stage_string(0), "F0 F1 B0 B1");
        s.validate().unwrap();
    }

    #[test]
    fn gpipe_all_f_then_all_b() {
        let s = PipelineSchedule::generate(ScheduleKind::GPipe, 4, 3).unwrap();
        assert_eq!(s.stage_string(2), "F0 F1 F2 B0 B1 B2");
    }

    #[test]
    fn empty_inputs_rejected() {
        assert_eq!(
            PipelineSchedule::generate(ScheduleKind::OneFOneB, 0, 4),
            Err(ModelError::EmptySchedule)
        );
        assert_eq!(
            PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 0),
            Err(ModelError::EmptySchedule)
        );
    }

    #[test]
    fn bubble_fraction_shrinks_with_microbatches() {
        let few = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 4).unwrap();
        let many = PipelineSchedule::generate(ScheduleKind::OneFOneB, 4, 64).unwrap();
        assert!(few.bubble_fraction() > many.bubble_fraction());
        let single = PipelineSchedule::generate(ScheduleKind::OneFOneB, 1, 4).unwrap();
        assert_eq!(single.bubble_fraction(), 0.0);
    }

    #[test]
    fn validator_rejects_bad_orders() {
        let mut s = PipelineSchedule::generate(ScheduleKind::OneFOneB, 2, 2).unwrap();
        // Swap first two items of stage 0 to break forward ordering.
        s.stages[0].swap(0, 1);
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn validator_rejects_backward_before_forward() {
        let s = PipelineSchedule {
            kind: ScheduleKind::OneFOneB,
            num_stages: 1,
            num_microbatches: 1,
            stages: vec![vec![
                ScheduleItem::Backward { mb: 0 },
                ScheduleItem::Forward { mb: 0 },
            ]],
        };
        assert!(matches!(
            s.validate(),
            Err(ModelError::InvalidSchedule { .. })
        ));
    }

    #[test]
    fn one_f_one_b_respects_memory_bound() {
        // In-flight micro-batches on stage s never exceed P - s; this
        // is 1F1B's reason to exist.
        for p in 1..6 {
            for m in 1..10 {
                let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, p, m).unwrap();
                s.validate().unwrap();
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn generated_schedules_always_validate(
            p in 1u32..12,
            m in 1u32..24,
            kind in prop_oneof![Just(ScheduleKind::OneFOneB), Just(ScheduleKind::GPipe)],
        ) {
            let s = PipelineSchedule::generate(kind, p, m).unwrap();
            prop_assert!(s.validate().is_ok());
            // Every stage has exactly 2*m items.
            for (_, order) in s.iter() {
                prop_assert_eq!(order.len(), 2 * m as usize);
            }
        }

        #[test]
        fn global_dependency_feasibility(p in 1u32..8, m in 1u32..16) {
            // A schedule is globally feasible if executing stages
            // concurrently never deadlocks: simulate with unit-time
            // items and cross-stage readiness.
            let s = PipelineSchedule::generate(ScheduleKind::OneFOneB, p, m).unwrap();
            let mut pos = vec![0usize; p as usize];
            // fwd_done[s][mb], bwd_done[s][mb]
            let mut fwd_done = vec![vec![false; m as usize]; p as usize];
            let mut bwd_done = vec![vec![false; m as usize]; p as usize];
            let total: usize = (p * m * 2) as usize;
            let mut done = 0usize;
            let mut progressed = true;
            while done < total {
                prop_assert!(progressed, "schedule deadlocked");
                progressed = false;
                for stage in 0..p as usize {
                    let order = s.stage(stage as u32).unwrap();
                    if pos[stage] >= order.len() {
                        continue;
                    }
                    let item = order[pos[stage]];
                    let ready = match item {
                        ScheduleItem::Forward { mb } => {
                            stage == 0 || fwd_done[stage - 1][mb as usize]
                        }
                        ScheduleItem::Backward { mb } => {
                            if stage + 1 == p as usize {
                                fwd_done[stage][mb as usize]
                            } else {
                                bwd_done[stage + 1][mb as usize]
                            }
                        }
                    };
                    if ready {
                        match item {
                            ScheduleItem::Forward { mb } => fwd_done[stage][mb as usize] = true,
                            ScheduleItem::Backward { mb } => bwd_done[stage][mb as usize] = true,
                        }
                        pos[stage] += 1;
                        done += 1;
                        progressed = true;
                    }
                }
            }
        }
    }
}
