//! Interleaved 1F1B: Megatron's virtual-pipeline schedule
//! (Narayanan et al., 2021 — the schedule the paper's Figure 4 policy
//! generalizes).
//!
//! With `v` model *chunks* per rank, the model's layers are dealt
//! round-robin across `p·v` virtual stages, shrinking the pipeline
//! bubble from `(p−1)/m` of ideal time to `(p−1)/(v·m)` at the price
//! of `v×` more pipeline communication. This module generates the
//! per-rank execution order, validates its safety (per-chunk ordering,
//! global deadlock-freedom), and exposes the bubble analytics planners
//! need to weigh interleaving against its communication overhead.
//!
//! Megatron requires the micro-batch count to divide evenly into
//! groups of `p` for interleaving; [`InterleavedSchedule::generate`]
//! enforces the same constraint.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One slot in a rank's interleaved execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InterleavedItem {
    /// Micro-batch index (0-based).
    pub mb: u32,
    /// Model-chunk index on this rank (0-based, `< v`).
    pub chunk: u32,
    /// `true` for the forward pass, `false` for backward.
    pub forward: bool,
}

impl fmt::Display for InterleavedItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.forward { 'F' } else { 'B' };
        write!(f, "{tag}{}.{}", self.mb, self.chunk)
    }
}

/// A complete interleaved-1F1B schedule: per rank, the order of
/// (micro-batch, chunk) forward/backward slots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleavedSchedule {
    num_ranks: u32,
    chunks: u32,
    num_microbatches: u32,
    ranks: Vec<Vec<InterleavedItem>>,
}

impl InterleavedSchedule {
    /// Generates the Megatron virtual-pipeline schedule for `p` ranks,
    /// `v` chunks per rank, and `m` micro-batches.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptySchedule`] for zero inputs and
    /// [`ModelError::InvalidSchedule`] when `m` is not a multiple of
    /// `p` (Megatron's interleaving constraint) or `v < 2` (use the
    /// plain 1F1B schedule instead).
    pub fn generate(p: u32, v: u32, m: u32) -> Result<Self, ModelError> {
        if p == 0 || v == 0 || m == 0 {
            return Err(ModelError::EmptySchedule);
        }
        if v < 2 {
            return Err(ModelError::InvalidSchedule {
                reason: "interleaving needs at least 2 chunks; use PipelineSchedule for v=1"
                    .to_string(),
            });
        }
        if !m.is_multiple_of(p) {
            return Err(ModelError::InvalidSchedule {
                reason: format!(
                    "interleaved 1F1B requires microbatches ({m}) divisible by pipeline ranks ({p})"
                ),
            });
        }
        let ranks = (0..p).map(|r| rank_order(r, p, v, m)).collect();
        let schedule = InterleavedSchedule {
            num_ranks: p,
            chunks: v,
            num_microbatches: m,
            ranks,
        };
        schedule
            .validate()
            .expect("generated interleaved schedules are always valid");
        Ok(schedule)
    }

    /// Number of pipeline ranks.
    pub fn num_ranks(&self) -> u32 {
        self.num_ranks
    }

    /// Model chunks per rank (`v`).
    pub fn chunks(&self) -> u32 {
        self.chunks
    }

    /// Micro-batches per iteration.
    pub fn num_microbatches(&self) -> u32 {
        self.num_microbatches
    }

    /// The execution order of one rank.
    pub fn rank(&self, rank: u32) -> Option<&[InterleavedItem]> {
        self.ranks.get(rank as usize).map(Vec::as_slice)
    }

    /// Iterates over `(rank, order)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[InterleavedItem])> {
        self.ranks
            .iter()
            .enumerate()
            .map(|(r, v)| (r as u32, v.as_slice()))
    }

    /// The virtual stage (global pipeline position) of `chunk` on
    /// `rank`: chunks are dealt round-robin, so virtual stage
    /// `= chunk·p + rank`.
    pub fn virtual_stage(&self, rank: u32, chunk: u32) -> u32 {
        chunk * self.num_ranks + rank
    }

    /// Analytic bubble fraction of total iteration time with equal
    /// per-chunk stage times: `((p−1)/v) / (m + (p−1)/v)` — the
    /// Narayanan et al. result that interleaving divides the bubble
    /// by `v`.
    pub fn bubble_fraction(&self) -> f64 {
        InterleavedSchedule::analytic_bubble(self.num_ranks, self.chunks, self.num_microbatches)
    }

    /// [`InterleavedSchedule::bubble_fraction`] without generating the
    /// schedule — for planners and cost bounds that only need the
    /// number.
    pub fn analytic_bubble(p: u32, v: u32, m: u32) -> f64 {
        let bubble = (p as f64 - 1.0) / v as f64;
        bubble / (m as f64 + bubble)
    }

    /// Extra pipeline-communication factor vs plain 1F1B: every
    /// micro-batch now crosses `p·v − 1` boundaries instead of `p − 1`.
    pub fn comm_amplification(&self) -> f64 {
        InterleavedSchedule::analytic_comm_amplification(self.num_ranks, self.chunks)
    }

    /// [`InterleavedSchedule::comm_amplification`] without generating
    /// the schedule — for adjustment hooks that only need the number.
    pub fn analytic_comm_amplification(p: u32, v: u32) -> f64 {
        let p = p as f64;
        if p <= 1.0 {
            return 1.0;
        }
        (p * v as f64 - 1.0) / (p - 1.0)
    }

    /// Compact rendering of one rank's order (e.g. `F0.0 F1.0 …`).
    pub fn rank_string(&self, rank: u32) -> String {
        self.rank(rank)
            .map(|items| {
                items
                    .iter()
                    .map(InterleavedItem::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default()
    }

    /// Validates per-rank safety and global feasibility:
    ///
    /// * every (chunk, micro-batch) runs exactly once forward and once
    ///   backward on every rank, with `B` after `F`;
    /// * forwards of each chunk appear in micro-batch order, as do
    ///   backwards;
    /// * executing all ranks concurrently under virtual-stage
    ///   dependencies (forward of virtual stage `s` needs stage `s−1`;
    ///   backward of `s` needs `s+1`) never deadlocks.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSchedule`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), ModelError> {
        let (v, m) = (self.chunks, self.num_microbatches);
        for (r, order) in self.iter() {
            if order.len() != (2 * v * m) as usize {
                return Err(ModelError::InvalidSchedule {
                    reason: format!("rank {r}: {} items, expected {}", order.len(), 2 * v * m),
                });
            }
            let mut next_f = vec![0u32; v as usize];
            let mut next_b = vec![0u32; v as usize];
            for item in order {
                if item.chunk >= v {
                    return Err(ModelError::InvalidSchedule {
                        reason: format!("rank {r}: chunk {} out of range", item.chunk),
                    });
                }
                let c = item.chunk as usize;
                if item.forward {
                    if item.mb != next_f[c] {
                        return Err(ModelError::InvalidSchedule {
                            reason: format!("rank {r}: expected F{}.{c}, found {item}", next_f[c]),
                        });
                    }
                    next_f[c] += 1;
                } else {
                    if item.mb != next_b[c] {
                        return Err(ModelError::InvalidSchedule {
                            reason: format!("rank {r}: expected B{}.{c}, found {item}", next_b[c]),
                        });
                    }
                    if item.mb >= next_f[c] {
                        return Err(ModelError::InvalidSchedule {
                            reason: format!("rank {r}: {item} precedes its forward"),
                        });
                    }
                    next_b[c] += 1;
                }
            }
            if next_f.iter().any(|&f| f != m) || next_b.iter().any(|&b| b != m) {
                return Err(ModelError::InvalidSchedule {
                    reason: format!("rank {r}: incomplete chunk coverage"),
                });
            }
        }
        self.check_feasible()
    }

    /// Concurrent-execution deadlock check under virtual-stage
    /// dependencies.
    fn check_feasible(&self) -> Result<(), ModelError> {
        let (p, v, m) = (
            self.num_ranks as usize,
            self.chunks as usize,
            self.num_microbatches as usize,
        );
        let stages = p * v;
        // done[virtual_stage][mb] for forward / backward.
        let mut fwd = vec![vec![false; m]; stages];
        let mut bwd = vec![vec![false; m]; stages];
        let mut pos = vec![0usize; p];
        let total = p * v * m * 2;
        let mut done = 0usize;
        loop {
            let mut progressed = false;
            for r in 0..p {
                let order = &self.ranks[r];
                while pos[r] < order.len() {
                    let item = order[pos[r]];
                    let s = self.virtual_stage(r as u32, item.chunk) as usize;
                    let mb = item.mb as usize;
                    let ready = if item.forward {
                        s == 0 || fwd[s - 1][mb]
                    } else if s + 1 == stages {
                        fwd[s][mb]
                    } else {
                        bwd[s + 1][mb]
                    };
                    if !ready {
                        break;
                    }
                    if item.forward {
                        fwd[s][mb] = true;
                    } else {
                        bwd[s][mb] = true;
                    }
                    pos[r] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            if done == total {
                return Ok(());
            }
            if !progressed {
                return Err(ModelError::InvalidSchedule {
                    reason: format!("deadlock after {done}/{total} items"),
                });
            }
        }
    }
}

/// Megatron's per-rank interleaved order: forwards and backwards are
/// enumerated by global step index with micro-batches processed in
/// groups of `p`, chunk advancing every `p` steps.
fn rank_order(rank: u32, p: u32, v: u32, m: u32) -> Vec<InterleavedItem> {
    let total = v * m; // forward steps (and backward steps)
    let chunk_of = |step: u32, forward: bool| -> u32 {
        let in_group = step % (p * v);
        let c = in_group / p;
        if forward {
            c
        } else {
            v - 1 - c
        }
    };
    let mb_of = |step: u32| -> u32 { (step / (p * v)) * p + step % p };
    let warmup = ((p - rank - 1) * 2 + (v - 1) * p).min(total);

    let mut order = Vec::with_capacity(2 * total as usize);
    for f in 0..warmup {
        order.push(InterleavedItem {
            mb: mb_of(f),
            chunk: chunk_of(f, true),
            forward: true,
        });
    }
    let steady = total - warmup;
    for i in 0..steady {
        order.push(InterleavedItem {
            mb: mb_of(warmup + i),
            chunk: chunk_of(warmup + i, true),
            forward: true,
        });
        order.push(InterleavedItem {
            mb: mb_of(i),
            chunk: chunk_of(i, false),
            forward: false,
        });
    }
    for b in steady..total {
        order.push(InterleavedItem {
            mb: mb_of(b),
            chunk: chunk_of(b, false),
            forward: false,
        });
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narayanan_figure_shape() {
        // p=4, v=2, m=8: rank 0 warms up with (4-0-1)*2 + 1*4 = 10
        // forwards — chunk 0 of mbs 0..3, chunk 1 of mbs 0..3, then
        // chunk 0 of mbs 4..5.
        let s = InterleavedSchedule::generate(4, 2, 8).unwrap();
        let r0 = s.rank(0).unwrap();
        let warmup: Vec<String> = r0.iter().take(10).map(|i| i.to_string()).collect();
        assert_eq!(
            warmup,
            ["F0.0", "F1.0", "F2.0", "F3.0", "F0.1", "F1.1", "F2.1", "F3.1", "F4.0", "F5.0"]
        );
        // First backward drains the deepest chunk (v-1).
        let first_b = r0.iter().find(|i| !i.forward).unwrap();
        assert_eq!((first_b.mb, first_b.chunk), (0, 1));
    }

    #[test]
    fn bubble_shrinks_with_chunks() {
        let plain = crate::schedule::PipelineSchedule::generate(
            crate::schedule::ScheduleKind::OneFOneB,
            4,
            8,
        )
        .unwrap();
        let v2 = InterleavedSchedule::generate(4, 2, 8).unwrap();
        let v4 = InterleavedSchedule::generate(4, 4, 8).unwrap();
        assert!(v2.bubble_fraction() < plain.bubble_fraction());
        assert!(v4.bubble_fraction() < v2.bubble_fraction());
    }

    #[test]
    fn comm_amplification_matches_chunks() {
        let s = InterleavedSchedule::generate(4, 2, 8).unwrap();
        // (4*2 - 1)/(4 - 1) = 7/3.
        assert!((s.comm_amplification() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constraints_enforced() {
        assert!(matches!(
            InterleavedSchedule::generate(4, 2, 6), // 6 % 4 != 0
            Err(ModelError::InvalidSchedule { .. })
        ));
        assert!(matches!(
            InterleavedSchedule::generate(4, 1, 8), // v=1: use plain
            Err(ModelError::InvalidSchedule { .. })
        ));
        assert!(matches!(
            InterleavedSchedule::generate(0, 2, 8),
            Err(ModelError::EmptySchedule)
        ));
    }

    #[test]
    fn virtual_stage_layout_is_round_robin() {
        let s = InterleavedSchedule::generate(4, 2, 4).unwrap();
        assert_eq!(s.virtual_stage(0, 0), 0);
        assert_eq!(s.virtual_stage(3, 0), 3);
        assert_eq!(s.virtual_stage(0, 1), 4);
        assert_eq!(s.virtual_stage(3, 1), 7);
    }

    #[test]
    fn display_format() {
        let item = InterleavedItem {
            mb: 3,
            chunk: 1,
            forward: false,
        };
        assert_eq!(item.to_string(), "B3.1");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Every generated interleaved schedule validates (ordering,
        /// completeness, and global deadlock-freedom).
        #[test]
        fn generated_schedules_always_validate(
            p in 1u32..7,
            v in 2u32..5,
            groups in 1u32..4,
        ) {
            let m = p * groups;
            let s = InterleavedSchedule::generate(p, v, m).unwrap();
            prop_assert!(s.validate().is_ok());
            for (_, order) in s.iter() {
                prop_assert_eq!(order.len(), (2 * v * m) as usize);
            }
        }

        /// The bubble fraction is monotonically decreasing in v and m.
        #[test]
        fn bubble_monotone(p in 2u32..6, v in 2u32..5, groups in 1u32..4) {
            let m = p * groups;
            let base = InterleavedSchedule::generate(p, v, m).unwrap();
            let more_chunks = InterleavedSchedule::generate(p, v + 1, m).unwrap();
            let more_mbs = InterleavedSchedule::generate(p, v, m + p).unwrap();
            prop_assert!(more_chunks.bubble_fraction() < base.bubble_fraction());
            prop_assert!(more_mbs.bubble_fraction() < base.bubble_fraction());
        }
    }
}
