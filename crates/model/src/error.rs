//! Error types for model and deployment configuration.

use std::error::Error;
use std::fmt;

/// Errors arising from invalid model or deployment configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A parallelism degree was zero.
    ZeroParallelism {
        /// Which axis ("tp", "pp", or "dp").
        axis: &'static str,
    },
    /// The number of layers is not divisible by the pipeline depth.
    LayersNotDivisible {
        /// Total transformer layers.
        layers: u32,
        /// Pipeline-parallel degree.
        pp: u32,
    },
    /// The attention heads are not divisible by the tensor-parallel
    /// degree.
    HeadsNotDivisible {
        /// Attention heads.
        heads: u32,
        /// Tensor-parallel degree.
        tp: u32,
    },
    /// A schedule was requested with zero micro-batches or stages.
    EmptySchedule,
    /// A schedule failed validation.
    InvalidSchedule {
        /// Human-readable reason.
        reason: String,
    },
    /// A preset name did not resolve to any built-in model (see
    /// [`crate::ModelConfig::from_preset`]).
    UnknownPreset {
        /// The unrecognized name.
        name: String,
    },
    /// A model dimension was zero.
    ZeroDimension {
        /// Which dimension.
        dim: &'static str,
    },
    /// A schedule name did not resolve against the registry (see
    /// [`crate::registry::resolve`]).
    UnknownSchedule {
        /// The unrecognized name.
        name: String,
        /// Comma-separated names the registry does know.
        known: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ZeroParallelism { axis } => {
                write!(f, "parallelism degree `{axis}` must be at least 1")
            }
            ModelError::LayersNotDivisible { layers, pp } => {
                write!(
                    f,
                    "{layers} layers cannot be split evenly into {pp} pipeline stages"
                )
            }
            ModelError::HeadsNotDivisible { heads, tp } => {
                write!(f, "{heads} attention heads cannot be split across tp={tp}")
            }
            ModelError::EmptySchedule => {
                write!(f, "schedule needs at least 1 stage and 1 micro-batch")
            }
            ModelError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            ModelError::UnknownPreset { name } => {
                write!(
                    f,
                    "unknown model `{name}` (expected tiny, 15b, 44b, 117b, 175b, or v1–v4)"
                )
            }
            ModelError::ZeroDimension { dim } => {
                write!(f, "model dimension `{dim}` must be at least 1")
            }
            ModelError::UnknownSchedule { name, known } => {
                write!(f, "unknown schedule `{name}` (known: {known})")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::ZeroParallelism { axis: "tp" }
            .to_string()
            .contains("tp"));
        assert!(ModelError::LayersNotDivisible { layers: 10, pp: 3 }
            .to_string()
            .contains("10"));
    }
}
