//! 3D parallelism: tensor × pipeline × data.
//!
//! Rank layout follows Megatron-LM's `initialize_model_parallel`:
//! tensor-parallel ranks are contiguous (innermost), then data
//! parallel, then pipeline parallel (outermost):
//!
//! ```text
//! global_rank = pp_stage * (dp * tp) + dp_rank * tp + tp_rank
//! ```
//!
//! Communicators are identified by stable [`CommGroupId`]s so that
//! the same logical group gets the same id on every rank and in every
//! crate (trace generation, graph construction, cost models).

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable communicator identifier (matches
/// `lumos_trace::event::CommGroupId`).
pub type CommGroupId = u64;

/// The three parallelism degrees. The paper writes configurations as
/// `TPxPPxDP` (e.g. `2x2x4` = tp 2, pp 2, dp 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Tensor-parallel degree.
    pub tp: u32,
    /// Pipeline-parallel degree.
    pub pp: u32,
    /// Data-parallel degree.
    pub dp: u32,
}

/// A rank's position in the 3D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankCoords {
    /// Tensor-parallel rank within the TP group.
    pub tp: u32,
    /// Pipeline stage index (0 = first stage).
    pub pp: u32,
    /// Data-parallel rank within the DP group.
    pub dp: u32,
}

/// Which axis a communicator spans — used to derive group ids and to
/// pick cost-model topology (TP groups are intra-node, DP/PP usually
/// cross nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommScope {
    /// Tensor-parallel group: ranks sharing (pp, dp).
    Tp,
    /// Data-parallel group: ranks sharing (tp, pp).
    Dp,
    /// Pipeline point-to-point pair: a stage boundary between
    /// consecutive stages for fixed (tp, dp).
    PpPair {
        /// The earlier stage of the pair.
        upstream_stage: u32,
    },
    /// The embedding-gradient group tying first and last stage
    /// (present when pp > 1 and embeddings are shared).
    Embedding,
}

impl Parallelism {
    /// Creates a parallelism configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroParallelism`] if any degree is zero.
    pub fn new(tp: u32, pp: u32, dp: u32) -> Result<Self, ModelError> {
        for (axis, v) in [("tp", tp), ("pp", pp), ("dp", dp)] {
            if v == 0 {
                return Err(ModelError::ZeroParallelism { axis });
            }
        }
        Ok(Parallelism { tp, pp, dp })
    }

    /// Total number of ranks (GPUs).
    pub fn world_size(&self) -> u32 {
        self.tp * self.pp * self.dp
    }

    /// Checks this deployment against a model: layers must divide
    /// evenly into stages and heads across TP ranks.
    ///
    /// # Errors
    ///
    /// Returns the first violated divisibility requirement.
    pub fn validate_for(&self, num_layers: u32, num_heads: u32) -> Result<(), ModelError> {
        if !num_layers.is_multiple_of(self.pp) {
            return Err(ModelError::LayersNotDivisible {
                layers: num_layers,
                pp: self.pp,
            });
        }
        if !num_heads.is_multiple_of(self.tp) {
            return Err(ModelError::HeadsNotDivisible {
                heads: num_heads,
                tp: self.tp,
            });
        }
        Ok(())
    }

    /// Coordinates of a global rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world_size()`.
    pub fn coords(&self, rank: u32) -> RankCoords {
        assert!(
            rank < self.world_size(),
            "rank {rank} out of range for world size {}",
            self.world_size()
        );
        let per_stage = self.dp * self.tp;
        RankCoords {
            pp: rank / per_stage,
            dp: (rank % per_stage) / self.tp,
            tp: rank % self.tp,
        }
    }

    /// Global rank of coordinates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds its degree.
    pub fn rank_of(&self, coords: RankCoords) -> u32 {
        assert!(
            coords.tp < self.tp && coords.pp < self.pp && coords.dp < self.dp,
            "coords {coords:?} out of range for {self}"
        );
        coords.pp * (self.dp * self.tp) + coords.dp * self.tp + coords.tp
    }

    /// Iterates over all global ranks.
    pub fn all_ranks(&self) -> impl Iterator<Item = u32> {
        0..self.world_size()
    }

    /// The members of the tensor-parallel group containing `coords`.
    pub fn tp_group_members(&self, coords: RankCoords) -> Vec<u32> {
        (0..self.tp)
            .map(|tp| self.rank_of(RankCoords { tp, ..coords }))
            .collect()
    }

    /// The members of the data-parallel group containing `coords`.
    pub fn dp_group_members(&self, coords: RankCoords) -> Vec<u32> {
        (0..self.dp)
            .map(|dp| self.rank_of(RankCoords { dp, ..coords }))
            .collect()
    }

    /// The next pipeline stage's rank with the same (tp, dp), if any.
    pub fn pp_next(&self, coords: RankCoords) -> Option<u32> {
        (coords.pp + 1 < self.pp).then(|| {
            self.rank_of(RankCoords {
                pp: coords.pp + 1,
                ..coords
            })
        })
    }

    /// The previous pipeline stage's rank with the same (tp, dp), if
    /// any.
    pub fn pp_prev(&self, coords: RankCoords) -> Option<u32> {
        (coords.pp > 0).then(|| {
            self.rank_of(RankCoords {
                pp: coords.pp - 1,
                ..coords
            })
        })
    }

    /// Layers per pipeline stage (assuming even distribution).
    pub fn layers_per_stage(&self, num_layers: u32) -> u32 {
        num_layers / self.pp
    }

    /// The contiguous range of layer indices owned by `stage`.
    pub fn stage_layers(&self, num_layers: u32, stage: u32) -> std::ops::Range<u32> {
        let per = self.layers_per_stage(num_layers);
        (stage * per)..((stage + 1) * per)
    }

    /// Paper-style label, e.g. `2x2x4` for TP2/PP2/DP4.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.tp, self.pp, self.dp)
    }

    /// Parses a `TPxPPxDP` label.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroParallelism`] for malformed or zero
    /// components.
    pub fn parse_label(label: &str) -> Result<Self, ModelError> {
        let mut parts = label.split('x');
        let mut next = |axis| {
            parts
                .next()
                .and_then(|p| p.trim().parse::<u32>().ok())
                .filter(|&v| v > 0)
                .ok_or(ModelError::ZeroParallelism { axis })
        };
        let tp = next("tp")?;
        let pp = next("pp")?;
        let dp = next("dp")?;
        Parallelism::new(tp, pp, dp)
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TP{}xPP{}xDP{}", self.tp, self.pp, self.dp)
    }
}

/// Derives stable communicator ids for every process group of a
/// deployment.
///
/// Ids are unique across scopes and deterministic: the same logical
/// group always maps to the same id regardless of which rank asks.
#[derive(Debug, Clone, Copy)]
pub struct GroupRegistry {
    par: Parallelism,
}

const SCOPE_TP: u64 = 1 << 40;
const SCOPE_DP: u64 = 2 << 40;
const SCOPE_PP: u64 = 3 << 40;
const SCOPE_EMB: u64 = 4 << 40;

/// The axis class a [`CommGroupId`] belongs to, recoverable from the
/// id alone (the scope tag lives in the bits above the 40-bit
/// payload). Unlike [`CommScope`] it carries no coordinates, so
/// consumers that only need "is this a DP group?" — e.g. targeted
/// network-degradation injection — can classify without knowing the
/// deployment shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScopeClass {
    /// Tensor-parallel group.
    Tp,
    /// Data-parallel group.
    Dp,
    /// Pipeline point-to-point pair.
    Pp,
    /// Embedding-tying pair (first/last stage).
    Embedding,
}

impl ScopeClass {
    /// Classifies a communicator id minted by [`GroupRegistry`];
    /// `None` for ids outside the registry's encoding (e.g. raw ids in
    /// hand-built jobs).
    pub fn of_group(group: CommGroupId) -> Option<Self> {
        match group & !((1u64 << 40) - 1) {
            SCOPE_TP => Some(ScopeClass::Tp),
            SCOPE_DP => Some(ScopeClass::Dp),
            SCOPE_PP => Some(ScopeClass::Pp),
            SCOPE_EMB => Some(ScopeClass::Embedding),
            _ => None,
        }
    }

    /// Stable lowercase name (the `FaultSpec` TOML vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            ScopeClass::Tp => "tp",
            ScopeClass::Dp => "dp",
            ScopeClass::Pp => "pp",
            ScopeClass::Embedding => "embedding",
        }
    }
}

impl fmt::Display for ScopeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ScopeClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "tp" => Ok(ScopeClass::Tp),
            "dp" => Ok(ScopeClass::Dp),
            "pp" => Ok(ScopeClass::Pp),
            "embedding" | "emb" => Ok(ScopeClass::Embedding),
            other => Err(format!(
                "unknown scope `{other}` (expected tp, dp, pp, embedding, or all)"
            )),
        }
    }
}

impl GroupRegistry {
    /// Creates a registry for a deployment.
    pub fn new(par: Parallelism) -> Self {
        GroupRegistry { par }
    }

    /// Communicator id for the group of `scope` containing `coords`.
    pub fn group_id(&self, scope: CommScope, coords: RankCoords) -> CommGroupId {
        let p = &self.par;
        match scope {
            // One TP group per (pp, dp).
            CommScope::Tp => SCOPE_TP | (coords.pp as u64 * p.dp as u64 + coords.dp as u64),
            // One DP group per (pp, tp).
            CommScope::Dp => SCOPE_DP | (coords.pp as u64 * p.tp as u64 + coords.tp as u64),
            // One pair group per (upstream stage, tp, dp).
            CommScope::PpPair { upstream_stage } => {
                SCOPE_PP
                    | (((upstream_stage as u64 * p.dp as u64 + coords.dp as u64) * p.tp as u64)
                        + coords.tp as u64)
            }
            // One embedding group per (tp, dp).
            CommScope::Embedding => SCOPE_EMB | (coords.dp as u64 * p.tp as u64 + coords.tp as u64),
        }
    }

    /// Global ranks belonging to the group of `scope` containing
    /// `coords`.
    pub fn members(&self, scope: CommScope, coords: RankCoords) -> Vec<u32> {
        let p = &self.par;
        match scope {
            CommScope::Tp => p.tp_group_members(coords),
            CommScope::Dp => p.dp_group_members(coords),
            CommScope::PpPair { upstream_stage } => {
                let up = p.rank_of(RankCoords {
                    pp: upstream_stage,
                    ..coords
                });
                let down = p.rank_of(RankCoords {
                    pp: upstream_stage + 1,
                    ..coords
                });
                vec![up, down]
            }
            CommScope::Embedding => {
                let first = p.rank_of(RankCoords { pp: 0, ..coords });
                let last = p.rank_of(RankCoords {
                    pp: p.pp - 1,
                    ..coords
                });
                vec![first, last]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_coords_round_trip() {
        let p = Parallelism::new(2, 4, 3).unwrap();
        assert_eq!(p.world_size(), 24);
        for rank in p.all_ranks() {
            assert_eq!(p.rank_of(p.coords(rank)), rank);
        }
    }

    #[test]
    fn megatron_layout_tp_contiguous() {
        let p = Parallelism::new(4, 2, 2).unwrap();
        // Ranks 0..4 are one TP group at pp=0, dp=0.
        let coords0 = p.coords(0);
        assert_eq!(p.tp_group_members(coords0), vec![0, 1, 2, 3]);
        // DP group of rank 0: same tp=0, pp=0, dp varies -> stride tp.
        assert_eq!(p.dp_group_members(coords0), vec![0, 4]);
        // Next pipeline stage of rank 0 is offset by dp*tp.
        assert_eq!(p.pp_next(coords0), Some(8));
        assert_eq!(p.pp_prev(coords0), None);
        let last = p.coords(p.world_size() - 1);
        assert_eq!(p.pp_next(last), None);
    }

    #[test]
    fn validate_divisibility() {
        let p = Parallelism::new(2, 4, 1).unwrap();
        assert!(p.validate_for(48, 48).is_ok());
        assert_eq!(
            p.validate_for(10, 48),
            Err(ModelError::LayersNotDivisible { layers: 10, pp: 4 })
        );
        assert_eq!(
            p.validate_for(48, 3),
            Err(ModelError::HeadsNotDivisible { heads: 3, tp: 2 })
        );
    }

    #[test]
    fn zero_degree_rejected() {
        assert_eq!(
            Parallelism::new(0, 1, 1),
            Err(ModelError::ZeroParallelism { axis: "tp" })
        );
        assert_eq!(
            Parallelism::new(1, 0, 1),
            Err(ModelError::ZeroParallelism { axis: "pp" })
        );
    }

    #[test]
    fn label_round_trip() {
        let p = Parallelism::new(8, 4, 16).unwrap();
        assert_eq!(p.label(), "8x4x16");
        assert_eq!(Parallelism::parse_label("8x4x16"), Ok(p));
        assert!(Parallelism::parse_label("8x4").is_err());
        assert!(Parallelism::parse_label("0x4x2").is_err());
        assert!(Parallelism::parse_label("axbxc").is_err());
    }

    #[test]
    fn stage_layers_partition() {
        let p = Parallelism::new(1, 4, 1).unwrap();
        assert_eq!(p.stage_layers(48, 0), 0..12);
        assert_eq!(p.stage_layers(48, 3), 36..48);
        // Union of all stages covers all layers exactly once.
        let mut covered = [false; 48];
        for s in 0..4 {
            for l in p.stage_layers(48, s) {
                assert!(!covered[l as usize]);
                covered[l as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn group_ids_unique_and_consistent() {
        let p = Parallelism::new(2, 2, 2).unwrap();
        let reg = GroupRegistry::new(p);
        let mut seen = std::collections::HashMap::new();
        for rank in p.all_ranks() {
            let c = p.coords(rank);
            for scope in [CommScope::Tp, CommScope::Dp] {
                let id = reg.group_id(scope, c);
                let members = reg.members(scope, c);
                // Every member derives the same id for this group.
                for &m in &members {
                    assert_eq!(reg.group_id(scope, p.coords(m)), id);
                }
                // Same id always maps to the same member set.
                if let Some(prev) = seen.insert(id, members.clone()) {
                    assert_eq!(prev, members);
                }
            }
        }
        // TP and DP ids never collide.
        let c0 = p.coords(0);
        assert_ne!(
            reg.group_id(CommScope::Tp, c0),
            reg.group_id(CommScope::Dp, c0)
        );
    }

    #[test]
    fn pp_pair_members() {
        let p = Parallelism::new(2, 3, 2).unwrap();
        let reg = GroupRegistry::new(p);
        let c = p.coords(1); // tp=1, pp=0, dp=0
        let pair = reg.members(CommScope::PpPair { upstream_stage: 0 }, c);
        assert_eq!(pair.len(), 2);
        assert_eq!(p.coords(pair[0]).pp, 0);
        assert_eq!(p.coords(pair[1]).pp, 1);
        assert_eq!(p.coords(pair[0]).tp, p.coords(pair[1]).tp);
        assert_eq!(p.coords(pair[0]).dp, p.coords(pair[1]).dp);
    }

    #[test]
    fn embedding_group_ties_ends() {
        let p = Parallelism::new(1, 4, 1).unwrap();
        let reg = GroupRegistry::new(p);
        let members = reg.members(CommScope::Embedding, p.coords(0));
        assert_eq!(members, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_out_of_range_panics() {
        let p = Parallelism::new(1, 1, 1).unwrap();
        let _ = p.coords(1);
    }

    #[test]
    fn scope_class_recovers_from_group_ids() {
        let p = Parallelism::new(2, 2, 2).unwrap();
        let reg = GroupRegistry::new(p);
        let c = p.coords(0);
        assert_eq!(
            ScopeClass::of_group(reg.group_id(CommScope::Tp, c)),
            Some(ScopeClass::Tp)
        );
        assert_eq!(
            ScopeClass::of_group(reg.group_id(CommScope::Dp, c)),
            Some(ScopeClass::Dp)
        );
        assert_eq!(
            ScopeClass::of_group(reg.group_id(CommScope::PpPair { upstream_stage: 0 }, c)),
            Some(ScopeClass::Pp)
        );
        assert_eq!(
            ScopeClass::of_group(reg.group_id(CommScope::Embedding, c)),
            Some(ScopeClass::Embedding)
        );
        // Raw ids from hand-built jobs are outside the encoding.
        assert_eq!(ScopeClass::of_group(99), None);
        assert_eq!("dp".parse::<ScopeClass>().unwrap(), ScopeClass::Dp);
        assert_eq!("EMB".parse::<ScopeClass>().unwrap(), ScopeClass::Embedding);
        assert!("node".parse::<ScopeClass>().is_err());
        assert_eq!(ScopeClass::Pp.to_string(), "pp");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip_any_grid(tp in 1u32..5, pp in 1u32..5, dp in 1u32..5) {
            let p = Parallelism::new(tp, pp, dp).unwrap();
            for rank in p.all_ranks() {
                prop_assert_eq!(p.rank_of(p.coords(rank)), rank);
            }
        }

        #[test]
        fn groups_partition_world(tp in 1u32..4, pp in 1u32..4, dp in 1u32..4) {
            let p = Parallelism::new(tp, pp, dp).unwrap();
            // TP groups partition the world.
            let mut seen = vec![0u32; p.world_size() as usize];
            let mut group_count = std::collections::HashSet::new();
            for rank in p.all_ranks() {
                let c = p.coords(rank);
                let members = p.tp_group_members(c);
                prop_assert!(members.contains(&rank));
                group_count.insert(members.clone());
                for m in members {
                    seen[m as usize] += 1;
                }
            }
            // Each rank appears in exactly tp member lists (once per
            // member's query).
            prop_assert!(seen.iter().all(|&c| c == tp));
            prop_assert_eq!(group_count.len() as u32, pp * dp);
        }
    }
}
