//! Checkpoint-restart and elastic re-sharding cost parameters.
//!
//! At the scale the north-star targets, rank failures are routine:
//! training amortizes them with periodic checkpoints (losing at most
//! one interval of work) and, in elastic deployments, by re-sharding
//! onto the survivors instead of waiting for a replacement node. The
//! fault-aware scenario engine (`lumos_cluster::scenario`) prices
//! both recovery paths with the parameters here; they live in this
//! crate because they describe the *training setup* (how often it
//! checkpoints, what a restart costs), not any particular fault.
//!
//! All costs are plain seconds so the amortized per-iteration penalty
//! composes directly with simulated makespans:
//!
//! * checkpoint-restart: an interval of `I` iterations loses on
//!   average `f·I` iterations of work (`f` ∈ [0, 1) the failure point
//!   within the interval) plus one restart, amortized as
//!   `restart_latency_s / I` per iteration;
//! * elastic re-sharding: the surviving world re-lowers to the
//!   degraded configuration and additionally pays `reshard_cost_s`
//!   once (redistribute optimizer state + rebuild communicators).

use serde::{Deserialize, Serialize};

/// Cost parameters of the checkpoint-restart / elastic-resharding
/// recovery model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryCosts {
    /// Iterations between checkpoints; a failure loses at most this
    /// much work. Must be ≥ 1.
    pub checkpoint_interval_iters: u32,
    /// Wall-clock seconds to detect the failure, reschedule, reload
    /// the last checkpoint, and rewarm (paid once per failure).
    pub restart_latency_s: f64,
    /// Additional seconds to re-shard onto a survivor configuration
    /// (elastic recovery only): optimizer-state redistribution plus
    /// communicator rebuild.
    pub reshard_cost_s: f64,
}

impl RecoveryCosts {
    /// Production-flavored defaults: checkpoint every 100 iterations,
    /// 120 s restart, 45 s re-shard.
    pub fn defaults() -> Self {
        RecoveryCosts {
            checkpoint_interval_iters: 100,
            restart_latency_s: 120.0,
            reshard_cost_s: 45.0,
        }
    }

    /// Amortized per-iteration extra seconds of a **non-elastic**
    /// failure at fraction `f` ∈ [0, 1) of a checkpoint interval, on
    /// top of a clean iteration of `iter_s` seconds: the lost work is
    /// re-run on the restored world, and the restart latency is
    /// spread over the interval.
    pub fn checkpoint_restart_penalty_s(&self, iter_s: f64, failure_frac: f64) -> f64 {
        let interval = self.checkpoint_interval_iters.max(1) as f64;
        iter_s * failure_frac + self.restart_latency_s / interval
    }

    /// Amortized per-iteration seconds of an **elastic** failure: the
    /// pre-failure fraction runs at the original speed, the rest of
    /// the interval at the survivor speed `survivor_iter_s`, and both
    /// one restart and one re-shard are spread over the interval.
    pub fn elastic_iteration_s(&self, iter_s: f64, survivor_iter_s: f64, failure_frac: f64) -> f64 {
        let interval = self.checkpoint_interval_iters.max(1) as f64;
        iter_s * failure_frac
            + survivor_iter_s * (1.0 - failure_frac)
            + (self.restart_latency_s + self.reshard_cost_s) / interval
    }
}

impl Default for RecoveryCosts {
    fn default() -> Self {
        RecoveryCosts::defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_restart_penalty_amortizes_restart() {
        let rc = RecoveryCosts {
            checkpoint_interval_iters: 10,
            restart_latency_s: 50.0,
            reshard_cost_s: 0.0,
        };
        // Fail at mid-interval: half an iteration of lost work + 5 s
        // of amortized restart.
        let p = rc.checkpoint_restart_penalty_s(2.0, 0.5);
        assert!((p - (1.0 + 5.0)).abs() < 1e-12);
        // Failing at the checkpoint itself loses no work.
        let p0 = rc.checkpoint_restart_penalty_s(2.0, 0.0);
        assert!((p0 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_blends_original_and_survivor_speed() {
        let rc = RecoveryCosts {
            checkpoint_interval_iters: 20,
            restart_latency_s: 40.0,
            reshard_cost_s: 20.0,
        };
        let s = rc.elastic_iteration_s(2.0, 3.0, 0.25);
        // 0.25·2 + 0.75·3 + 60/20 = 0.5 + 2.25 + 3.0
        assert!((s - 5.75).abs() < 1e-12);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let rc = RecoveryCosts {
            checkpoint_interval_iters: 0,
            restart_latency_s: 10.0,
            reshard_cost_s: 0.0,
        };
        assert!(rc.checkpoint_restart_penalty_s(1.0, 0.0).is_finite());
    }
}
