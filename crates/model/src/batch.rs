//! Batch configuration: sequence length, micro-batch size and count.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-iteration batching parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Sequence length per sample.
    pub seq_len: u64,
    /// Samples per micro-batch per model replica.
    pub microbatch_size: u64,
    /// Micro-batches per pipeline per iteration.
    pub num_microbatches: u32,
}

impl BatchConfig {
    /// GPT-3/MLPerf default: 2 048-token sequences, micro-batch 1.
    pub fn gpt3_default(num_microbatches: u32) -> Self {
        BatchConfig {
            seq_len: 2_048,
            microbatch_size: 1,
            num_microbatches,
        }
    }

    /// The paper's Figure 4 convention: number of micro-batches equal
    /// to `TP × PP`.
    pub fn paper_fig4(tp: u32, pp: u32) -> Self {
        BatchConfig::gpt3_default(tp * pp)
    }

    /// Tokens processed per micro-batch per replica.
    pub fn tokens_per_microbatch(&self) -> u64 {
        self.seq_len * self.microbatch_size
    }

    /// Global batch size in samples across `dp` replicas.
    pub fn global_batch(&self, dp: u32) -> u64 {
        self.microbatch_size * self.num_microbatches as u64 * dp as u64
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::gpt3_default(8)
    }
}

impl fmt::Display for BatchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seq={} mbs={} num_mb={}",
            self.seq_len, self.microbatch_size, self.num_microbatches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let b = BatchConfig {
            seq_len: 2048,
            microbatch_size: 2,
            num_microbatches: 8,
        };
        assert_eq!(b.tokens_per_microbatch(), 4096);
        assert_eq!(b.global_batch(4), 64);
    }

    #[test]
    fn fig4_convention() {
        let b = BatchConfig::paper_fig4(2, 4);
        assert_eq!(b.num_microbatches, 8);
        assert_eq!(b.seq_len, 2048);
    }
}
