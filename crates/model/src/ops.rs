//! Logical operator IR: the per-layer forward/backward operator
//! sequences of a Megatron-style tensor-parallel transformer.
//!
//! These sequences are what the ground-truth cluster engine lowers
//! into kernel launches, and what graph manipulation reasons about
//! when layers are added or resized. Shapes are *per-rank* (already
//! divided by the tensor-parallel degree where applicable).
//!
//! Conventions:
//! * activations and gradients are 2-byte (bf16) elements;
//! * data-parallel gradient buckets are 4-byte (fp32 main grads);
//! * each forward GEMM produces two backward GEMMs (dgrad + wgrad);
//! * tensor parallelism inserts two all-reduces in the forward pass
//!   (after the attention output projection and after the MLP second
//!   matmul — Megatron's `g` operators) and two in the backward pass
//!   (the conjugate `f` operators).

use crate::batch::BatchConfig;
use crate::gpt3::ModelConfig;
use crate::parallel::CommScope;
use serde::{Deserialize, Serialize};

/// Bytes per activation / activation-gradient element (bf16).
pub const ACT_BYTES: u64 = 2;
/// Bytes per element of data-parallel gradient buckets (fp32 main
/// grads, Megatron DDP default).
pub const GRAD_BYTES: u64 = 4;

/// Collective algorithms at the IR level (converted to
/// `lumos_trace::CollectiveKind` during lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollOp {
    /// Sum all-reduce.
    AllReduce,
    /// All-gather.
    AllGather,
    /// Reduce-scatter.
    ReduceScatter,
    /// Broadcast.
    Broadcast,
    /// Paired send/recv across a pipeline boundary.
    SendRecv,
}

/// The computational body of a logical operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpBody {
    /// Dense matmul `C[m,n] += A[m,k] B[k,n]`.
    Gemm {
        /// Output rows.
        m: u64,
        /// Output columns.
        n: u64,
        /// Contraction dimension.
        k: u64,
    },
    /// Fused attention forward.
    AttentionFwd {
        /// Batch × local heads.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Head dimension.
        head_dim: u64,
    },
    /// Fused attention backward.
    AttentionBwd {
        /// Batch × local heads.
        batch_heads: u64,
        /// Sequence length.
        seq: u64,
        /// Head dimension.
        head_dim: u64,
    },
    /// Single-query attention against a KV cache (inference decode).
    AttentionDecode {
        /// Batch × local heads.
        batch_heads: u64,
        /// KV-cache length attended over.
        kv_len: u64,
        /// Head dimension.
        head_dim: u64,
    },
    /// Pointwise op over `elems` elements.
    Elementwise {
        /// Element count.
        elems: u64,
    },
    /// LayerNorm over `elems` elements.
    Norm {
        /// Element count.
        elems: u64,
    },
    /// Softmax / cross-entropy over `elems` elements.
    Softmax {
        /// Element count.
        elems: u64,
    },
    /// Embedding gather/scatter over `elems` elements.
    Embedding {
        /// Element count.
        elems: u64,
    },
    /// Fused optimizer update over `params` parameters.
    Optimizer {
        /// Parameter count.
        params: u64,
    },
    /// Collective communication.
    Collective {
        /// Algorithm.
        op: CollOp,
        /// Communicator axis.
        scope: CommScope,
        /// Payload bytes contributed by this rank.
        bytes: u64,
    },
}

impl OpBody {
    /// Returns `true` for communication bodies.
    pub fn is_comm(&self) -> bool {
        matches!(self, OpBody::Collective { .. })
    }

    /// Forward FLOPs of the body (0 for comms and data movement).
    pub fn flops(&self) -> u64 {
        match *self {
            OpBody::Gemm { m, n, k } => 2 * m * n * k,
            OpBody::AttentionFwd {
                batch_heads,
                seq,
                head_dim,
            } => 4 * batch_heads * seq * seq * head_dim,
            OpBody::AttentionBwd {
                batch_heads,
                seq,
                head_dim,
            } => 10 * batch_heads * seq * seq * head_dim,
            OpBody::AttentionDecode {
                batch_heads,
                kv_len,
                head_dim,
            } => 4 * batch_heads * kv_len * head_dim,
            OpBody::Elementwise { elems } | OpBody::Norm { elems } | OpBody::Softmax { elems } => {
                elems
            }
            OpBody::Embedding { .. } | OpBody::Collective { .. } => 0,
            OpBody::Optimizer { params } => 12 * params, // Adam: ~12 flops/param
        }
    }
}

/// A named logical operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpDesc {
    /// PyTorch-style operator name (what the profiler would show).
    pub name: &'static str,
    /// Computational body with shapes.
    pub body: OpBody,
}

impl OpDesc {
    fn new(name: &'static str, body: OpBody) -> Self {
        OpDesc { name, body }
    }
}

/// Per-rank activation payload crossing a pipeline boundary for one
/// micro-batch: `seq × microbatch × hidden × 2 bytes`.
pub fn pp_activation_bytes(model: &ModelConfig, batch: &BatchConfig) -> u64 {
    batch.tokens_per_microbatch() * model.hidden_size * ACT_BYTES
}

/// Bytes all-reduced by one tensor-parallel `g`/`f` operator:
/// the full activation tensor.
pub fn tp_allreduce_bytes(model: &ModelConfig, batch: &BatchConfig) -> u64 {
    batch.tokens_per_microbatch() * model.hidden_size * ACT_BYTES
}

/// The forward operator sequence for one transformer layer on one
/// rank, under tensor parallelism `tp`.
///
/// TP all-reduces are included only when `tp > 1` (NCCL elides
/// single-member collectives).
pub fn layer_forward_ops(model: &ModelConfig, tp: u32, batch: &BatchConfig) -> Vec<OpDesc> {
    let t = tp as u64;
    let s = batch.seq_len;
    let b = batch.microbatch_size;
    let tokens = s * b;
    let d = model.hidden_size;
    let a = model.attn_size();
    let f = model.ffn_size;
    let heads_local = model.num_heads as u64 / t;
    let ar_bytes = tp_allreduce_bytes(model, batch);

    let mut ops = vec![
        OpDesc::new("aten::layer_norm", OpBody::Norm { elems: tokens * d }),
        OpDesc::new(
            "aten::mm_qkv",
            OpBody::Gemm {
                m: tokens,
                n: 3 * a / t,
                k: d,
            },
        ),
        OpDesc::new(
            "flash_attn_fwd",
            OpBody::AttentionFwd {
                batch_heads: b * heads_local,
                seq: s,
                head_dim: model.head_dim,
            },
        ),
        OpDesc::new(
            "aten::mm_attn_out",
            OpBody::Gemm {
                m: tokens,
                n: d,
                k: a / t,
            },
        ),
    ];
    if tp > 1 {
        ops.push(OpDesc::new(
            "nccl:all_reduce_tp_attn_fwd",
            OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        ));
    }
    ops.extend([
        OpDesc::new(
            "aten::dropout_add",
            OpBody::Elementwise { elems: tokens * d },
        ),
        OpDesc::new("aten::layer_norm", OpBody::Norm { elems: tokens * d }),
        OpDesc::new(
            "aten::mm_mlp_fc1",
            OpBody::Gemm {
                m: tokens,
                n: f / t,
                k: d,
            },
        ),
        OpDesc::new(
            "aten::gelu",
            OpBody::Elementwise {
                elems: tokens * f / t,
            },
        ),
        OpDesc::new(
            "aten::mm_mlp_fc2",
            OpBody::Gemm {
                m: tokens,
                n: d,
                k: f / t,
            },
        ),
    ]);
    if tp > 1 {
        ops.push(OpDesc::new(
            "nccl:all_reduce_tp_mlp_fwd",
            OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        ));
    }
    ops.push(OpDesc::new(
        "aten::dropout_add",
        OpBody::Elementwise { elems: tokens * d },
    ));
    ops
}

/// The backward operator sequence for one transformer layer on one
/// rank (reverse order of the forward pass; every forward GEMM yields
/// a dgrad and a wgrad GEMM).
pub fn layer_backward_ops(model: &ModelConfig, tp: u32, batch: &BatchConfig) -> Vec<OpDesc> {
    let t = tp as u64;
    let s = batch.seq_len;
    let b = batch.microbatch_size;
    let tokens = s * b;
    let d = model.hidden_size;
    let a = model.attn_size();
    let f = model.ffn_size;
    let heads_local = model.num_heads as u64 / t;
    let ar_bytes = tp_allreduce_bytes(model, batch);

    let mut ops = vec![
        OpDesc::new(
            "aten::dropout_add_bwd",
            OpBody::Elementwise { elems: tokens * d },
        ),
        // MLP fc2 backward: dgrad + wgrad.
        OpDesc::new(
            "aten::mm_mlp_fc2_dgrad",
            OpBody::Gemm {
                m: tokens,
                n: f / t,
                k: d,
            },
        ),
        OpDesc::new(
            "aten::mm_mlp_fc2_wgrad",
            OpBody::Gemm {
                m: f / t,
                n: d,
                k: tokens,
            },
        ),
        OpDesc::new(
            "aten::gelu_bwd",
            OpBody::Elementwise {
                elems: tokens * f / t,
            },
        ),
        // MLP fc1 backward.
        OpDesc::new(
            "aten::mm_mlp_fc1_dgrad",
            OpBody::Gemm {
                m: tokens,
                n: d,
                k: f / t,
            },
        ),
        OpDesc::new(
            "aten::mm_mlp_fc1_wgrad",
            OpBody::Gemm {
                m: d,
                n: f / t,
                k: tokens,
            },
        ),
    ];
    if tp > 1 {
        ops.push(OpDesc::new(
            "nccl:all_reduce_tp_mlp_bwd",
            OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        ));
    }
    ops.extend([
        OpDesc::new("aten::layer_norm_bwd", OpBody::Norm { elems: tokens * d }),
        OpDesc::new(
            "aten::dropout_add_bwd",
            OpBody::Elementwise { elems: tokens * d },
        ),
        // Attention out-proj backward.
        OpDesc::new(
            "aten::mm_attn_out_dgrad",
            OpBody::Gemm {
                m: tokens,
                n: a / t,
                k: d,
            },
        ),
        OpDesc::new(
            "aten::mm_attn_out_wgrad",
            OpBody::Gemm {
                m: a / t,
                n: d,
                k: tokens,
            },
        ),
        OpDesc::new(
            "flash_attn_bwd",
            OpBody::AttentionBwd {
                batch_heads: b * heads_local,
                seq: s,
                head_dim: model.head_dim,
            },
        ),
        // QKV backward.
        OpDesc::new(
            "aten::mm_qkv_dgrad",
            OpBody::Gemm {
                m: tokens,
                n: d,
                k: 3 * a / t,
            },
        ),
        OpDesc::new(
            "aten::mm_qkv_wgrad",
            OpBody::Gemm {
                m: d,
                n: 3 * a / t,
                k: tokens,
            },
        ),
    ]);
    if tp > 1 {
        ops.push(OpDesc::new(
            "nccl:all_reduce_tp_attn_bwd",
            OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        ));
    }
    ops.push(OpDesc::new(
        "aten::layer_norm_bwd",
        OpBody::Norm { elems: tokens * d },
    ));
    ops
}

/// Embedding lookup ops at the first pipeline stage (forward).
pub fn embedding_forward_ops(model: &ModelConfig, batch: &BatchConfig) -> Vec<OpDesc> {
    let tokens = batch.tokens_per_microbatch();
    vec![
        OpDesc::new(
            "aten::embedding",
            OpBody::Embedding {
                elems: tokens * model.hidden_size,
            },
        ),
        OpDesc::new(
            "aten::dropout",
            OpBody::Elementwise {
                elems: tokens * model.hidden_size,
            },
        ),
    ]
}

/// Embedding gradient ops at the first pipeline stage (backward).
pub fn embedding_backward_ops(model: &ModelConfig, batch: &BatchConfig) -> Vec<OpDesc> {
    let tokens = batch.tokens_per_microbatch();
    vec![OpDesc::new(
        "aten::embedding_dense_backward",
        OpBody::Embedding {
            elems: tokens * model.hidden_size,
        },
    )]
}

/// LM-head ops at the last pipeline stage (final LayerNorm, logits
/// GEMM over the TP-sharded vocabulary, softmax cross-entropy).
pub fn head_forward_ops(model: &ModelConfig, tp: u32, batch: &BatchConfig) -> Vec<OpDesc> {
    let t = tp as u64;
    let tokens = batch.tokens_per_microbatch();
    let d = model.hidden_size;
    vec![
        OpDesc::new("aten::layer_norm", OpBody::Norm { elems: tokens * d }),
        OpDesc::new(
            "aten::mm_lm_head",
            OpBody::Gemm {
                m: tokens,
                n: model.vocab_size / t,
                k: d,
            },
        ),
        OpDesc::new(
            "vocab_parallel_cross_entropy",
            OpBody::Softmax {
                elems: tokens * model.vocab_size / t,
            },
        ),
    ]
}

/// LM-head backward ops at the last pipeline stage.
pub fn head_backward_ops(model: &ModelConfig, tp: u32, batch: &BatchConfig) -> Vec<OpDesc> {
    let t = tp as u64;
    let tokens = batch.tokens_per_microbatch();
    let d = model.hidden_size;
    vec![
        OpDesc::new(
            "vocab_parallel_cross_entropy_bwd",
            OpBody::Softmax {
                elems: tokens * model.vocab_size / t,
            },
        ),
        OpDesc::new(
            "aten::mm_lm_head_dgrad",
            OpBody::Gemm {
                m: tokens,
                n: d,
                k: model.vocab_size / t,
            },
        ),
        OpDesc::new(
            "aten::mm_lm_head_wgrad",
            OpBody::Gemm {
                m: model.vocab_size / t,
                n: d,
                k: tokens,
            },
        ),
        OpDesc::new("aten::layer_norm_bwd", OpBody::Norm { elems: tokens * d }),
    ]
}

/// Parameters held by one rank: its pipeline stage's layer shard plus
/// the embedding shard on the first/last stages.
pub fn local_params(model: &ModelConfig, tp: u32, pp: u32, stage: u32) -> u64 {
    let t = tp as u64;
    let layers = model.num_layers as u64 / pp as u64;
    // Per-layer parameters are almost entirely TP-sharded matrices.
    let mut params = layers * model.params_per_layer() / t;
    if stage == 0 || stage == pp - 1 {
        params += model.params_embedding() / t;
    }
    params
}

/// Splits a rank's gradients into data-parallel all-reduce buckets of
/// at most `bucket_bytes` (Megatron DDP overlap buckets). Returns the
/// per-bucket byte counts, in reduction order (last layers first).
pub fn dp_grad_buckets(local_params: u64, bucket_bytes: u64) -> Vec<u64> {
    assert!(bucket_bytes > 0, "bucket size must be positive");
    let total = local_params * GRAD_BYTES;
    if total == 0 {
        return Vec::new();
    }
    let n = total.div_ceil(bucket_bytes);
    let base = total / n;
    let rem = total % n;
    (0..n)
        .map(|i| if i < rem { base + 1 } else { base })
        .collect()
}

/// The fused-optimizer (Adam) update ops for a rank's local
/// parameters, chunked to mirror Megatron's per-bucket application.
pub fn optimizer_ops(local_params: u64) -> Vec<OpDesc> {
    vec![
        OpDesc::new(
            "aten::clip_grad_norm",
            OpBody::Elementwise {
                elems: local_params,
            },
        ),
        OpDesc::new(
            "fused_adam",
            OpBody::Optimizer {
                params: local_params,
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::gpt3_15b()
    }

    fn batch() -> BatchConfig {
        BatchConfig::gpt3_default(4)
    }

    #[test]
    fn forward_ops_have_two_tp_allreduces() {
        let ops = layer_forward_ops(&model(), 2, &batch());
        let comms: Vec<_> = ops.iter().filter(|o| o.body.is_comm()).collect();
        assert_eq!(comms.len(), 2);
        // Without TP there are no collectives.
        let ops1 = layer_forward_ops(&model(), 1, &batch());
        assert!(ops1.iter().all(|o| !o.body.is_comm()));
        assert_eq!(ops.len(), ops1.len() + 2);
    }

    #[test]
    fn backward_has_dgrad_wgrad_pairs() {
        let fwd = layer_forward_ops(&model(), 2, &batch());
        let bwd = layer_backward_ops(&model(), 2, &batch());
        let fwd_gemms = fwd
            .iter()
            .filter(|o| matches!(o.body, OpBody::Gemm { .. }))
            .count();
        let bwd_gemms = bwd
            .iter()
            .filter(|o| matches!(o.body, OpBody::Gemm { .. }))
            .count();
        assert_eq!(bwd_gemms, 2 * fwd_gemms);
    }

    #[test]
    fn backward_flops_roughly_twice_forward() {
        let m = model();
        let b = batch();
        let fwd: u64 = layer_forward_ops(&m, 1, &b)
            .iter()
            .map(|o| o.body.flops())
            .sum();
        let bwd: u64 = layer_backward_ops(&m, 1, &b)
            .iter()
            .map(|o| o.body.flops())
            .sum();
        let ratio = bwd as f64 / fwd as f64;
        assert!((1.8..2.6).contains(&ratio), "bwd/fwd flop ratio {ratio}");
    }

    #[test]
    fn tp_shards_gemm_width() {
        let b = batch();
        let ops1 = layer_forward_ops(&model(), 1, &b);
        let ops4 = layer_forward_ops(&model(), 4, &b);
        let n_of =
            |ops: &[OpDesc]| match ops.iter().find(|o| o.name == "aten::mm_qkv").unwrap().body {
                OpBody::Gemm { n, .. } => n,
                _ => unreachable!(),
            };
        assert_eq!(n_of(&ops1), 4 * n_of(&ops4));
    }

    #[test]
    fn tp_allreduce_bytes_match_activation() {
        let m = model();
        let b = batch();
        assert_eq!(tp_allreduce_bytes(&m, &b), 2048 * m.hidden_size * 2);
        assert_eq!(pp_activation_bytes(&m, &b), tp_allreduce_bytes(&m, &b));
    }

    #[test]
    fn local_params_partition() {
        let m = model();
        // With pp=1, tp=1, a single rank holds everything except the
        // final layer norm (counted in num_params, not local shards).
        let lp = local_params(&m, 1, 1, 0);
        let total = m.num_params();
        assert!(lp <= total);
        assert!((total - lp) < total / 100);

        // Sharding by tp divides layer params.
        let lp_tp2 = local_params(&m, 2, 1, 0);
        assert!(lp_tp2 < lp);

        // Middle stages carry no embedding.
        let mid = local_params(&m, 1, 4, 1);
        let first = local_params(&m, 1, 4, 0);
        assert!(first > mid);
    }

    #[test]
    fn grad_buckets_sum_to_total() {
        let buckets = dp_grad_buckets(1_000_000, 25 * 1024 * 1024);
        assert_eq!(buckets.iter().sum::<u64>(), 4_000_000);
        // All buckets within one byte of each other.
        let min = buckets.iter().min().unwrap();
        let max = buckets.iter().max().unwrap();
        assert!(max - min <= 1);
        assert!(dp_grad_buckets(0, 1024).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_size_panics() {
        let _ = dp_grad_buckets(100, 0);
    }

    #[test]
    fn head_ops_shard_vocab() {
        let b = batch();
        let ops = head_forward_ops(&model(), 4, &b);
        match ops
            .iter()
            .find(|o| o.name == "aten::mm_lm_head")
            .unwrap()
            .body
        {
            OpBody::Gemm { n, .. } => assert_eq!(n, 51_200 / 4),
            _ => panic!("lm head is a gemm"),
        }
    }

    #[test]
    fn optimizer_flops_proportional_to_params() {
        let ops = optimizer_ops(1000);
        let flops: u64 = ops.iter().map(|o| o.body.flops()).sum();
        assert_eq!(flops, 12 * 1000 + 1000);
    }
}
