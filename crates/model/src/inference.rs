//! Inference (serving) workload descriptions: prefill + decode.
//!
//! The paper's discussion (§5) notes that "although this paper focuses
//! on LLM training … Lumos is also applicable to the inference". This
//! module provides the operator IR for a tensor-parallel inference
//! engine step — one *prefill* pass over the prompt followed by
//! autoregressive *decode* steps against a growing KV cache — which
//! `lumos-cluster` lowers into traced programs exactly like training.
//!
//! Decode attention is a distinct kernel shape
//! ([`OpBody::AttentionDecode`]): one query token reads the whole K/V
//! cache, so its cost is linear in cache length and memory-bound,
//! unlike the quadratic prefill kernel.

use crate::batch::BatchConfig;
use crate::error::ModelError;
use crate::gpt3::ModelConfig;
use crate::ops::{self, CollOp, OpBody, OpDesc, ACT_BYTES};
use crate::parallel::{CommScope, Parallelism};
use serde::{Deserialize, Serialize};

/// A complete inference-job description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceSetup {
    /// The transformer architecture.
    pub model: ModelConfig,
    /// Tensor-parallel degree (inference deployments shard within a
    /// node; pipeline/data parallelism run as independent replicas and
    /// are out of scope here).
    pub tp: u32,
    /// Concurrent sequences in the batch.
    pub batch_size: u64,
    /// Prompt length consumed by the prefill pass.
    pub prompt_len: u64,
    /// Tokens generated autoregressively after prefill.
    pub decode_tokens: u32,
}

impl InferenceSetup {
    /// A setup for `model` on `tp` GPUs with typical serving shapes
    /// (batch 8, 512-token prompts, 64 generated tokens).
    pub fn new(model: ModelConfig, tp: u32) -> Self {
        InferenceSetup {
            model,
            tp,
            batch_size: 8,
            prompt_len: 512,
            decode_tokens: 64,
        }
    }

    /// Label like `GPT-3 15B serve @ tp2 b8 p512+64`.
    pub fn label(&self) -> String {
        format!(
            "{} serve @ tp{} b{} p{}+{}",
            self.model.name, self.tp, self.batch_size, self.prompt_len, self.decode_tokens
        )
    }

    /// The equivalent parallelism (tp × 1 × 1).
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::new(self.tp, 1, 1).expect("tp validated")
    }

    /// Validates dimensions and TP divisibility.
    ///
    /// # Errors
    ///
    /// Returns model-dimension errors, divisibility errors, and
    /// [`ModelError::ZeroDimension`] for empty batch/prompt/decode.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.model.validate()?;
        let par = Parallelism::new(self.tp, 1, 1)?;
        par.validate_for(self.model.num_layers, self.model.num_heads)?;
        for (dim, v) in [
            ("batch_size", self.batch_size),
            ("prompt_len", self.prompt_len),
            ("decode_tokens", self.decode_tokens as u64),
        ] {
            if v == 0 {
                return Err(ModelError::ZeroDimension { dim });
            }
        }
        Ok(())
    }

    /// KV-cache bytes per rank when the cache holds `kv_len` tokens
    /// per sequence: K and V, bf16, local heads only.
    pub fn kv_cache_bytes(&self, kv_len: u64) -> u64 {
        let local_attn = self.model.attn_size() / self.tp as u64;
        2 * self.batch_size * kv_len * local_attn * ACT_BYTES
    }
}

/// The prefill pass for one transformer layer: identical shapes to
/// the training forward pass over `prompt_len`-token sequences.
pub fn layer_prefill_ops(setup: &InferenceSetup) -> Vec<OpDesc> {
    let batch = BatchConfig {
        seq_len: setup.prompt_len,
        microbatch_size: setup.batch_size,
        num_microbatches: 1,
    };
    ops::layer_forward_ops(&setup.model, setup.tp, &batch)
}

/// One decode step for one transformer layer: single-token GEMMs,
/// KV-cache attention over `kv_len` tokens, and the TP all-reduces of
/// the forward pass (payload is one token's activations).
pub fn layer_decode_ops(setup: &InferenceSetup, kv_len: u64) -> Vec<OpDesc> {
    let model = &setup.model;
    let t = setup.tp as u64;
    let b = setup.batch_size; // one token per sequence
    let d = model.hidden_size;
    let a = model.attn_size();
    let f = model.ffn_size;
    let heads_local = model.num_heads as u64 / t;
    let ar_bytes = b * d * ACT_BYTES;

    let mut ops = vec![
        OpDesc {
            name: "aten::layer_norm",
            body: OpBody::Norm { elems: b * d },
        },
        OpDesc {
            name: "aten::mm_qkv",
            body: OpBody::Gemm {
                m: b,
                n: 3 * a / t,
                k: d,
            },
        },
        OpDesc {
            name: "paged_attention_decode",
            body: OpBody::AttentionDecode {
                batch_heads: b * heads_local,
                kv_len,
                head_dim: model.head_dim,
            },
        },
        OpDesc {
            name: "aten::mm_attn_out",
            body: OpBody::Gemm {
                m: b,
                n: d,
                k: a / t,
            },
        },
    ];
    if setup.tp > 1 {
        ops.push(OpDesc {
            name: "nccl:all_reduce_tp_attn_fwd",
            body: OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        });
    }
    ops.extend([
        OpDesc {
            name: "aten::layer_norm",
            body: OpBody::Norm { elems: b * d },
        },
        OpDesc {
            name: "aten::mm_mlp_fc1",
            body: OpBody::Gemm {
                m: b,
                n: f / t,
                k: d,
            },
        },
        OpDesc {
            name: "aten::gelu",
            body: OpBody::Elementwise { elems: b * f / t },
        },
        OpDesc {
            name: "aten::mm_mlp_fc2",
            body: OpBody::Gemm {
                m: b,
                n: d,
                k: f / t,
            },
        },
    ]);
    if setup.tp > 1 {
        ops.push(OpDesc {
            name: "nccl:all_reduce_tp_mlp_fwd",
            body: OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes: ar_bytes,
            },
        });
    }
    ops
}

/// The sampling head run once per decode step: final LayerNorm, the
/// sharded logits GEMM for the **last** position only, and softmax.
pub fn sampling_ops(setup: &InferenceSetup) -> Vec<OpDesc> {
    let model = &setup.model;
    let t = setup.tp as u64;
    let b = setup.batch_size;
    let d = model.hidden_size;
    vec![
        OpDesc {
            name: "aten::layer_norm",
            body: OpBody::Norm { elems: b * d },
        },
        OpDesc {
            name: "aten::mm_lm_head",
            body: OpBody::Gemm {
                m: b,
                n: model.vocab_size / t,
                k: d,
            },
        },
        OpDesc {
            name: "aten::softmax_sample",
            body: OpBody::Softmax {
                elems: b * model.vocab_size / t,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> InferenceSetup {
        InferenceSetup {
            model: ModelConfig::tiny(),
            tp: 2,
            batch_size: 4,
            prompt_len: 128,
            decode_tokens: 8,
        }
    }

    #[test]
    fn validation_catches_zeros_and_divisibility() {
        let mut s = setup();
        s.validate().unwrap();
        s.batch_size = 0;
        assert!(s.validate().is_err());
        let mut s = setup();
        s.tp = 3; // 4 heads % 3 != 0
        assert!(s.validate().is_err());
    }

    #[test]
    fn prefill_matches_training_forward_shapes() {
        let s = setup();
        let prefill = layer_prefill_ops(&s);
        let train = ops::layer_forward_ops(
            &s.model,
            2,
            &BatchConfig {
                seq_len: 128,
                microbatch_size: 4,
                num_microbatches: 1,
            },
        );
        assert_eq!(prefill, train);
    }

    #[test]
    fn decode_gemms_are_single_token() {
        let s = setup();
        let ops = layer_decode_ops(&s, 128);
        for op in &ops {
            if let OpBody::Gemm { m, .. } = op.body {
                assert_eq!(m, s.batch_size, "{}", op.name);
            }
        }
        // Decode attention present with the right cache length.
        let dec = ops
            .iter()
            .find(|o| matches!(o.body, OpBody::AttentionDecode { .. }))
            .unwrap();
        match dec.body {
            OpBody::AttentionDecode {
                kv_len,
                batch_heads,
                ..
            } => {
                assert_eq!(kv_len, 128);
                assert_eq!(batch_heads, 4 * 2); // batch 4 × 2 local heads
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn decode_has_tp_allreduces_iff_sharded() {
        let s = setup();
        let comms = layer_decode_ops(&s, 64)
            .iter()
            .filter(|o| o.body.is_comm())
            .count();
        assert_eq!(comms, 2);
        let mut solo = setup();
        solo.tp = 1;
        let comms = layer_decode_ops(&solo, 64)
            .iter()
            .filter(|o| o.body.is_comm())
            .count();
        assert_eq!(comms, 0);
    }

    #[test]
    fn decode_flops_linear_in_kv() {
        let s = setup();
        let flops = |kv: u64| -> u64 {
            layer_decode_ops(&s, kv)
                .iter()
                .map(|o| o.body.flops())
                .sum()
        };
        let f1 = flops(1000);
        let f2 = flops(2000);
        // GEMM flops are kv-independent; attention grows linearly.
        let attn = |kv: u64| 4 * (4 * 2) * kv * s.model.head_dim;
        assert_eq!(f2 - f1, attn(2000) - attn(1000));
    }

    #[test]
    fn kv_cache_grows_linearly_and_shards_by_tp() {
        let s = setup();
        assert_eq!(s.kv_cache_bytes(200), 2 * s.kv_cache_bytes(100));
        let mut wide = setup();
        wide.tp = 1;
        assert_eq!(s.kv_cache_bytes(100) * 2, wide.kv_cache_bytes(100));
    }

    #[test]
    fn sampling_prices_last_position_only() {
        let s = setup();
        let head = sampling_ops(&s);
        match head
            .iter()
            .find(|o| o.name == "aten::mm_lm_head")
            .unwrap()
            .body
        {
            OpBody::Gemm { m, n, .. } => {
                assert_eq!(m, s.batch_size);
                assert_eq!(n, s.model.vocab_size / 2);
            }
            _ => panic!("lm head must be a gemm"),
        }
    }

    #[test]
    fn label_mentions_shapes() {
        let l = setup().label();
        assert!(l.contains("tp2"));
        assert!(l.contains("p128+8"));
    }
}
