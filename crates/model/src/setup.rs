//! A complete training-job description: model, deployment, batching,
//! and scheduling policy.

use crate::batch::BatchConfig;
use crate::error::ModelError;
use crate::gpt3::ModelConfig;
use crate::parallel::Parallelism;
use crate::schedule::ScheduleKind;
use serde::{Deserialize, Serialize};

/// Everything needed to describe one training configuration — the
/// unit both the ground-truth engine executes and Lumos's graph
/// manipulation reasons about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSetup {
    /// The transformer architecture.
    pub model: ModelConfig,
    /// The 3D parallelism deployment.
    pub parallelism: Parallelism,
    /// Batching parameters.
    pub batch: BatchConfig,
    /// Pipeline scheduling policy.
    pub schedule: ScheduleKind,
}

impl TrainingSetup {
    /// A setup with 1F1B scheduling and `2 × PP` micro-batches (the
    /// repository default documented in DESIGN.md).
    pub fn new(model: ModelConfig, parallelism: Parallelism) -> Self {
        TrainingSetup {
            model,
            parallelism,
            batch: BatchConfig::gpt3_default(2 * parallelism.pp),
            schedule: ScheduleKind::OneFOneB,
        }
    }

    /// Label like `GPT-3 15B @ 2x2x4`.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.model.name, self.parallelism.label())
    }

    /// Validates model/deployment compatibility.
    ///
    /// # Errors
    ///
    /// Propagates model-dimension and divisibility errors.
    pub fn validate(&self) -> Result<(), ModelError> {
        self.model.validate()?;
        self.parallelism
            .validate_for(self.model.num_layers, self.model.num_heads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_label() {
        let s = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1).unwrap());
        assert_eq!(s.batch.num_microbatches, 4);
        assert_eq!(s.label(), "tiny @ 1x2x1");
        s.validate().unwrap();
    }

    #[test]
    fn validation_propagates() {
        let s = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(3, 1, 1).unwrap());
        assert!(s.validate().is_err()); // 4 heads % 3 != 0
    }
}
