//! GPT-3 transformer architecture descriptions.
//!
//! Presets reproduce the paper's Table 1 (evaluation models) and
//! Table 2 (architecture variants derived from GPT-3 15B). All other
//! parameters follow the open-source Megatron GPT-3 implementation
//! from the MLPerf training benchmarks.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A decoder-only transformer architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (e.g. "GPT-3 175B").
    pub name: String,
    /// Number of transformer layers (`n_layers`).
    pub num_layers: u32,
    /// Model (hidden) dimension (`d_model`).
    pub hidden_size: u64,
    /// Feed-forward network inner dimension (`d_ffn`).
    pub ffn_size: u64,
    /// Attention heads (`n_heads`).
    pub num_heads: u32,
    /// Per-head dimension (`d_head`).
    pub head_dim: u64,
    /// Vocabulary size (padded, per Megatron convention).
    pub vocab_size: u64,
    /// Maximum sequence length (positional embedding table size).
    pub max_seq_len: u64,
}

impl ModelConfig {
    /// GPT-3 15B (Table 1): 48 layers, d_model 6144, d_ffn 12288,
    /// 48 heads × 128.
    pub fn gpt3_15b() -> Self {
        ModelConfig::custom("GPT-3 15B", 48, 6144, 12288, 48, 128)
    }

    /// GPT-3 44B (Table 1): 48 layers, d_model 12288, d_ffn 24576,
    /// 48 heads × 128.
    pub fn gpt3_44b() -> Self {
        ModelConfig::custom("GPT-3 44B", 48, 12288, 24576, 48, 128)
    }

    /// GPT-3 117B (Table 1): 96 layers, d_model 12288, d_ffn 24576,
    /// 96 heads × 128.
    pub fn gpt3_117b() -> Self {
        ModelConfig::custom("GPT-3 117B", 96, 12288, 24576, 96, 128)
    }

    /// GPT-3 175B (Table 1): 96 layers, d_model 12288, d_ffn 49152,
    /// 96 heads × 128.
    pub fn gpt3_175b() -> Self {
        ModelConfig::custom("GPT-3 175B", 96, 12288, 49152, 96, 128)
    }

    /// GPT-3 V1 (Table 2): 15B base with 64 layers (≈20B params).
    pub fn gpt3_v1() -> Self {
        ModelConfig::custom("GPT-3 V1", 64, 6144, 12288, 48, 128)
    }

    /// GPT-3 V2 (Table 2): 15B base with 96 layers (≈30B params).
    pub fn gpt3_v2() -> Self {
        ModelConfig::custom("GPT-3 V2", 96, 6144, 12288, 48, 128)
    }

    /// GPT-3 V3 (Table 2): 15B base with d_model 9216 / d_ffn 18432
    /// (≈28B params).
    pub fn gpt3_v3() -> Self {
        ModelConfig::custom("GPT-3 V3", 48, 9216, 18432, 48, 128)
    }

    /// GPT-3 V4 (Table 2): 15B base with d_model 12288 / d_ffn 24576
    /// (≈44B params, same architecture as GPT-3 44B).
    pub fn gpt3_v4() -> Self {
        ModelConfig::custom("GPT-3 V4", 48, 12288, 24576, 48, 128)
    }

    /// All Table 1 evaluation models, smallest first.
    pub fn table1() -> Vec<ModelConfig> {
        vec![
            ModelConfig::gpt3_15b(),
            ModelConfig::gpt3_44b(),
            ModelConfig::gpt3_117b(),
            ModelConfig::gpt3_175b(),
        ]
    }

    /// All Table 2 architecture variants, in paper order.
    pub fn table2() -> Vec<ModelConfig> {
        vec![
            ModelConfig::gpt3_v1(),
            ModelConfig::gpt3_v2(),
            ModelConfig::gpt3_v3(),
            ModelConfig::gpt3_v4(),
        ]
    }

    /// Resolves a short preset name to a built-in configuration —
    /// the single source of truth for every CLI / bench surface that
    /// accepts a model name. Accepts the Table 1 sizes (`15b`, `44b`,
    /// `117b`, `175b`), the Table 2 variants (`v1`–`v4`), and `tiny`,
    /// case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownPreset`] (listing the accepted
    /// names) for anything else.
    pub fn from_preset(name: &str) -> Result<Self, ModelError> {
        Ok(match name.to_ascii_lowercase().as_str() {
            "tiny" => ModelConfig::tiny(),
            "15b" => ModelConfig::gpt3_15b(),
            "44b" => ModelConfig::gpt3_44b(),
            "117b" => ModelConfig::gpt3_117b(),
            "175b" => ModelConfig::gpt3_175b(),
            "v1" => ModelConfig::gpt3_v1(),
            "v2" => ModelConfig::gpt3_v2(),
            "v3" => ModelConfig::gpt3_v3(),
            "v4" => ModelConfig::gpt3_v4(),
            _ => {
                return Err(ModelError::UnknownPreset {
                    name: name.to_string(),
                })
            }
        })
    }

    /// A tiny model for tests and examples (2 layers, d_model 256).
    pub fn tiny() -> Self {
        ModelConfig {
            name: "tiny".to_string(),
            num_layers: 2,
            hidden_size: 256,
            ffn_size: 1024,
            num_heads: 4,
            head_dim: 64,
            vocab_size: 1024,
            max_seq_len: 512,
        }
    }

    /// Builds a GPT-3-family config with MLPerf defaults for the
    /// vocabulary (51 200 padded) and sequence length (2 048).
    pub fn custom(
        name: &str,
        num_layers: u32,
        hidden_size: u64,
        ffn_size: u64,
        num_heads: u32,
        head_dim: u64,
    ) -> Self {
        ModelConfig {
            name: name.to_string(),
            num_layers,
            hidden_size,
            ffn_size,
            num_heads,
            head_dim,
            vocab_size: 51_200,
            max_seq_len: 2_048,
        }
    }

    /// Validates that all dimensions are non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroDimension`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ModelError> {
        let dims = [
            ("num_layers", self.num_layers as u64),
            ("hidden_size", self.hidden_size),
            ("ffn_size", self.ffn_size),
            ("num_heads", self.num_heads as u64),
            ("head_dim", self.head_dim),
            ("vocab_size", self.vocab_size),
            ("max_seq_len", self.max_seq_len),
        ];
        for (dim, v) in dims {
            if v == 0 {
                return Err(ModelError::ZeroDimension { dim });
            }
        }
        Ok(())
    }

    /// Total attention projection width `n_heads × d_head` (equals
    /// `d_model` for the classic GPT-3 shapes, but Table 1's 44B model
    /// deviates).
    pub fn attn_size(&self) -> u64 {
        self.num_heads as u64 * self.head_dim
    }

    /// Parameters in one transformer layer: QKV + output projections,
    /// two MLP matrices, biases, and the two LayerNorms.
    pub fn params_per_layer(&self) -> u64 {
        let d = self.hidden_size;
        let a = self.attn_size();
        let f = self.ffn_size;
        let attn = d * 3 * a + 3 * a // QKV weight + bias
            + a * d + d; // output proj weight + bias
        let mlp = d * f + f + f * d + d;
        let norms = 2 * 2 * d; // two LayerNorms, scale + bias each
        attn + mlp + norms
    }

    /// Parameters in the embedding tables (token + position).
    /// The output head shares the token embedding (GPT-3 ties them).
    pub fn params_embedding(&self) -> u64 {
        self.vocab_size * self.hidden_size + self.max_seq_len * self.hidden_size
    }

    /// Total parameter count (embeddings + layers + final LayerNorm).
    pub fn num_params(&self) -> u64 {
        self.params_embedding()
            + self.num_layers as u64 * self.params_per_layer()
            + 2 * self.hidden_size
    }

    /// Forward-pass FLOPs for one token position in one layer
    /// (multiply-accumulate counted as 2 FLOPs), for a sequence of
    /// length `seq`.
    pub fn flops_per_token_per_layer(&self, seq: u64) -> u64 {
        let d = self.hidden_size;
        let a = self.attn_size();
        let f = self.ffn_size;
        let proj = 2 * d * 3 * a + 2 * a * d; // QKV + out-proj
        let attn = 2 * seq * a + 2 * seq * a; // QK^T + AV (per token)
        let mlp = 2 * d * f + 2 * f * d;
        proj + attn + mlp
    }

    /// Model FLOPs for a full forward pass over `tokens` tokens of
    /// sequences of length `seq` (excludes the LM head).
    pub fn forward_flops(&self, tokens: u64, seq: u64) -> u64 {
        self.num_layers as u64 * self.flops_per_token_per_layer(seq) * tokens
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (L={}, d={}, ffn={}, heads={}x{})",
            self.name,
            self.num_layers,
            self.hidden_size,
            self.ffn_size,
            self.num_heads,
            self.head_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 / Table 2 name-plate sizes must match computed
    /// parameter counts within 6% (name plates are rounded).
    #[test]
    fn param_counts_match_nameplates() {
        let cases = [
            (ModelConfig::gpt3_15b(), 15.0e9),
            (ModelConfig::gpt3_44b(), 44.0e9),
            (ModelConfig::gpt3_117b(), 117.0e9),
            (ModelConfig::gpt3_175b(), 175.0e9),
            (ModelConfig::gpt3_v1(), 20.0e9),
            (ModelConfig::gpt3_v2(), 30.0e9),
            (ModelConfig::gpt3_v3(), 28.0e9),
            (ModelConfig::gpt3_v4(), 44.0e9),
        ];
        for (cfg, plate) in cases {
            let params = cfg.num_params() as f64;
            let err = (params - plate).abs() / plate;
            assert!(
                err < 0.06,
                "{}: computed {params:.3e} vs plate {plate:.1e} (err {err:.3})",
                cfg.name
            );
        }
    }

    #[test]
    fn table1_and_2_shapes() {
        let m175 = ModelConfig::gpt3_175b();
        assert_eq!(m175.num_layers, 96);
        assert_eq!(m175.hidden_size, 12_288);
        assert_eq!(m175.ffn_size, 49_152);
        assert_eq!(m175.attn_size(), 12_288);

        // Table 1's 44B deviates: 48 heads x 128 = 6144 != d_model.
        let m44 = ModelConfig::gpt3_44b();
        assert_eq!(m44.attn_size(), 6_144);
        assert_eq!(m44.hidden_size, 12_288);

        // V4 shares the 44B architecture.
        let v4 = ModelConfig::gpt3_v4();
        assert_eq!(
            (v4.num_layers, v4.hidden_size, v4.ffn_size),
            (m44.num_layers, m44.hidden_size, m44.ffn_size)
        );
    }

    #[test]
    fn validation_rejects_zero() {
        let mut cfg = ModelConfig::tiny();
        assert!(cfg.validate().is_ok());
        cfg.hidden_size = 0;
        assert_eq!(
            cfg.validate(),
            Err(ModelError::ZeroDimension { dim: "hidden_size" })
        );
    }

    #[test]
    fn flops_scale_with_dims() {
        let base = ModelConfig::gpt3_15b();
        let bigger = ModelConfig::gpt3_44b();
        assert!(bigger.flops_per_token_per_layer(2048) > base.flops_per_token_per_layer(2048));
        // Forward flops scale linearly in tokens.
        assert_eq!(
            base.forward_flops(100, 2048),
            10 * base.forward_flops(10, 2048)
        );
    }

    #[test]
    fn collections_complete() {
        assert_eq!(ModelConfig::table1().len(), 4);
        assert_eq!(ModelConfig::table2().len(), 4);
    }

    #[test]
    fn display_contains_name() {
        assert!(ModelConfig::gpt3_15b().to_string().contains("GPT-3 15B"));
    }

    #[test]
    fn preset_resolution() {
        assert_eq!(ModelConfig::from_preset("tiny").unwrap().name, "tiny");
        assert_eq!(ModelConfig::from_preset("175B").unwrap().num_layers, 96);
        assert_eq!(
            ModelConfig::from_preset("v3").unwrap(),
            ModelConfig::gpt3_v3()
        );
        let err = ModelConfig::from_preset("9000b").unwrap_err();
        assert!(matches!(err, ModelError::UnknownPreset { .. }));
        assert!(err.to_string().contains("9000b"));
        assert!(err.to_string().contains("tiny"));
    }
}
