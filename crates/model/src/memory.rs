//! Per-rank GPU memory estimation for 3D-parallel training.
//!
//! The paper's §5 limitations name memory consumption as future work
//! ("we assume the model will function as expected under the new
//! settings, without unforeseen issues such as out-of-memory errors").
//! This module closes that gap: it estimates the per-rank footprint of
//! a [`TrainingSetup`] so what-if predictions can be gated on
//! feasibility before any simulation is run.
//!
//! Accounting follows Megatron-LM's mixed-precision recipe (bf16
//! weights/activations, fp32 main gradients, fp32 Adam state) and the
//! activation-memory model of Korthikanti et al., *Reducing Activation
//! Recomputation in Large Transformer Models* (2022), adapted to
//! arbitrary attention width `a = n_heads × d_head` and FFN width
//! `f = d_ffn`:
//!
//! * replicated per-layer activations: `10·s·b·h` bytes;
//! * tensor-parallel-sharded activations: `s·b·(8a + 4f)/t` bytes;
//! * the attention-map term `5·s²·b·n_heads/t` appears only without
//!   flash attention ([`Recompute::None`]);
//! * [`Recompute::Full`] keeps only the `2·s·b·h` layer input.
//!
//! Pipeline stages hold one activation set per *in-flight* micro-batch:
//! `min(m, pp − stage)` under 1F1B, all `m` under GPipe — so stage 0
//! is the activation-memory peak.

use crate::batch::BatchConfig;
use crate::gpt3::ModelConfig;
use crate::ops::local_params;
use crate::schedule::ScheduleKind;
use crate::setup::TrainingSetup;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bytes per bf16 weight/activation element.
const BF16: u64 = 2;
/// Bytes per fp32 element (main grads, optimizer state).
const FP32: u64 = 4;

/// Activation-recomputation (checkpointing) policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Recompute {
    /// No recomputation and *no* flash attention: the full quadratic
    /// attention map is materialized and saved for backward.
    None,
    /// Selective recomputation — equivalently, flash attention: the
    /// attention map is never stored (the paper's Transformer Engine
    /// 0.12 setup). This is the repository default.
    #[default]
    Selective,
    /// Full recomputation: only each layer's input survives the
    /// forward pass; everything else is rebuilt during backward.
    Full,
}

impl fmt::Display for Recompute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Recompute::None => "none",
            Recompute::Selective => "selective",
            Recompute::Full => "full",
        };
        f.write_str(s)
    }
}

/// Optimizer-state placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OptimizerPlacement {
    /// Every data-parallel replica keeps full fp32 master weights and
    /// Adam moments (Megatron default).
    #[default]
    Replicated,
    /// Megatron distributed optimizer / ZeRO-1: master weights and
    /// moments are sharded across the data-parallel group.
    DistributedOptimizer,
}

/// A per-rank memory estimate, broken into the components reported by
/// `torch.cuda.memory_summary`-style tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// bf16 parameter shard.
    pub weights: u64,
    /// fp32 main gradients (Megatron DDP keeps full-precision grads).
    pub gradients: u64,
    /// fp32 master weights + Adam first/second moments.
    pub optimizer: u64,
    /// Peak activation storage across in-flight micro-batches.
    pub activations: u64,
    /// Largest transient workspace (LM-head logits, GEMM scratch).
    pub workspace: u64,
    /// Fixed runtime overhead: CUDA context, NCCL buffers, allocator
    /// fragmentation reserve.
    pub overhead: u64,
}

impl MemoryEstimate {
    /// Total bytes across all components.
    pub fn total(&self) -> u64 {
        self.weights
            + self.gradients
            + self.optimizer
            + self.activations
            + self.workspace
            + self.overhead
    }

    /// Whether the estimate fits a device with `capacity` bytes.
    pub fn fits(&self, capacity: u64) -> bool {
        self.total() <= capacity
    }

    /// Headroom (positive) or deficit (negative) against `capacity`,
    /// in bytes.
    pub fn headroom(&self, capacity: u64) -> i64 {
        capacity as i64 - self.total() as i64
    }
}

impl fmt::Display for MemoryEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        write!(
            f,
            "total {:.1} GiB (weights {:.1} + grads {:.1} + optim {:.1} + acts {:.1} + ws {:.1} + ovh {:.1})",
            gib(self.total()),
            gib(self.weights),
            gib(self.gradients),
            gib(self.optimizer),
            gib(self.activations),
            gib(self.workspace),
            gib(self.overhead)
        )
    }
}

/// Tunable constants of the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Recomputation policy.
    pub recompute: Recompute,
    /// Optimizer-state placement.
    pub optimizer: OptimizerPlacement,
    /// Fixed runtime overhead in bytes (CUDA context + NCCL channels +
    /// fragmentation reserve). Defaults to 4 GiB, a typical H100
    /// figure for multi-communicator Megatron jobs.
    pub overhead_bytes: u64,
    /// Floor for transient GEMM/attention workspace in bytes
    /// (cuBLAS/cuDNN reserve). Defaults to 128 MiB.
    pub workspace_floor_bytes: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            recompute: Recompute::Selective,
            optimizer: OptimizerPlacement::Replicated,
            overhead_bytes: 4 << 30,
            workspace_floor_bytes: 128 << 20,
        }
    }
}

impl MemoryModel {
    /// A model with everything default except the recompute policy.
    pub fn with_recompute(recompute: Recompute) -> Self {
        MemoryModel {
            recompute,
            ..MemoryModel::default()
        }
    }

    /// Activation bytes one pipeline stage must hold for **one**
    /// micro-batch of one transformer layer.
    pub fn activation_bytes_per_layer(
        &self,
        model: &ModelConfig,
        batch: &BatchConfig,
        tp: u32,
    ) -> u64 {
        let n = batch.tokens_per_microbatch(); // s·b
        let h = model.hidden_size;
        let a = model.attn_size();
        let f = model.ffn_size;
        let t = tp as u64;
        match self.recompute {
            Recompute::Full => BF16 * n * h,
            Recompute::Selective => 10 * n * h + n * (8 * a + 4 * f) / t,
            Recompute::None => {
                let map = 5 * batch.seq_len * n * model.num_heads as u64 / t;
                10 * n * h + n * (8 * a + 4 * f) / t + map
            }
        }
    }

    /// Peak number of in-flight micro-batch activation sets at
    /// `stage`, as accounted by the schedule policy itself.
    pub fn in_flight(&self, schedule: ScheduleKind, pp: u32, stage: u32, microbatches: u32) -> u32 {
        schedule.in_flight(pp, stage, microbatches)
    }

    /// Estimates the footprint of the rank at pipeline `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= setup.parallelism.pp`.
    pub fn estimate_stage(&self, setup: &TrainingSetup, stage: u32) -> MemoryEstimate {
        let par = &setup.parallelism;
        assert!(
            stage < par.pp,
            "stage {stage} out of range for pp={}",
            par.pp
        );
        let model = &setup.model;
        let batch = &setup.batch;
        let params = local_params(model, par.tp, par.pp, stage);

        let weights = BF16 * params;
        let gradients = FP32 * params;
        let optim_full = 3 * FP32 * params; // master + m + v
        let optimizer = match self.optimizer {
            OptimizerPlacement::Replicated => optim_full,
            OptimizerPlacement::DistributedOptimizer => optim_full.div_ceil(par.dp as u64),
        };

        let layers_here = (model.num_layers / par.pp) as u64;
        let per_layer = self.activation_bytes_per_layer(model, batch, par.tp);
        let in_flight =
            self.in_flight(setup.schedule, par.pp, stage, batch.num_microbatches) as u64;
        let mut activations = in_flight * layers_here * per_layer;
        if stage == 0 {
            // Embedding output held per in-flight micro-batch.
            activations += in_flight * BF16 * batch.tokens_per_microbatch() * model.hidden_size;
        }

        let mut workspace = self.workspace_floor_bytes;
        if stage == par.pp - 1 {
            // fp32 logits + bf16 logits for the sharded vocabulary.
            let logits =
                (FP32 + BF16) * batch.tokens_per_microbatch() * model.vocab_size / par.tp as u64;
            workspace = workspace.max(logits);
        }

        MemoryEstimate {
            weights,
            gradients,
            optimizer,
            activations,
            workspace,
            overhead: self.overhead_bytes,
        }
    }

    /// Estimates all stages and returns `(stage, estimate)` for the
    /// most memory-hungry one (the binding constraint for OOM).
    pub fn estimate_peak(&self, setup: &TrainingSetup) -> (u32, MemoryEstimate) {
        (0..setup.parallelism.pp)
            .map(|s| (s, self.estimate_stage(setup, s)))
            .max_by_key(|(_, e)| e.total())
            .expect("pp >= 1")
    }

    /// Checks whether `setup` fits on devices with `capacity` bytes,
    /// returning the peak stage's estimate either way.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] naming the stage and deficit when the peak
    /// stage exceeds `capacity`.
    pub fn check(&self, setup: &TrainingSetup, capacity: u64) -> Result<MemoryEstimate, OomError> {
        let (stage, est) = self.estimate_peak(setup);
        if est.fits(capacity) {
            Ok(est)
        } else {
            Err(OomError {
                stage,
                required: est.total(),
                capacity,
            })
        }
    }
}

/// Predicted out-of-memory condition for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OomError {
    /// The pipeline stage that overflows first.
    pub stage: u32,
    /// Bytes the stage requires.
    pub required: u64,
    /// Bytes available per device.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicted OOM at pipeline stage {}: needs {:.1} GiB, device has {:.1} GiB",
            self.stage,
            self.required as f64 / (1u64 << 30) as f64,
            self.capacity as f64 / (1u64 << 30) as f64
        )
    }
}

impl std::error::Error for OomError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::Parallelism;

    const GIB: u64 = 1 << 30;
    const H100_CAPACITY: u64 = 80 * GIB;

    fn setup(model: ModelConfig, tp: u32, pp: u32, dp: u32) -> TrainingSetup {
        TrainingSetup::new(model, Parallelism::new(tp, pp, dp).unwrap())
    }

    #[test]
    fn paper_config_fits_h100() {
        // GPT-3 175B at TP8/PP4/DP8 trains on the paper's cluster. At
        // 5.5B params/rank the replicated-optimizer footprint (18
        // bytes/param ≈ 99 GiB) exceeds 80 GiB — the MLPerf reference
        // enables Megatron's distributed optimizer, which must fit.
        let s = setup(ModelConfig::gpt3_175b(), 8, 4, 8);
        let replicated = MemoryModel::default();
        assert!(!replicated.estimate_peak(&s).1.fits(H100_CAPACITY));

        let dist = MemoryModel {
            optimizer: OptimizerPlacement::DistributedOptimizer,
            ..MemoryModel::default()
        };
        let (stage, est) = dist.estimate_peak(&s);
        assert!(est.fits(H100_CAPACITY), "stage {stage} does not fit: {est}");
    }

    #[test]
    fn single_gpu_175b_overflows() {
        let s = setup(ModelConfig::gpt3_175b(), 1, 1, 1);
        let m = MemoryModel::default();
        let err = m.check(&s, H100_CAPACITY).unwrap_err();
        // 175B × 18 bytes/param static state alone is ~2.9 TiB.
        assert!(err.required > 2_000 * GIB);
        assert_eq!(err.stage, 0);
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn static_state_is_18_bytes_per_param() {
        let s = setup(ModelConfig::tiny(), 1, 1, 1);
        let m = MemoryModel::default();
        let est = m.estimate_stage(&s, 0);
        let params = local_params(&s.model, 1, 1, 0);
        assert_eq!(est.weights + est.gradients + est.optimizer, 18 * params);
    }

    #[test]
    fn distributed_optimizer_shards_states() {
        let s = setup(ModelConfig::gpt3_15b(), 2, 2, 4);
        let repl = MemoryModel::default().estimate_stage(&s, 0);
        let dist = MemoryModel {
            optimizer: OptimizerPlacement::DistributedOptimizer,
            ..MemoryModel::default()
        }
        .estimate_stage(&s, 0);
        assert_eq!(dist.optimizer, repl.optimizer.div_ceil(4));
        assert_eq!(dist.weights, repl.weights);
    }

    #[test]
    fn recompute_ordering() {
        // More recomputation ⇒ less activation memory.
        let model = ModelConfig::gpt3_15b();
        let batch = BatchConfig::gpt3_default(4);
        let bytes = |r: Recompute| {
            MemoryModel::with_recompute(r).activation_bytes_per_layer(&model, &batch, 2)
        };
        assert!(bytes(Recompute::None) > bytes(Recompute::Selective));
        assert!(bytes(Recompute::Selective) > bytes(Recompute::Full));
    }

    #[test]
    fn selective_matches_korthikanti_constant() {
        // For the classic GPT shape (a = h, f = 4h) the selective
        // formula must reduce to sbh·(10 + 24/t).
        let model = ModelConfig::custom("classic", 4, 1024, 4096, 8, 128);
        let batch = BatchConfig {
            seq_len: 512,
            microbatch_size: 2,
            num_microbatches: 4,
        };
        let sbh = 512 * 2 * 1024;
        for t in [1u32, 2, 4] {
            let got = MemoryModel::default().activation_bytes_per_layer(&model, &batch, t);
            assert_eq!(got, sbh * (10 + 24 / t as u64), "t={t}");
        }
    }

    #[test]
    fn stage0_is_activation_peak_under_1f1b() {
        let s = setup(ModelConfig::gpt3_15b(), 2, 4, 1);
        let m = MemoryModel::default();
        let first = m.estimate_stage(&s, 0);
        let last = m.estimate_stage(&s, 3);
        assert!(first.activations > last.activations);
        // 1F1B in-flight: stage 0 holds pp sets, last stage holds 1.
        assert_eq!(m.in_flight(ScheduleKind::OneFOneB, 4, 0, 8), 4);
        assert_eq!(m.in_flight(ScheduleKind::OneFOneB, 4, 3, 8), 1);
        // GPipe holds everything everywhere.
        assert_eq!(m.in_flight(ScheduleKind::GPipe, 4, 3, 8), 8);
    }

    #[test]
    fn gpipe_needs_more_activation_memory() {
        let mut s = setup(ModelConfig::gpt3_15b(), 2, 2, 1);
        let m = MemoryModel::default();
        let f1b = m.estimate_stage(&s, 0);
        s.schedule = ScheduleKind::GPipe;
        let gpipe = m.estimate_stage(&s, 0);
        assert!(gpipe.activations > f1b.activations);
    }

    #[test]
    fn tp_shards_activations_and_weights() {
        let s1 = setup(ModelConfig::gpt3_15b(), 1, 2, 1);
        let s2 = setup(ModelConfig::gpt3_15b(), 2, 2, 1);
        let m = MemoryModel::default();
        let e1 = m.estimate_stage(&s1, 0);
        let e2 = m.estimate_stage(&s2, 0);
        assert!(e2.weights < e1.weights);
        assert!(e2.activations < e1.activations);
    }

    #[test]
    fn last_stage_logits_workspace() {
        let s = setup(ModelConfig::gpt3_15b(), 2, 2, 1);
        let m = MemoryModel::default();
        let last = m.estimate_stage(&s, 1);
        let logits = 6 * s.batch.tokens_per_microbatch() * s.model.vocab_size / 2;
        assert_eq!(last.workspace, logits.max(m.workspace_floor_bytes));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_stage_panics() {
        let s = setup(ModelConfig::tiny(), 1, 2, 1);
        let _ = MemoryModel::default().estimate_stage(&s, 5);
    }

    #[test]
    fn headroom_signs() {
        let est = MemoryEstimate {
            weights: GIB,
            gradients: GIB,
            optimizer: GIB,
            activations: GIB,
            workspace: 0,
            overhead: 0,
        };
        assert_eq!(est.total(), 4 * GIB);
        assert!(est.headroom(5 * GIB) > 0);
        assert!(est.headroom(3 * GIB) < 0);
        assert!(est.fits(4 * GIB));
    }

    #[test]
    fn display_is_humane() {
        let s = setup(ModelConfig::tiny(), 1, 1, 1);
        let text = MemoryModel::default().estimate_stage(&s, 0).to_string();
        assert!(text.contains("GiB"));
        assert!(text.contains("weights"));
    }
}
