//! Deterministic, replayable fault injection over the discrete-event
//! engine.
//!
//! The [`crate::jitter`] model answers "how does this configuration
//! behave under *healthy* run-to-run variance?". At the scale the
//! north-star targets, stragglers, link degradation, and rank
//! failures are the steady state, not the exception — this module
//! generalizes the jitter idea into a **scenario engine** with four
//! injectable fault kinds:
//!
//! * **persistent stragglers** — per-rank slow-node multipliers
//!   applied to every compute kernel and host op of the afflicted
//!   ranks (thermal throttling, a degraded HBM stack, a noisy
//!   neighbor);
//! * **transient network degradation** — a bandwidth multiplier on a
//!   collective scope (`tp`/`dp`/`pp`/`embedding`/`all`) over a
//!   `[t_start, t_end)` window of the iteration (a flapping link, a
//!   congested spine);
//! * **rank failure with checkpoint restart** — a rank dies at a
//!   sampled point of a checkpoint interval; the run loses the work
//!   since the last checkpoint and pays an amortized restart latency
//!   ([`lumos_model::RecoveryCosts`]);
//! * **elastic re-sharding** — instead of restoring the full world,
//!   the survivors re-lower to a degraded configuration (one fewer
//!   data-parallel replica) and additionally pay a re-shard cost.
//!
//! Scenarios come from a versioned [`FaultSpec`] TOML. Which faults
//! fire in a given replica is sampled with the same
//! hash-the-`(seed, replica, site)` idiom as [`crate::JitterModel`]
//! ([`crate::jitter::mix`]), so every replica is **byte-identical to
//! replay**: no RNG state threads between replicas, and thread count
//! or evaluation order can never change a draw. The compiled
//! [`RunScenario`] is executed through the engine's metrics-only
//! [`crate::sink::EventSink`] fast path
//! ([`crate::PreparedJob::execute_metrics_faulted`]), so hundreds of
//! fault replicas per search finalist stay affordable.

use crate::jitter::mix;
use lumos_model::{RecoveryCosts, ScopeClass};
use lumos_trace::{Dur, Ts};
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// The one spec version this build reads.
pub const FAULT_SPEC_VERSION: u64 = 1;

// Sampling-site tags, disjoint from the jitter tags (0x4b65 / 0x686f /
// 0x636f / 0x6472) so fault draws can never collide with variance
// draws under the same seed.
const TAG_STRAGGLER: u64 = 0x7367; // straggler gate
const TAG_STRAGGLER_RANK: u64 = 0x7372; // straggler rank choice
const TAG_DEGRADATION: u64 = 0x6467; // degradation gate
const TAG_FAILURE: u64 = 0x6667; // failure gate
const TAG_FAILURE_RANK: u64 = 0x6672; // failed-rank choice
const TAG_FAILURE_FRAC: u64 = 0x6666; // failure point in the interval

/// A uniform draw in `[0, 1)` from the hash of `(seed, tag, a, b, c)`
/// — the top 53 bits of the mixed key, the same construction
/// `rand`'s uniform `f64` uses.
fn uniform01(seed: u64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let key = mix(mix(mix(mix(seed, tag), a), b), c);
    (key >> 11) as f64 / (1u64 << 53) as f64
}

/// One persistent-straggler scenario: with `probability`, `ranks`
/// distinct ranks run all compute/host work `slowdown`× slower.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerSpec {
    /// Per-replica probability the scenario fires.
    pub probability: f64,
    /// Distinct ranks afflicted when it fires (clamped to the world).
    pub ranks: u32,
    /// Duration multiplier (≥ 1) on the afflicted ranks' compute
    /// kernels and host ops.
    pub slowdown: f64,
}

/// One transient network-degradation scenario: with `probability`,
/// collectives on `scope` starting inside
/// `[start_frac, end_frac) × clean makespan` run at
/// `bandwidth_factor` of nominal bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationSpec {
    /// Per-replica probability the scenario fires.
    pub probability: f64,
    /// Collective scope the window applies to (`None` = every group).
    pub scope: Option<ScopeClass>,
    /// Remaining bandwidth fraction in `(0, 1]`: affected collectives
    /// take `base / bandwidth_factor`.
    pub bandwidth_factor: f64,
    /// Window start as a fraction of the clean makespan.
    pub start_frac: f64,
    /// Window end as a fraction of the clean makespan (may exceed 1:
    /// faulted runs outlast the clean one).
    pub end_frac: f64,
}

/// One rank-failure scenario: with `probability`, a rank dies at a
/// sampled point of a checkpoint interval and the run recovers by
/// checkpoint restart — or, with `elastic`, by re-sharding onto one
/// fewer data-parallel replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureSpec {
    /// Per-replica probability the scenario fires.
    pub probability: f64,
    /// Recover by elastic re-sharding to a survivor configuration
    /// instead of waiting for the full world to restore.
    pub elastic: bool,
    /// Checkpoint-restart / re-shard cost parameters.
    pub recovery: RecoveryCosts,
}

/// A versioned, parsed fault-scenario specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Persistent-straggler scenarios (`[[straggler]]` tables).
    pub stragglers: Vec<StragglerSpec>,
    /// Network-degradation scenarios (`[[degradation]]` tables).
    pub degradations: Vec<DegradationSpec>,
    /// Rank-failure scenarios (`[[failure]]` tables).
    pub failures: Vec<FailureSpec>,
}

/// A parse or validation failure, naming the offending TOML key (the
/// CLI prepends the file path).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// A line that is not a comment, a `[[table]]` header, or a
    /// `key = value` pair.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A `[[table]]` header other than the three scenario kinds.
    UnknownTable {
        /// 1-based line number.
        line: usize,
        /// The header name.
        name: String,
    },
    /// A key this table does not define.
    UnknownKey {
        /// Table name (`straggler` / `degradation` / `failure`, or
        /// `<top-level>`).
        table: String,
        /// 1-based index of the table instance.
        index: usize,
        /// The offending key.
        key: String,
    },
    /// A required key was absent.
    MissingKey {
        /// Table name.
        table: String,
        /// 1-based index of the table instance.
        index: usize,
        /// The absent key.
        key: String,
    },
    /// A key's value failed to parse or validate.
    BadValue {
        /// Table name (or `<top-level>`).
        table: String,
        /// 1-based index of the table instance (0 for top level).
        index: usize,
        /// The offending key.
        key: String,
        /// What was wrong with the value.
        detail: String,
    },
    /// The spec declares a version this build does not read.
    UnsupportedVersion {
        /// The declared version.
        version: u64,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::Syntax { line, detail } => {
                write!(f, "line {line}: {detail}")
            }
            FaultSpecError::UnknownTable { line, name } => write!(
                f,
                "line {line}: unknown table `[[{name}]]` (expected straggler, degradation, \
                 or failure)"
            ),
            FaultSpecError::UnknownKey { table, index, key } => {
                write!(f, "[[{table}]] #{index}: unknown key `{key}`")
            }
            FaultSpecError::MissingKey { table, index, key } => {
                write!(f, "[[{table}]] #{index}: missing required key `{key}`")
            }
            FaultSpecError::BadValue {
                table,
                index,
                key,
                detail,
            } => {
                if table == "<top-level>" {
                    write!(f, "key `{key}`: {detail}")
                } else {
                    write!(f, "[[{table}]] #{index}: key `{key}`: {detail}")
                }
            }
            FaultSpecError::UnsupportedVersion { version } => write!(
                f,
                "key `version`: unsupported fault-spec version {version} \
                 (this build reads version {FAULT_SPEC_VERSION})"
            ),
        }
    }
}

impl Error for FaultSpecError {}

/// One `key = value` right-hand side of the TOML subset the parser
/// reads: numbers, booleans, and quoted strings.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Number(f64),
    Bool(bool),
    Str(String),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Number(_) => "number",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Str(_) => "string",
        }
    }
}

/// Accumulates the keys of one table instance, then validates them
/// field by field so every error names its key.
struct Table {
    name: &'static str,
    index: usize,
    entries: Vec<(String, TomlValue)>,
}

impl Table {
    fn take(&mut self, key: &str) -> Option<TomlValue> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(pos).1)
    }

    fn bad(&self, key: &str, detail: impl Into<String>) -> FaultSpecError {
        FaultSpecError::BadValue {
            table: self.name.to_string(),
            index: self.index,
            key: key.to_string(),
            detail: detail.into(),
        }
    }

    fn number(&mut self, key: &str) -> Result<Option<f64>, FaultSpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(TomlValue::Number(n)) => Ok(Some(n)),
            Some(other) => {
                Err(self.bad(key, format!("expected a number, got {}", other.type_name())))
            }
        }
    }

    fn probability(&mut self) -> Result<f64, FaultSpecError> {
        match self.number("probability")? {
            None => Ok(1.0),
            Some(p) if (0.0..=1.0).contains(&p) => Ok(p),
            Some(p) => Err(self.bad("probability", format!("{p} is outside [0, 1]"))),
        }
    }

    fn boolean(&mut self, key: &str) -> Result<Option<bool>, FaultSpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(TomlValue::Bool(b)) => Ok(Some(b)),
            Some(other) => Err(self.bad(
                key,
                format!("expected a boolean, got {}", other.type_name()),
            )),
        }
    }

    fn string(&mut self, key: &str) -> Result<Option<String>, FaultSpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(TomlValue::Str(s)) => Ok(Some(s)),
            Some(other) => {
                Err(self.bad(key, format!("expected a string, got {}", other.type_name())))
            }
        }
    }

    /// Fails on any key the field extractors did not consume.
    fn finish(self) -> Result<(), FaultSpecError> {
        match self.entries.into_iter().next() {
            None => Ok(()),
            Some((key, _)) => Err(FaultSpecError::UnknownKey {
                table: self.name.to_string(),
                index: self.index,
                key,
            }),
        }
    }
}

impl FaultSpec {
    /// `true` when no scenario is declared: the robust pass is a
    /// no-op and search skips it entirely, which is what keeps
    /// `--faults empty.toml` byte-identical to plain `--refine-sim`.
    pub fn is_empty(&self) -> bool {
        self.stragglers.is_empty() && self.degradations.is_empty() && self.failures.is_empty()
    }

    /// Parses the versioned TOML text.
    ///
    /// # Errors
    ///
    /// Every error names the offending TOML key (or line); callers
    /// prepend the file path.
    pub fn parse(text: &str) -> Result<Self, FaultSpecError> {
        let mut version: Option<u64> = None;
        let mut tables: Vec<Table> = Vec::new();
        let mut current: Option<usize> = None;
        let mut counts = [0usize; 3];

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
                let name = header.trim();
                let slot = match name {
                    "straggler" => 0,
                    "degradation" => 1,
                    "failure" => 2,
                    other => {
                        return Err(FaultSpecError::UnknownTable {
                            line: line_no,
                            name: other.to_string(),
                        })
                    }
                };
                counts[slot] += 1;
                tables.push(Table {
                    name: ["straggler", "degradation", "failure"][slot],
                    index: counts[slot],
                    entries: Vec::new(),
                });
                current = Some(tables.len() - 1);
                continue;
            }
            if line.starts_with('[') {
                return Err(FaultSpecError::Syntax {
                    line: line_no,
                    detail: format!("`{line}` is not an array-of-tables header (write `[[name]]`)"),
                });
            }
            let (key, value) = parse_kv(line, line_no)?;
            match current {
                Some(t) => tables[t].entries.push((key, value)),
                None => {
                    if key == "version" {
                        let TomlValue::Number(n) = value else {
                            return Err(FaultSpecError::BadValue {
                                table: "<top-level>".to_string(),
                                index: 0,
                                key,
                                detail: "expected an integer".to_string(),
                            });
                        };
                        if n.fract() != 0.0 || n < 0.0 {
                            return Err(FaultSpecError::BadValue {
                                table: "<top-level>".to_string(),
                                index: 0,
                                key,
                                detail: format!("{n} is not a non-negative integer"),
                            });
                        }
                        version = Some(n as u64);
                    } else {
                        return Err(FaultSpecError::UnknownKey {
                            table: "<top-level>".to_string(),
                            index: 0,
                            key,
                        });
                    }
                }
            }
        }

        if let Some(v) = version {
            if v != FAULT_SPEC_VERSION {
                return Err(FaultSpecError::UnsupportedVersion { version: v });
            }
        }

        let mut spec = FaultSpec::default();
        for mut t in tables {
            match t.name {
                "straggler" => {
                    let probability = t.probability()?;
                    let ranks = match t.number("ranks")? {
                        None => 1,
                        Some(n) if n.fract() == 0.0 && n >= 1.0 && n <= u32::MAX as f64 => n as u32,
                        Some(n) => {
                            return Err(t.bad("ranks", format!("{n} is not a positive integer")))
                        }
                    };
                    let slowdown = match t.number("slowdown")? {
                        None => {
                            return Err(FaultSpecError::MissingKey {
                                table: t.name.to_string(),
                                index: t.index,
                                key: "slowdown".to_string(),
                            })
                        }
                        Some(s) if s >= 1.0 && s.is_finite() => s,
                        Some(s) => {
                            return Err(
                                t.bad("slowdown", format!("{s} must be a finite multiplier ≥ 1"))
                            )
                        }
                    };
                    t.finish()?;
                    spec.stragglers.push(StragglerSpec {
                        probability,
                        ranks,
                        slowdown,
                    });
                }
                "degradation" => {
                    let probability = t.probability()?;
                    let scope = match t.string("scope")?.as_deref() {
                        None | Some("all") => None,
                        Some(s) => Some(ScopeClass::from_str(s).map_err(|e| t.bad("scope", e))?),
                    };
                    let bandwidth_factor = match t.number("bandwidth_factor")? {
                        None => {
                            return Err(FaultSpecError::MissingKey {
                                table: t.name.to_string(),
                                index: t.index,
                                key: "bandwidth_factor".to_string(),
                            })
                        }
                        Some(b) if b > 0.0 && b <= 1.0 => b,
                        Some(b) => {
                            return Err(t.bad("bandwidth_factor", format!("{b} is outside (0, 1]")))
                        }
                    };
                    let start_frac = match t.number("start_frac")? {
                        None => 0.0,
                        Some(s) if (0.0..100.0).contains(&s) => s,
                        Some(s) => {
                            return Err(t.bad("start_frac", format!("{s} is outside [0, 100)")))
                        }
                    };
                    let end_frac = match t.number("end_frac")? {
                        None => 1.0,
                        Some(e) if e > start_frac && e <= 100.0 => e,
                        Some(e) => {
                            return Err(t.bad(
                                "end_frac",
                                format!("{e} must be in ({start_frac}, 100] (after start_frac)"),
                            ))
                        }
                    };
                    t.finish()?;
                    spec.degradations.push(DegradationSpec {
                        probability,
                        scope,
                        bandwidth_factor,
                        start_frac,
                        end_frac,
                    });
                }
                "failure" => {
                    let probability = t.probability()?;
                    let elastic = t.boolean("elastic")?.unwrap_or(false);
                    let defaults = RecoveryCosts::defaults();
                    let checkpoint_interval_iters = match t.number("checkpoint_interval")? {
                        None => defaults.checkpoint_interval_iters,
                        Some(n) if n.fract() == 0.0 && n >= 1.0 && n <= u32::MAX as f64 => n as u32,
                        Some(n) => {
                            return Err(t.bad(
                                "checkpoint_interval",
                                format!("{n} is not a positive integer (iterations)"),
                            ))
                        }
                    };
                    let restart_latency_s = match t.number("restart_latency_s")? {
                        None => defaults.restart_latency_s,
                        Some(s) if s >= 0.0 && s.is_finite() => s,
                        Some(s) => {
                            return Err(t.bad(
                                "restart_latency_s",
                                format!("{s} must be a finite non-negative duration"),
                            ))
                        }
                    };
                    let reshard_cost_s = match t.number("reshard_cost_s")? {
                        None => defaults.reshard_cost_s,
                        Some(s) if s >= 0.0 && s.is_finite() => s,
                        Some(s) => {
                            return Err(t.bad(
                                "reshard_cost_s",
                                format!("{s} must be a finite non-negative duration"),
                            ))
                        }
                    };
                    t.finish()?;
                    spec.failures.push(FailureSpec {
                        probability,
                        elastic,
                        recovery: RecoveryCosts {
                            checkpoint_interval_iters,
                            restart_latency_s,
                            reshard_cost_s,
                        },
                    });
                }
                _ => unreachable!("table names vetted at header parse"),
            }
        }
        Ok(spec)
    }

    /// Samples which scenarios fire in replica `replica` of a
    /// `world`-rank job under `seed`. Pure: the same arguments always
    /// produce the same realization, independent of call order or
    /// thread count.
    pub fn realize(&self, seed: u64, replica: u32, world: u32) -> Realization {
        let world = world.max(1);
        let mut stragglers: Vec<(u32, f64)> = Vec::new();
        for (i, s) in self.stragglers.iter().enumerate() {
            if uniform01(seed, TAG_STRAGGLER, replica as u64, i as u64, 0) >= s.probability {
                continue;
            }
            let count = s.ranks.min(world);
            for k in 0..count {
                // Distinct-rank draw with linear probing: a collision
                // walks forward deterministically.
                let h = mix(
                    mix(mix(mix(seed, TAG_STRAGGLER_RANK), replica as u64), i as u64),
                    k as u64,
                );
                let mut rank = (h % world as u64) as u32;
                while stragglers.iter().any(|&(r, _)| r == rank)
                    && stragglers.len() < world as usize
                {
                    rank = (rank + 1) % world;
                }
                match stragglers.iter_mut().find(|(r, _)| *r == rank) {
                    // World saturated: stack the slowdown instead.
                    Some((_, m)) => *m *= s.slowdown,
                    None => stragglers.push((rank, s.slowdown)),
                }
            }
        }
        stragglers.sort_by_key(|&(r, _)| r);

        let mut windows = Vec::new();
        for (i, d) in self.degradations.iter().enumerate() {
            if uniform01(seed, TAG_DEGRADATION, replica as u64, i as u64, 0) < d.probability {
                windows.push(*d);
            }
        }

        // At most one failure per replica: the first declared scenario
        // that fires wins. Multi-failure replicas would need a joint
        // recovery model; one failure per iteration-scale window is
        // the regime the checkpoint-restart arithmetic describes.
        let mut failure = None;
        for (i, f) in self.failures.iter().enumerate() {
            if uniform01(seed, TAG_FAILURE, replica as u64, i as u64, 0) < f.probability {
                let rank = (mix(mix(mix(seed, TAG_FAILURE_RANK), replica as u64), i as u64)
                    % world as u64) as u32;
                let frac = uniform01(seed, TAG_FAILURE_FRAC, replica as u64, i as u64, 0);
                failure = Some(FailureRealization {
                    rank,
                    frac,
                    elastic: f.elastic,
                    recovery: f.recovery,
                });
                break;
            }
        }

        Realization {
            replica,
            stragglers,
            windows,
            failure,
        }
    }
}

/// The sampled outcome of one replica: which scenarios fired and with
/// what draws. Everything needed both to compile a [`RunScenario`]
/// for the engine and to explain the replica to a human
/// (`lumos faults explain`).
#[derive(Debug, Clone, PartialEq)]
pub struct Realization {
    /// The replica index this realization belongs to.
    pub replica: u32,
    /// `(rank, multiplier)` pairs of afflicted ranks, sorted by rank.
    pub stragglers: Vec<(u32, f64)>,
    /// Degradation windows that fired (fractions of the clean
    /// makespan; resolved to absolute times by [`Realization::compile`]).
    pub windows: Vec<DegradationSpec>,
    /// The failure that fired, if any.
    pub failure: Option<FailureRealization>,
}

/// A sampled rank failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureRealization {
    /// The rank that dies (display only — the cost model charges the
    /// whole world).
    pub rank: u32,
    /// Failure point within the checkpoint interval, in `[0, 1)`:
    /// the fraction of work since the last checkpoint that is lost.
    pub frac: f64,
    /// Recover by elastic re-sharding instead of full restore.
    pub elastic: bool,
    /// The recovery cost parameters of the scenario that fired.
    pub recovery: RecoveryCosts,
}

impl Realization {
    /// `true` when nothing fired: the engine run is identical to the
    /// clean one and callers can reuse the clean makespan.
    pub fn is_clean(&self) -> bool {
        self.stragglers.is_empty() && self.windows.is_empty() && self.failure.is_none()
    }

    /// Resolves fractional degradation windows against the clean
    /// makespan and spreads straggler multipliers into a dense
    /// per-rank table for the engine's hot path.
    pub fn compile(&self, world: u32, clean_makespan: Dur) -> RunScenario {
        let mut rank_mult = vec![1.0f64; world.max(1) as usize];
        for &(rank, m) in &self.stragglers {
            if let Some(slot) = rank_mult.get_mut(rank as usize) {
                *slot *= m;
            }
        }
        let span = clean_makespan.as_ns() as f64;
        let windows: Vec<CompiledWindow> = self
            .windows
            .iter()
            .map(|w| CompiledWindow {
                scope: w.scope,
                start: Ts((w.start_frac * span) as u64),
                end: Ts((w.end_frac * span) as u64),
                scale: 1.0 / w.bandwidth_factor,
            })
            .collect();
        let identity = rank_mult.iter().all(|&m| m == 1.0) && windows.is_empty();
        RunScenario {
            rank_mult,
            windows,
            identity,
        }
    }

    /// The replica's effective per-iteration seconds, folding the
    /// failure arithmetic over the engine-simulated `faulted_s` (this
    /// replica's stragglers/degradations included).
    /// `survivor_s` is the simulated per-iteration seconds of the
    /// elastic survivor configuration, already rescaled to conserve
    /// global batch; `None` when no survivor exists (dp = 1, or the
    /// survivor failed to lower), which downgrades elastic recovery
    /// to checkpoint restart.
    pub fn effective_iteration_s(&self, faulted_s: f64, survivor_s: Option<f64>) -> f64 {
        match &self.failure {
            None => faulted_s,
            Some(f) => match (f.elastic, survivor_s) {
                (true, Some(surv)) => f.recovery.elastic_iteration_s(faulted_s, surv, f.frac),
                _ => faulted_s + f.recovery.checkpoint_restart_penalty_s(faulted_s, f.frac),
            },
        }
    }

    /// `true` when the replica needs the elastic survivor
    /// configuration simulated.
    pub fn wants_survivor(&self) -> bool {
        self.failure.as_ref().is_some_and(|f| f.elastic)
    }
}

/// One resolved degradation window, in absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledWindow {
    scope: Option<ScopeClass>,
    start: Ts,
    end: Ts,
    scale: f64,
}

/// The compiled per-run form of a [`Realization`]: what the engine
/// consults on its hot path. Dense per-rank multipliers (one index,
/// no hash) and a short window list checked only when a collective
/// resolves.
#[derive(Debug, Clone, PartialEq)]
pub struct RunScenario {
    /// Per-rank duration multiplier on compute kernels and host ops.
    rank_mult: Vec<f64>,
    /// Degradation windows in absolute time.
    windows: Vec<CompiledWindow>,
    /// `true` when every multiplier is 1 and no window exists.
    identity: bool,
}

impl RunScenario {
    /// A scenario that changes nothing (used by tests and as the
    /// explicit no-fault baseline).
    pub fn identity(world: u32) -> Self {
        RunScenario {
            rank_mult: vec![1.0; world.max(1) as usize],
            windows: Vec::new(),
            identity: true,
        }
    }

    /// `true` when the scenario cannot change any duration.
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Straggler multiplier of `rank` (1.0 when unafflicted).
    pub(crate) fn rank_multiplier(&self, rank: u32) -> f64 {
        self.rank_mult.get(rank as usize).copied().unwrap_or(1.0)
    }

    /// Duration multiplier for a collective on `group` starting at
    /// `start`: the product of every matching window's slowdown (a
    /// group hit by two overlapping windows is degraded by both).
    pub(crate) fn comm_multiplier(&self, group: u64, start: Ts) -> f64 {
        let mut m = 1.0;
        if self.windows.is_empty() {
            return m;
        }
        let class = ScopeClass::of_group(group);
        for w in &self.windows {
            let in_scope = match w.scope {
                None => true,
                Some(s) => class == Some(s),
            };
            if in_scope && start >= w.start && start < w.end {
                m *= w.scale;
            }
        }
        m
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one `key = value` line of the TOML subset.
fn parse_kv(line: &str, line_no: usize) -> Result<(String, TomlValue), FaultSpecError> {
    let syntax = |detail: String| FaultSpecError::Syntax {
        line: line_no,
        detail,
    };
    let (key, value) = line
        .split_once('=')
        .ok_or_else(|| syntax(format!("`{line}` is not a `key = value` pair")))?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(syntax(format!("`{key}` is not a bare TOML key")));
    }
    let value = value.trim();
    let parsed = if value == "true" {
        TomlValue::Bool(true)
    } else if value == "false" {
        TomlValue::Bool(false)
    } else if let Some(s) = value.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        TomlValue::Str(s.to_string())
    } else {
        TomlValue::Number(value.parse::<f64>().map_err(|_| {
            syntax(format!(
                "cannot parse `{value}` as a number, boolean, or \"string\""
            ))
        })?)
    };
    Ok((key.to_string(), parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
        version = 1

        # a slow node
        [[straggler]]
        probability = 0.5
        ranks = 2
        slowdown = 1.4

        [[degradation]]
        probability = 0.75
        scope = "dp"
        bandwidth_factor = 0.25
        start_frac = 0.1
        end_frac = 0.9

        [[failure]]
        probability = 0.2
        checkpoint_interval = 50
        restart_latency_s = 60.0
        elastic = true
        reshard_cost_s = 30.0
    "#;

    #[test]
    fn parses_full_spec() {
        let spec = FaultSpec::parse(FULL).unwrap();
        assert_eq!(spec.stragglers.len(), 1);
        assert_eq!(spec.degradations.len(), 1);
        assert_eq!(spec.failures.len(), 1);
        assert!(!spec.is_empty());
        let s = spec.stragglers[0];
        assert_eq!((s.probability, s.ranks, s.slowdown), (0.5, 2, 1.4));
        let d = spec.degradations[0];
        assert_eq!(d.scope, Some(ScopeClass::Dp));
        assert_eq!(d.bandwidth_factor, 0.25);
        let f = spec.failures[0];
        assert!(f.elastic);
        assert_eq!(f.recovery.checkpoint_interval_iters, 50);
        assert_eq!(f.recovery.reshard_cost_s, 30.0);
    }

    #[test]
    fn empty_and_version_only_specs_are_empty() {
        assert!(FaultSpec::parse("").unwrap().is_empty());
        assert!(FaultSpec::parse("version = 1\n").unwrap().is_empty());
        assert!(FaultSpec::parse("# nothing\n\n").unwrap().is_empty());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let err = FaultSpec::parse("version = 2").unwrap_err();
        assert_eq!(err, FaultSpecError::UnsupportedVersion { version: 2 });
        assert!(err.to_string().contains("`version`"));
    }

    // One test per malformed field, each asserting the error names
    // the offending key.
    #[test]
    fn malformed_probability_names_key() {
        let err = FaultSpec::parse("[[straggler]]\nprobability = 1.5\nslowdown = 2.0").unwrap_err();
        assert!(err.to_string().contains("`probability`"), "{err}");
        assert!(err.to_string().contains("[[straggler]] #1"), "{err}");
    }

    #[test]
    fn malformed_ranks_names_key() {
        let err = FaultSpec::parse("[[straggler]]\nranks = 0\nslowdown = 2.0").unwrap_err();
        assert!(err.to_string().contains("`ranks`"), "{err}");
    }

    #[test]
    fn malformed_slowdown_names_key() {
        let err = FaultSpec::parse("[[straggler]]\nslowdown = 0.5").unwrap_err();
        assert!(err.to_string().contains("`slowdown`"), "{err}");
        let missing = FaultSpec::parse("[[straggler]]\nranks = 1").unwrap_err();
        assert!(missing.to_string().contains("`slowdown`"), "{missing}");
        assert!(missing.to_string().contains("missing"), "{missing}");
    }

    #[test]
    fn malformed_scope_names_key() {
        let err = FaultSpec::parse("[[degradation]]\nscope = \"node\"\nbandwidth_factor = 0.5")
            .unwrap_err();
        assert!(err.to_string().contains("`scope`"), "{err}");
        assert!(err.to_string().contains("node"), "{err}");
    }

    #[test]
    fn malformed_bandwidth_factor_names_key() {
        let err = FaultSpec::parse("[[degradation]]\nbandwidth_factor = 0.0").unwrap_err();
        assert!(err.to_string().contains("`bandwidth_factor`"), "{err}");
        let missing = FaultSpec::parse("[[degradation]]\nscope = \"tp\"").unwrap_err();
        assert!(
            missing.to_string().contains("`bandwidth_factor`"),
            "{missing}"
        );
    }

    #[test]
    fn malformed_window_fracs_name_keys() {
        let err = FaultSpec::parse("[[degradation]]\nbandwidth_factor = 0.5\nstart_frac = -0.1")
            .unwrap_err();
        assert!(err.to_string().contains("`start_frac`"), "{err}");
        let err = FaultSpec::parse(
            "[[degradation]]\nbandwidth_factor = 0.5\nstart_frac = 0.5\nend_frac = 0.25",
        )
        .unwrap_err();
        assert!(err.to_string().contains("`end_frac`"), "{err}");
    }

    #[test]
    fn malformed_checkpoint_interval_names_key() {
        let err = FaultSpec::parse("[[failure]]\ncheckpoint_interval = 2.5").unwrap_err();
        assert!(err.to_string().contains("`checkpoint_interval`"), "{err}");
    }

    #[test]
    fn malformed_restart_latency_names_key() {
        let err = FaultSpec::parse("[[failure]]\nrestart_latency_s = -1").unwrap_err();
        assert!(err.to_string().contains("`restart_latency_s`"), "{err}");
    }

    #[test]
    fn malformed_reshard_cost_names_key() {
        let err = FaultSpec::parse("[[failure]]\nreshard_cost_s = -3").unwrap_err();
        assert!(err.to_string().contains("`reshard_cost_s`"), "{err}");
    }

    #[test]
    fn malformed_elastic_names_key() {
        let err = FaultSpec::parse("[[failure]]\nelastic = 1").unwrap_err();
        assert!(err.to_string().contains("`elastic`"), "{err}");
        assert!(err.to_string().contains("boolean"), "{err}");
    }

    #[test]
    fn unknown_key_and_table_are_named() {
        let err = FaultSpec::parse("[[straggler]]\nslowdown = 2.0\nspeed = 3").unwrap_err();
        assert!(err.to_string().contains("`speed`"), "{err}");
        let err = FaultSpec::parse("[[blackout]]\n").unwrap_err();
        assert!(err.to_string().contains("blackout"), "{err}");
        let err = FaultSpec::parse("faults = 3\n").unwrap_err();
        assert!(err.to_string().contains("`faults`"), "{err}");
    }

    #[test]
    fn syntax_errors_name_line() {
        let err = FaultSpec::parse("[[straggler]]\nslowdown : 2.0").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = FaultSpec::parse("[straggler]").unwrap_err();
        assert!(err.to_string().contains("[[name]]"), "{err}");
    }

    #[test]
    fn realization_is_deterministic_and_seed_sensitive() {
        let spec = FaultSpec::parse(FULL).unwrap();
        let a = spec.realize(2025, 3, 8);
        let b = spec.realize(2025, 3, 8);
        assert_eq!(a, b);
        // Different replicas (overwhelmingly) differ somewhere over a
        // span of draws.
        let differs = (0..64).any(|r| spec.realize(2025, r, 8) != spec.realize(7, r, 8));
        assert!(differs, "seed never changed any replica");
    }

    #[test]
    fn probabilities_gate_realization_rates() {
        let spec = FaultSpec::parse(FULL).unwrap();
        let n = 2000;
        let mut straggled = 0;
        let mut degraded = 0;
        let mut failed = 0;
        for r in 0..n {
            let real = spec.realize(42, r, 8);
            if !real.stragglers.is_empty() {
                straggled += 1;
            }
            if !real.windows.is_empty() {
                degraded += 1;
            }
            if real.failure.is_some() {
                failed += 1;
            }
        }
        let rate = |c: i32| c as f64 / n as f64;
        assert!((rate(straggled) - 0.5).abs() < 0.05, "{straggled}");
        assert!((rate(degraded) - 0.75).abs() < 0.05, "{degraded}");
        assert!((rate(failed) - 0.2).abs() < 0.05, "{failed}");
    }

    #[test]
    fn straggler_ranks_are_distinct_and_in_world() {
        let spec = FaultSpec::parse(
            "[[straggler]]\nranks = 4\nslowdown = 2.0\n[[straggler]]\nranks = 3\nslowdown = 1.5",
        )
        .unwrap();
        for r in 0..200 {
            let real = spec.realize(9, r, 8);
            let mut ranks: Vec<u32> = real.stragglers.iter().map(|&(r, _)| r).collect();
            assert!(ranks.iter().all(|&r| r < 8));
            let before = ranks.len();
            ranks.dedup();
            assert_eq!(ranks.len(), before, "duplicate straggler rank");
        }
        // A 1-rank world stacks instead of probing forever.
        let real = spec.realize(9, 0, 1);
        assert!(real.stragglers.len() <= 1);
    }

    #[test]
    fn compile_resolves_windows_and_multipliers() {
        let spec = FaultSpec::parse(
            "[[straggler]]\nranks = 1\nslowdown = 3.0\n\
             [[degradation]]\nscope = \"dp\"\nbandwidth_factor = 0.5\nstart_frac = 0.25\nend_frac = 0.75",
        )
        .unwrap();
        let real = spec.realize(1, 0, 4);
        assert_eq!(real.stragglers.len(), 1);
        assert_eq!(real.windows.len(), 1);
        let sc = real.compile(4, Dur(1000));
        assert!(!sc.is_identity());
        let straggler = real.stragglers[0].0;
        assert_eq!(sc.rank_multiplier(straggler), 3.0);
        assert_eq!(sc.rank_multiplier((straggler + 1) % 4), 1.0);
        // Window hits dp groups inside [250, 750) ns only.
        let dp_group = {
            use lumos_model::{CommScope, GroupRegistry, Parallelism};
            let p = Parallelism::new(1, 1, 4).unwrap();
            GroupRegistry::new(p).group_id(CommScope::Dp, p.coords(0))
        };
        assert_eq!(sc.comm_multiplier(dp_group, Ts(500)), 2.0);
        assert_eq!(sc.comm_multiplier(dp_group, Ts(100)), 1.0);
        assert_eq!(sc.comm_multiplier(dp_group, Ts(750)), 1.0);
        // Other scopes are untouched.
        let tp_group = {
            use lumos_model::{CommScope, GroupRegistry, Parallelism};
            let p = Parallelism::new(2, 1, 1).unwrap();
            GroupRegistry::new(p).group_id(CommScope::Tp, p.coords(0))
        };
        assert_eq!(sc.comm_multiplier(tp_group, Ts(500)), 1.0);
    }

    #[test]
    fn effective_iteration_folds_failure_arithmetic() {
        let recovery = RecoveryCosts {
            checkpoint_interval_iters: 10,
            restart_latency_s: 20.0,
            reshard_cost_s: 10.0,
        };
        let clean = Realization {
            replica: 0,
            stragglers: Vec::new(),
            windows: Vec::new(),
            failure: None,
        };
        assert_eq!(clean.effective_iteration_s(2.0, None), 2.0);
        assert!(clean.is_clean());
        let restart = Realization {
            failure: Some(FailureRealization {
                rank: 0,
                frac: 0.5,
                elastic: false,
                recovery,
            }),
            ..clean.clone()
        };
        // 2.0 + (2.0·0.5 + 20/10) = 5.0
        assert!((restart.effective_iteration_s(2.0, None) - 5.0).abs() < 1e-12);
        let elastic = Realization {
            failure: Some(FailureRealization {
                rank: 0,
                frac: 0.5,
                elastic: true,
                recovery,
            }),
            ..clean.clone()
        };
        assert!(elastic.wants_survivor());
        // 0.5·2 + 0.5·3 + 30/10 = 5.5
        assert!((elastic.effective_iteration_s(2.0, Some(3.0)) - 5.5).abs() < 1e-12);
        // No survivor available: degrade to checkpoint restart.
        assert!((elastic.effective_iteration_s(2.0, None) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identity_scenario_changes_nothing() {
        let sc = RunScenario::identity(4);
        assert!(sc.is_identity());
        assert_eq!(sc.rank_multiplier(2), 1.0);
        assert_eq!(sc.comm_multiplier(123, Ts(0)), 1.0);
        let empty = FaultSpec::default().realize(1, 0, 4);
        assert!(empty.is_clean());
        assert!(empty.compile(4, Dur(1000)).is_identity());
    }
}
