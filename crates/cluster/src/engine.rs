//! The ground-truth execution engine: a multi-rank discrete-event
//! simulator with CUDA semantics.
//!
//! Each rank contributes host threads (executing
//! [`crate::program::HostOp`] streams)
//! and CUDA streams (FIFO queues of kernels, event records, and event
//! waits). Cross-rank coupling happens exclusively through collective
//! rendezvous: a collective kernel instance starts when *every*
//! member's stream has reached it, all members start simultaneously,
//! and all members finish together after the cost-model duration.
//!
//! The engine is a dependency-resolution simulator (not a time-ordered
//! event queue): since all durations are known once their inputs
//! resolve, entities are advanced from a wake queue until quiescence.
//! Execution is deterministic — wake order never affects computed
//! timestamps, only the order in which they are discovered.
//!
//! # Execution modes
//!
//! The engine is generic over an event sink (see [`crate::sink`]).
//! [`execute`] / [`PreparedJob::execute`] materialize full per-rank
//! traces; [`execute_metrics`] / [`PreparedJob::execute_metrics`] run
//! the identical simulation while accumulating only aggregates —
//! the hot loop then performs no allocation per event. All runtime
//! state (threads, streams, CUDA events, tokens, collective
//! instances) is indexed by dense ids resolved once in
//! [`PreparedJob::new`]; no hash map is touched per step.

use crate::exec::{ExecOp, PreparedJob};
use crate::jitter::{JitterModel, RunJitter};
use crate::lower::LoweredJob;
use crate::program::NameId;
use crate::scenario::RunScenario;
use crate::sink::{EngineMetrics, EventSink, FullTraceSink, MetricsSink};
use lumos_cost::{CostModel, HostOverheads};
use lumos_trace::{ClusterTrace, CudaRuntimeKind, Dur, KernelClass, Ts};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Detection latency between a GPU completion and the host observing
/// it through a blocking synchronize.
const SYNC_POLL_LATENCY: Dur = Dur(500);

/// Errors from engine execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The job deadlocked: no entity could make progress but work
    /// remains. Indicates an ill-formed program (e.g. mismatched
    /// collective sequences).
    Deadlock {
        /// Human-readable stuck-entity report.
        detail: String,
    },
    /// A collective launch referenced a communicator group absent from
    /// [`LoweredJob::groups`].
    UnknownGroup {
        /// The unregistered communicator id.
        group: u64,
    },
    /// An instruction stream violated an engine invariant (e.g. an
    /// `AnnotationEnd` without a matching begin, or a sync completion
    /// with no sync in progress). Indicates a malformed program
    /// rather than a timing question.
    MalformedProgram {
        /// What went wrong, and where.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Deadlock { detail } => write!(f, "execution deadlocked: {detail}"),
            EngineError::UnknownGroup { group } => {
                write!(
                    f,
                    "collective references unknown communicator group {group}"
                )
            }
            EngineError::MalformedProgram { detail } => {
                write!(f, "malformed program: {detail}")
            }
        }
    }
}

impl Error for EngineError {}

/// The result of executing a lowered job with full trace collection.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// Per-rank Kineto-style traces (sorted by timestamp).
    pub trace: ClusterTrace,
    /// End-to-end iteration time.
    pub makespan: Dur,
}

/// Executes `job` with the given cost model, host overheads, and
/// jitter for iteration index `iteration`, materializing a full
/// trace. Prepares the job first; executing many iterations of one
/// job is cheaper through [`PreparedJob`].
///
/// # Errors
///
/// Returns [`EngineError::Deadlock`] when the program graph cannot be
/// completed, and [`EngineError::UnknownGroup`] /
/// [`EngineError::MalformedProgram`] when the job itself is
/// ill-formed (a hand-built [`LoweredJob`] rather than one from
/// [`crate::lower`] — duplicate ranks, dangling name ids,
/// unregistered communicators). None of these panic: a bad job
/// yields a typed error.
pub fn execute<C: CostModel>(
    job: &LoweredJob,
    cost: &C,
    overheads: &HostOverheads,
    jitter: &JitterModel,
    iteration: u64,
) -> Result<EngineOutput, EngineError> {
    PreparedJob::new(job)?.execute(cost, overheads, jitter, iteration)
}

/// Executes `job` in metrics-only mode: the identical simulation,
/// with no [`lumos_trace::TraceEvent`] constructed — only the
/// aggregates in [`EngineMetrics`].
///
/// # Errors
///
/// Same failure modes as [`execute`].
pub fn execute_metrics<C: CostModel>(
    job: &LoweredJob,
    cost: &C,
    overheads: &HostOverheads,
    jitter: &JitterModel,
    iteration: u64,
) -> Result<EngineMetrics, EngineError> {
    PreparedJob::new(job)?.execute_metrics(cost, overheads, jitter, iteration)
}

impl<'a> PreparedJob<'a> {
    /// Executes one iteration with full trace collection.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] /
    /// [`EngineError::MalformedProgram`] for runtime violations
    /// (structural problems were already rejected by
    /// [`PreparedJob::new`]).
    pub fn execute<C: CostModel>(
        &self,
        cost: &C,
        overheads: &HostOverheads,
        jitter: &JitterModel,
        iteration: u64,
    ) -> Result<EngineOutput, EngineError> {
        let sink = Engine::new(
            self,
            cost,
            overheads,
            jitter,
            iteration,
            None,
            FullTraceSink::new(self),
        )
        .run()?;
        let (trace, makespan) = sink.finish(self.job.config.label());
        Ok(EngineOutput { trace, makespan })
    }

    /// Executes one iteration in metrics-only (allocation-free) mode.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PreparedJob::execute`].
    pub fn execute_metrics<C: CostModel>(
        &self,
        cost: &C,
        overheads: &HostOverheads,
        jitter: &JitterModel,
        iteration: u64,
    ) -> Result<EngineMetrics, EngineError> {
        let sink = Engine::new(
            self,
            cost,
            overheads,
            jitter,
            iteration,
            None,
            MetricsSink::new(self),
        )
        .run()?;
        Ok(sink.finish(self))
    }

    /// Executes one iteration in metrics-only mode under an injected
    /// fault scenario (see [`crate::scenario`]): straggler ranks run
    /// compute kernels and host ops slower by their per-rank
    /// multiplier, and collectives starting inside a degradation
    /// window take longer by the window's bandwidth slowdown. Jitter
    /// (if any) composes multiplicatively with the scenario.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`PreparedJob::execute_metrics`].
    pub fn execute_metrics_faulted<C: CostModel>(
        &self,
        cost: &C,
        overheads: &HostOverheads,
        jitter: &JitterModel,
        iteration: u64,
        scenario: &RunScenario,
    ) -> Result<EngineMetrics, EngineError> {
        let sc = if scenario.is_identity() {
            None
        } else {
            Some(scenario)
        };
        let sink = Engine::new(
            self,
            cost,
            overheads,
            jitter,
            iteration,
            sc,
            MetricsSink::new(self),
        )
        .run()?;
        Ok(sink.finish(self))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wake {
    Thread(usize),
    Stream(usize),
}

#[derive(Debug)]
enum Blocked {
    Ready,
    /// Waiting for a stream to drain its first `upto` entries.
    StreamDrain,
    /// Waiting for `pending` streams to drain (device sync).
    DeviceDrain {
        pending: usize,
    },
    Token,
    Done,
}

struct ThreadState {
    pc: usize,
    clock: Ts,
    blocked: Blocked,
    /// Start timestamp of an in-progress blocking sync call.
    sync_started: Option<(Ts, CudaRuntimeKind)>,
    /// Latest GPU completion observed by the pending wake(s).
    wake_time: Ts,
    ann_stack: Vec<(NameId, Ts)>,
    host_site: u64,
}

/// A stream FIFO entry. `Copy`: operands are dense ids, so the
/// dispatch loop reads entries by value.
#[derive(Clone, Copy)]
enum Entry {
    Kernel {
        name: NameId,
        class: KernelClass,
        /// Base (unjittered) duration, resolved from the per-run
        /// kernel-cost table at launch.
        base: Dur,
        earliest: Ts,
        corr: u64,
    },
    Collective {
        name: NameId,
        class: KernelClass,
        coll: u32,
        earliest: Ts,
        corr: u64,
        arrived: bool,
    },
    Record {
        event: u32,
    },
    WaitEv {
        event: u32,
    },
}

struct StreamState {
    entries: Vec<Entry>,
    head: usize,
    clock: Ts,
    /// Threads waiting for this stream to drain `upto` entries.
    drain_waiters: Vec<(usize, usize)>,
    last_enqueue_host: Ts,
}

#[derive(Default)]
struct EventState {
    completed: Option<Ts>,
    waiting_streams: Vec<usize>,
}

#[derive(Default)]
struct TokenState {
    time: Option<Ts>,
    waiters: Vec<usize>,
}

struct CollState {
    arrivals: Vec<(usize, Ts)>,
    resolved: Option<(Ts, Dur)>,
}

struct Engine<'p, C: CostModel, S: EventSink> {
    prep: &'p PreparedJob<'p>,
    cost: &'p C,
    oh: &'p HostOverheads,
    /// Compiled for this run's iteration: per-component distribution
    /// parameters and the correlated drift resolved once.
    jitter: RunJitter,
    threads: Vec<ThreadState>,
    streams: Vec<StreamState>,
    events: Vec<EventState>,
    tokens: Vec<TokenState>,
    collectives: Vec<CollState>,
    queue: VecDeque<Wake>,
    queued_threads: Vec<bool>,
    queued_streams: Vec<bool>,
    next_corr: u64,
    /// Base duration per distinct kernel class
    /// ([`PreparedJob::kernel_classes`]), priced once per run.
    kernel_costs: Vec<Dur>,
    /// First fatal error observed while draining the wake queue. The
    /// run loop stops at the next wake and reports it, so malformed
    /// programs surface as typed errors instead of panics.
    fatal: Option<EngineError>,
    /// Injected fault scenario, `None` on the clean path (identity
    /// scenarios are dropped before construction so the hot loop
    /// branches on one `Option`).
    scenario: Option<&'p RunScenario>,
    sink: S,
}

impl<'p, C: CostModel, S: EventSink> Engine<'p, C, S> {
    fn new(
        prep: &'p PreparedJob<'p>,
        cost: &'p C,
        oh: &'p HostOverheads,
        jitter: &'p JitterModel,
        iteration: u64,
        scenario: Option<&'p RunScenario>,
        sink: S,
    ) -> Self {
        let threads: Vec<ThreadState> = prep
            .threads
            .iter()
            .map(|_| ThreadState {
                pc: 0,
                clock: Ts::ZERO,
                blocked: Blocked::Ready,
                sync_started: None,
                wake_time: Ts::ZERO,
                ann_stack: Vec::new(),
                host_site: 0,
            })
            .collect();
        let streams: Vec<StreamState> = prep
            .streams
            .iter()
            .map(|s| StreamState {
                entries: Vec::with_capacity(s.entries_hint),
                head: 0,
                clock: Ts::ZERO,
                drain_waiters: Vec::new(),
                last_enqueue_host: Ts::ZERO,
            })
            .collect();
        let queued_threads = vec![false; threads.len()];
        let queued_streams = vec![false; streams.len()];
        Engine {
            prep,
            cost,
            oh,
            jitter: jitter.compile(iteration),
            threads,
            streams,
            events: (0..prep.n_events).map(|_| EventState::default()).collect(),
            tokens: (0..prep.n_tokens).map(|_| TokenState::default()).collect(),
            collectives: prep
                .collectives
                .iter()
                .map(|c| CollState {
                    arrivals: Vec::with_capacity(c.expected),
                    resolved: None,
                })
                .collect(),
            queue: VecDeque::new(),
            queued_threads,
            queued_streams,
            next_corr: 1,
            kernel_costs: prep
                .kernel_classes
                .iter()
                .map(|c| cost.compute_cost(c))
                .collect(),
            fatal: None,
            scenario,
            sink,
        }
    }

    /// Records a fatal error (first one wins) and lets the run loop
    /// stop at its next iteration.
    fn fail(&mut self, e: EngineError) {
        if self.fatal.is_none() {
            self.fatal = Some(e);
        }
    }

    fn wake_thread(&mut self, i: usize) {
        if !self.queued_threads[i] {
            self.queued_threads[i] = true;
            self.queue.push_back(Wake::Thread(i));
        }
    }

    fn wake_stream(&mut self, i: usize) {
        if !self.queued_streams[i] {
            self.queued_streams[i] = true;
            self.queue.push_back(Wake::Stream(i));
        }
    }

    fn run(mut self) -> Result<S, EngineError> {
        for i in 0..self.threads.len() {
            self.wake_thread(i);
        }
        while let Some(w) = self.queue.pop_front() {
            if self.fatal.is_some() {
                break;
            }
            match w {
                Wake::Thread(i) => {
                    self.queued_threads[i] = false;
                    self.run_thread(i);
                }
                Wake::Stream(i) => {
                    self.queued_streams[i] = false;
                    self.run_stream(i);
                }
            }
        }
        if let Some(e) = self.fatal.take() {
            return Err(e);
        }
        self.check_quiescent()?;
        Ok(self.sink)
    }

    fn check_quiescent(&self) -> Result<(), EngineError> {
        let mut stuck = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if !matches!(t.blocked, Blocked::Done) {
                let meta = &self.prep.threads[i];
                stuck.push(format!(
                    "thread #{i} (rank {} {:?}) at pc {}/{} blocked {}",
                    meta.rank,
                    meta.tid,
                    t.pc,
                    meta.ops.len(),
                    self.describe_thread_block(i)
                ));
            }
        }
        for (si, s) in self.streams.iter().enumerate() {
            if s.head < s.entries.len() {
                let meta = self.prep.streams[si];
                stuck.push(format!(
                    "stream rank {} {} drained {}/{}, head: {}",
                    meta.rank,
                    meta.sid,
                    s.head,
                    s.entries.len(),
                    self.describe_stream_head(si)
                ));
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            stuck.truncate(16);
            Err(EngineError::Deadlock {
                detail: stuck.join("; "),
            })
        }
    }

    /// Names the resource a non-done thread is blocked on, for the
    /// deadlock report.
    fn describe_thread_block(&self, i: usize) -> String {
        match self.threads[i].blocked {
            Blocked::StreamDrain | Blocked::DeviceDrain { .. } => {
                let targets: Vec<String> = self
                    .streams
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.drain_waiters.iter().any(|&(t, _)| t == i))
                    .map(|(si, _)| self.prep.streams[si].sid.to_string())
                    .collect();
                format!("draining stream(s) {}", targets.join(", "))
            }
            Blocked::Token => {
                let t = &self.threads[i];
                let token =
                    t.pc.checked_sub(1)
                        .and_then(|pc| match self.prep.threads[i].ops.get(pc) {
                            Some(ExecOp::WaitPeer { token }) => Some(*token),
                            _ => None,
                        });
                match token {
                    Some(tk) => format!("waiting for cross-thread token #{tk}"),
                    None => "waiting for a cross-thread token".to_string(),
                }
            }
            ref other => format!("{other:?}"),
        }
    }

    /// Names the entry a stuck stream is parked on: the collective
    /// rendezvous (with its group, seq, and missing member ranks) or
    /// the event it waits for.
    fn describe_stream_head(&self, si: usize) -> String {
        let s = &self.streams[si];
        match s.entries[s.head] {
            Entry::Collective { class, coll, .. } => {
                let info = self.prep.collectives[coll as usize];
                let arrivals = &self.collectives[coll as usize].arrivals;
                let arrived: std::collections::BTreeSet<u32> = arrivals
                    .iter()
                    .map(|&(o, _)| self.prep.streams[o].rank)
                    .collect();
                let missing: Vec<String> = info
                    .members
                    .iter()
                    .filter(|r| !arrived.contains(r))
                    .map(|r| r.to_string())
                    .collect();
                let kind = match class {
                    KernelClass::Collective(m) => format!("{:?}", m.kind),
                    _ => "collective".to_string(),
                };
                format!(
                    "collective {kind} group {} seq {} ({}/{} arrived; missing rank(s) {})",
                    info.group,
                    info.seq,
                    arrivals.len(),
                    info.expected,
                    missing.join(", ")
                )
            }
            Entry::WaitEv { event } => format!("waiting on event #{event}"),
            Entry::Record { .. } => "event record (runnable)".to_string(),
            Entry::Kernel { .. } => "kernel (runnable)".to_string(),
        }
    }

    fn host_dur(&mut self, thread: usize, rank: u32, base: Dur) -> Dur {
        let t = &mut self.threads[thread];
        t.host_site += 1;
        let base = match self.scenario {
            Some(sc) => base.scale(sc.rank_multiplier(rank)),
            None => base,
        };
        if self.jitter.is_identity() {
            return base;
        }
        base.scale(self.jitter.host_multiplier(rank, t.host_site))
    }

    fn run_thread(&mut self, i: usize) {
        let prep = self.prep;
        let meta = &prep.threads[i];
        let (prog, rank, tid) = (meta.prog, meta.rank, meta.tid);
        let ops = meta.ops.as_slice();

        // Resolve an in-progress block first.
        match self.threads[i].blocked {
            Blocked::Done => return,
            Blocked::Ready => {}
            Blocked::StreamDrain | Blocked::DeviceDrain { .. } => {
                // Woken by the last stream drain: finish the sync call.
                if matches!(self.threads[i].blocked, Blocked::DeviceDrain { pending } if pending > 0)
                {
                    return; // spurious wake; still waiting
                }
                let Some((start, kind)) = self.threads[i].sync_started.take() else {
                    self.fail(EngineError::MalformedProgram {
                        detail: format!("thread #{i} woke from a drain with no sync in progress"),
                    });
                    return;
                };
                let sync_dur = self.host_dur(i, rank, self.oh.sync_call);
                let t = &mut self.threads[i];
                let end = (start + sync_dur).max(t.wake_time + SYNC_POLL_LATENCY);
                t.clock = end;
                t.blocked = Blocked::Ready;
                self.sink.runtime(prog, tid, kind, 0, start, end - start);
            }
            Blocked::Token => {
                // Token time folded into clock by the waker.
                self.threads[i].blocked = Blocked::Ready;
            }
        }

        while self.threads[i].pc < ops.len() {
            let op = ops[self.threads[i].pc];
            match op {
                ExecOp::CpuOp { name } => {
                    let dur = self.host_dur(i, rank, self.oh.cpu_op);
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.clock += dur;
                    self.sink.cpu_op(prog, tid, name, clock, dur);
                }
                ExecOp::Launch {
                    name,
                    class,
                    stream,
                    ..
                }
                | ExecOp::LaunchColl {
                    name,
                    class,
                    stream,
                    ..
                } => {
                    let dur = self.host_dur(i, rank, self.oh.launch_call);
                    let corr = self.next_corr;
                    self.next_corr += 1;
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.clock += dur;
                    self.sink
                        .runtime(prog, tid, CudaRuntimeKind::LaunchKernel, corr, clock, dur);
                    let earliest = clock + dur + self.oh.launch_gap;
                    let entry = match op {
                        ExecOp::LaunchColl { coll, .. } => Entry::Collective {
                            name,
                            class,
                            coll,
                            earliest,
                            corr,
                            arrived: false,
                        },
                        ExecOp::Launch { cost, .. } => Entry::Kernel {
                            name,
                            class,
                            base: self.kernel_costs[cost as usize],
                            earliest,
                            corr,
                        },
                        _ => unreachable!("launch arms matched above"),
                    };
                    self.enqueue(stream as usize, entry, clock);
                }
                ExecOp::EventRecord {
                    event,
                    raw_event,
                    stream,
                    raw_stream,
                } => {
                    let dur = self.host_dur(i, rank, self.oh.event_call);
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.clock += dur;
                    self.sink.runtime(
                        prog,
                        tid,
                        CudaRuntimeKind::EventRecord {
                            event: raw_event as u64,
                            stream: raw_stream,
                        },
                        0,
                        clock,
                        dur,
                    );
                    self.enqueue(stream as usize, Entry::Record { event }, clock);
                }
                ExecOp::StreamWait {
                    event,
                    raw_event,
                    stream,
                    raw_stream,
                } => {
                    let dur = self.host_dur(i, rank, self.oh.event_call);
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.clock += dur;
                    self.sink.runtime(
                        prog,
                        tid,
                        CudaRuntimeKind::StreamWaitEvent {
                            stream: raw_stream,
                            event: raw_event as u64,
                        },
                        0,
                        clock,
                        dur,
                    );
                    self.enqueue(stream as usize, Entry::WaitEv { event }, clock);
                }
                ExecOp::StreamSync { stream, raw_stream } => {
                    let si = stream as usize;
                    let upto = self.streams[si].entries.len();
                    let kind = CudaRuntimeKind::StreamSynchronize { stream: raw_stream };
                    if self.begin_sync(i, prog, rank, kind, &[(si, upto)]) {
                        self.threads[i].pc += 1;
                        continue;
                    }
                    self.threads[i].pc += 1;
                    return;
                }
                ExecOp::DeviceSync => {
                    let targets: Vec<(usize, usize)> = prep.rank_streams[prog as usize]
                        .iter()
                        .map(|&si| (si as usize, self.streams[si as usize].entries.len()))
                        .collect();
                    if self.begin_sync(i, prog, rank, CudaRuntimeKind::DeviceSynchronize, &targets)
                    {
                        self.threads[i].pc += 1;
                        continue;
                    }
                    self.threads[i].pc += 1;
                    return;
                }
                ExecOp::SignalPeer { token } => {
                    let clock = self.threads[i].clock;
                    let state = &mut self.tokens[token as usize];
                    state.time = Some(clock);
                    let waiters = std::mem::take(&mut state.waiters);
                    for w in waiters {
                        self.threads[w].clock = self.threads[w].clock.max(clock);
                        self.wake_thread(w);
                    }
                }
                ExecOp::WaitPeer { token } => {
                    let state = &mut self.tokens[token as usize];
                    match state.time {
                        Some(ts) => {
                            let t = &mut self.threads[i];
                            t.clock = t.clock.max(ts);
                        }
                        None => {
                            state.waiters.push(i);
                            self.threads[i].blocked = Blocked::Token;
                            self.threads[i].pc += 1;
                            return;
                        }
                    }
                }
                ExecOp::AnnotationBegin { name } => {
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.ann_stack.push((name, clock));
                }
                ExecOp::AnnotationEnd => {
                    let t = &mut self.threads[i];
                    let Some((name, start)) = t.ann_stack.pop() else {
                        let pc = t.pc;
                        self.fail(EngineError::MalformedProgram {
                            detail: format!(
                                "rank {rank} thread #{i}: AnnotationEnd at pc {pc} \
                                 without a matching AnnotationBegin"
                            ),
                        });
                        return;
                    };
                    let clock = t.clock;
                    self.sink.annotation(prog, tid, name, start, clock - start);
                }
            }
            self.threads[i].pc += 1;
        }
        self.threads[i].blocked = Blocked::Done;
    }

    /// Starts a blocking sync over `targets = [(stream, upto)]`.
    /// Returns `true` if all targets are already drained (sync
    /// completes inline).
    fn begin_sync(
        &mut self,
        thread: usize,
        prog: u32,
        rank: u32,
        kind: CudaRuntimeKind,
        targets: &[(usize, usize)],
    ) -> bool {
        let start = self.threads[thread].clock;
        let mut pending = 0;
        let mut latest = Ts::ZERO;
        for &(si, upto) in targets {
            if self.streams[si].head >= upto {
                latest = latest.max(self.streams[si].clock);
            } else {
                self.streams[si].drain_waiters.push((thread, upto));
                pending += 1;
            }
        }
        if pending == 0 {
            let sync_dur = self.host_dur(thread, rank, self.oh.sync_call);
            let t = &mut self.threads[thread];
            let end = (start + sync_dur)
                .max(latest + SYNC_POLL_LATENCY)
                .max(start);
            let tid = self.prep.threads[thread].tid;
            t.clock = end;
            self.sink.runtime(prog, tid, kind, 0, start, end - start);
            true
        } else {
            let t = &mut self.threads[thread];
            t.sync_started = Some((start, kind));
            t.wake_time = latest;
            t.blocked = if targets.len() == 1 {
                Blocked::StreamDrain
            } else {
                Blocked::DeviceDrain { pending }
            };
            false
        }
    }

    fn enqueue(&mut self, si: usize, entry: Entry, host_time: Ts) {
        let s = &mut self.streams[si];
        debug_assert!(
            host_time >= s.last_enqueue_host,
            "stream enqueue order violated on rank {} {}",
            self.prep.streams[si].rank,
            self.prep.streams[si].sid
        );
        s.last_enqueue_host = host_time;
        s.entries.push(entry);
        self.wake_stream(si);
    }

    fn run_stream(&mut self, si: usize) {
        let prep = self.prep;
        loop {
            let s = &self.streams[si];
            if s.head >= s.entries.len() {
                return;
            }
            let head = s.head;
            match s.entries[head] {
                Entry::Kernel {
                    name,
                    class,
                    base,
                    earliest,
                    corr,
                } => {
                    let meta = prep.streams[si];
                    let base = match self.scenario {
                        Some(sc) => base.scale(sc.rank_multiplier(meta.rank)),
                        None => base,
                    };
                    let dur = if self.jitter.is_identity() {
                        base
                    } else {
                        base.scale(self.jitter.kernel_multiplier(meta.rank, corr))
                    };
                    let start = self.streams[si].clock.max(earliest);
                    self.sink.kernel(
                        meta.prog, si as u32, meta.sid, name, class, corr, start, dur,
                    );
                    self.streams[si].clock = start + dur;
                    self.advance_head(si);
                }
                Entry::Record { event } => {
                    let completed = self.streams[si].clock;
                    let state = &mut self.events[event as usize];
                    state.completed = Some(completed);
                    let waiters = std::mem::take(&mut state.waiting_streams);
                    for w in waiters {
                        self.wake_stream(w);
                    }
                    self.advance_head(si);
                }
                Entry::WaitEv { event } => {
                    let state = &mut self.events[event as usize];
                    match state.completed {
                        Some(ts) => {
                            let s = &mut self.streams[si];
                            s.clock = s.clock.max(ts);
                            self.advance_head(si);
                        }
                        None => {
                            if !state.waiting_streams.contains(&si) {
                                state.waiting_streams.push(si);
                            }
                            return;
                        }
                    }
                }
                Entry::Collective { .. } => {
                    if !self.process_collective(si, head) {
                        return;
                    }
                }
            }
        }
    }

    /// Processes a collective entry at a stream head. Returns `true`
    /// if the stream advanced.
    fn process_collective(&mut self, si: usize, head: usize) -> bool {
        let prep = self.prep;
        let Entry::Collective {
            name,
            class,
            coll,
            earliest,
            corr,
            arrived,
        } = self.streams[si].entries[head]
        else {
            unreachable!("process_collective sees collective entries")
        };
        let stream_clock = self.streams[si].clock;
        let ready = stream_clock.max(earliest);
        let newly_arrived = !arrived;
        if newly_arrived {
            if let Entry::Collective { arrived, .. } = &mut self.streams[si].entries[head] {
                *arrived = true;
            }
        }

        let info = prep.collectives[coll as usize];
        let inst = &mut self.collectives[coll as usize];
        if newly_arrived {
            inst.arrivals.push((si, ready));
        }

        if inst.resolved.is_none() && inst.arrivals.len() == info.expected {
            let start = inst
                .arrivals
                .iter()
                .map(|&(_, t)| t)
                .fold(Ts::ZERO, Ts::max);
            let KernelClass::Collective(meta) = class else {
                unreachable!("collective entries carry collective classes")
            };
            let base = self
                .cost
                .collective_cost(meta.kind, meta.bytes, info.members);
            // Degradation windows key off the rendezvous start time:
            // a collective beginning inside a window pays the
            // window's full slowdown.
            let base = match self.scenario {
                Some(sc) => base.scale(sc.comm_multiplier(info.group, start)),
                None => base,
            };
            let dur = if self.jitter.is_identity() {
                base
            } else {
                base.scale(self.jitter.comm_multiplier(info.group, info.seq as u64))
            };
            inst.resolved = Some((start, dur));
            // Wake the other member streams so they emit and advance
            // (index loop: no temporary allocation on the hot path).
            for k in 0..self.collectives[coll as usize].arrivals.len() {
                let o = self.collectives[coll as usize].arrivals[k].0;
                if o != si {
                    self.wake_stream(o);
                }
            }
        }

        match self.collectives[coll as usize].resolved {
            Some((start, dur)) => {
                let meta = prep.streams[si];
                self.sink.kernel(
                    meta.prog, si as u32, meta.sid, name, class, corr, start, dur,
                );
                // A member that arrives after the instance resolved
                // (possible only in malformed hand-built jobs that
                // over-issue an instance) exposes no wait; clamp
                // instead of underflowing Ts subtraction.
                let wait = if start >= ready {
                    start - ready
                } else {
                    Dur::ZERO
                };
                self.sink.collective_wait(meta.prog, wait);
                self.streams[si].clock = start + dur;
                self.advance_head(si);
                true
            }
            None => false,
        }
    }

    fn advance_head(&mut self, si: usize) {
        self.streams[si].head += 1;
        let head = self.streams[si].head;
        let clock = self.streams[si].clock;
        // Release drain waiters whose target has been reached.
        let mut released = Vec::new();
        self.streams[si].drain_waiters.retain(|&(thread, upto)| {
            if head >= upto {
                released.push(thread);
                false
            } else {
                true
            }
        });
        for thread in released {
            let t = &mut self.threads[thread];
            t.wake_time = t.wake_time.max(clock);
            match &mut t.blocked {
                Blocked::StreamDrain => self.wake_thread(thread),
                Blocked::DeviceDrain { pending } => {
                    *pending -= 1;
                    if *pending == 0 {
                        self.wake_thread(thread);
                    }
                }
                other => {
                    let detail =
                        format!("drain waiter thread #{thread} in unexpected state {other:?}");
                    self.fail(EngineError::MalformedProgram { detail });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, SimConfig};
    use crate::program::{streams, HostOp, KernelSpec, Program};
    use lumos_cost::AnalyticalCostModel;
    use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
    use lumos_trace::{EventKind, StreamId};
    use std::collections::HashMap;

    fn run_tiny(tp: u32, pp: u32, dp: u32) -> EngineOutput {
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(tp, pp, dp).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 2 * pp,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap()
    }

    #[test]
    fn single_rank_executes_and_validates() {
        let out = run_tiny(1, 1, 1);
        assert_eq!(out.trace.world_size(), 1);
        assert!(out.makespan > Dur::ZERO);
        out.trace.validate().unwrap();
    }

    #[test]
    fn all_parallel_axes_execute() {
        let out = run_tiny(2, 2, 2);
        assert_eq!(out.trace.world_size(), 8);
        out.trace.validate().unwrap();
        // Every rank observed kernels.
        for r in out.trace.ranks() {
            assert!(r.kernels().count() > 0, "{} has no kernels", r.rank());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tiny(2, 2, 1);
        let b = run_tiny(2, 2, 1);
        assert_eq!(a.makespan, b.makespan);
        for (ra, rb) in a.trace.ranks().iter().zip(b.trace.ranks()) {
            assert_eq!(ra.events(), rb.events());
        }
    }

    #[test]
    fn collective_members_share_interval() {
        let out = run_tiny(2, 1, 1);
        // Find a TP all-reduce instance on both ranks: same (group,
        // seq) must give identical [start, end).
        let mut by_key: HashMap<(u64, u32), Vec<(Ts, Dur)>> = HashMap::new();
        for r in out.trace.ranks() {
            for e in r.kernels() {
                if let EventKind::Kernel {
                    class: KernelClass::Collective(m),
                    ..
                } = e.kind
                {
                    by_key
                        .entry((m.group, m.seq))
                        .or_default()
                        .push((e.ts, e.dur));
                }
            }
        }
        assert!(!by_key.is_empty());
        for (key, intervals) in by_key {
            assert_eq!(intervals.len(), 2, "instance {key:?} has both members");
            assert_eq!(intervals[0], intervals[1], "instance {key:?} synchronized");
        }
    }

    #[test]
    fn pipeline_stages_overlap_in_steady_state() {
        let out = run_tiny(1, 2, 1);
        // Stage 1 must start after stage 0 (activation dependency)…
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let r1 = out.trace.rank(lumos_trace::RankId(1)).unwrap();
        let first_k0 = r0.kernels().map(|e| e.ts).min().unwrap();
        let first_k1 = r1.kernels().map(|e| e.ts).min().unwrap();
        assert!(first_k1 > first_k0);
        // …but both must be concurrently busy somewhere (pipelining).
        let span0 = r0.span().unwrap();
        let span1 = r1.span().unwrap();
        assert!(span0.overlaps(&span1));
    }

    #[test]
    fn backward_runs_on_second_thread() {
        let out = run_tiny(1, 1, 1);
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let threads = r0.threads();
        assert!(threads.len() >= 2, "expected main + backward threads");
        // Backward-thread annotations exist.
        let bwd_ann = r0
            .annotations()
            .filter(|a| a.name.starts_with("bwd mb="))
            .count();
        assert_eq!(bwd_ann, 2); // num_microbatches = 2
    }

    #[test]
    fn annotations_cover_layers_and_iteration() {
        let out = run_tiny(1, 1, 1);
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let names: Vec<&str> = r0.annotations().map(|a| &*a.name).collect();
        assert!(names.contains(&"iteration"));
        assert!(names.iter().any(|n| n.starts_with("layer=0 fwd")));
        assert!(names.iter().any(|n| n.starts_with("layer=1 bwd")));
        assert!(names.contains(&"optimizer"));
    }

    #[test]
    fn mismatched_collective_deadlocks_with_diagnostic() {
        // Build a malformed 2-rank job where only rank 0 launches a
        // collective on a 2-member group.
        let mut p0 = Program::new(0);
        let nccl = p0.intern("nccl");
        p0.main_mut().push(HostOp::Launch {
            spec: KernelSpec {
                name: nccl,
                class: KernelClass::Collective(lumos_trace::CommMeta {
                    kind: lumos_trace::CollectiveKind::AllReduce,
                    group: 99,
                    seq: 0,
                    bytes: 1024,
                }),
                stream: streams::TP_COMM,
            },
        });
        p0.main_mut().push(HostOp::StreamSync {
            stream: streams::TP_COMM,
        });
        let p1 = Program::new(1);
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0, p1],
            groups: HashMap::from([(99u64, vec![0u32, 1u32])]),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadlocked"), "{msg}");
        // The diagnostic names the rendezvous and who is missing.
        assert!(msg.contains("AllReduce"), "{msg}");
        assert!(msg.contains("group 99"), "{msg}");
        assert!(msg.contains("seq 0"), "{msg}");
        assert!(msg.contains("missing rank(s) 1"), "{msg}");
    }

    #[test]
    fn unknown_group_is_typed_error() {
        // A collective launched on a communicator id the job never
        // registered must fail cleanly, not panic.
        let mut p0 = Program::new(0);
        let nccl = p0.intern("nccl");
        p0.main_mut().push(HostOp::Launch {
            spec: KernelSpec {
                name: nccl,
                class: KernelClass::Collective(lumos_trace::CommMeta {
                    kind: lumos_trace::CollectiveKind::AllReduce,
                    group: 7,
                    seq: 0,
                    bytes: 64,
                }),
                stream: streams::TP_COMM,
            },
        });
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::UnknownGroup { group: 7 }),
            "{err}"
        );
        assert!(err.to_string().contains("unknown communicator group 7"));
    }

    #[test]
    fn unbalanced_annotation_is_typed_error() {
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::AnnotationEnd);
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MalformedProgram { .. }), "{err}");
        assert!(err.to_string().contains("AnnotationEnd"));
    }

    #[test]
    fn dangling_name_id_is_typed_error() {
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::CpuOp { name: NameId(1234) });
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MalformedProgram { .. }), "{err}");
        assert!(err.to_string().contains("unknown name id"), "{err}");
    }

    #[test]
    fn duplicate_rank_is_typed_error() {
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![Program::new(3), Program::new(3)],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MalformedProgram { .. }), "{err}");
        assert!(err.to_string().contains("more than one program"), "{err}");
    }

    #[test]
    fn prepared_job_reuses_across_iterations() {
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 2, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        let prep = PreparedJob::new(&job).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let jitter = JitterModel::realistic(11);
        for iteration in 0..3 {
            let full = prep.execute(&cost, &oh, &jitter, iteration).unwrap();
            let fresh = execute(&job, &cost, &oh, &jitter, iteration).unwrap();
            assert_eq!(full.makespan, fresh.makespan, "iteration {iteration}");
            let metrics = prep
                .execute_metrics(&cost, &oh, &jitter, iteration)
                .unwrap();
            assert_eq!(metrics.makespan, full.makespan, "iteration {iteration}");
            assert_eq!(metrics.total_events, full.trace.total_events());
        }
    }

    #[test]
    fn metrics_mode_matches_full_trace_aggregates() {
        let out = run_tiny(2, 2, 1);
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(2, 2, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        let metrics = execute_metrics(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap();
        assert_eq!(metrics.makespan, out.makespan);
        assert_eq!(metrics.total_events, out.trace.total_events());
        // Per-rank spans agree with the trace.
        for rm in &metrics.ranks {
            let rt = out.trace.rank(lumos_trace::RankId(rm.rank)).unwrap();
            let span = rt.span().unwrap();
            assert_eq!(rm.start, span.start, "rank {} start", rm.rank);
            assert_eq!(rm.end, span.end, "rank {} end", rm.rank);
            assert_eq!(rm.events, rt.len(), "rank {} events", rm.rank);
        }
        // Per-stream busy time agrees with summed kernel durations.
        for sb in &metrics.streams {
            let rt = out.trace.rank(lumos_trace::RankId(sb.rank)).unwrap();
            let busy: u64 = rt
                .kernels()
                .filter(|e| e.kind.stream() == Some(sb.stream))
                .map(|e| e.dur.as_ns())
                .sum();
            assert_eq!(sb.busy, Dur(busy), "rank {} {}", sb.rank, sb.stream);
        }
    }

    #[test]
    fn jitter_changes_timing_but_not_structure() {
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 1, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 2,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let base = execute(&job, &cost, &oh, &JitterModel::none(), 0).unwrap();
        let jit = execute(&job, &cost, &oh, &JitterModel::realistic(1), 0).unwrap();
        assert_eq!(
            base.trace.total_events(),
            jit.trace.total_events(),
            "jitter must not change event population"
        );
        assert_ne!(base.makespan, jit.makespan);
        // Different iterations of the same jittered run differ.
        let jit2 = execute(&job, &cost, &oh, &JitterModel::realistic(1), 1).unwrap();
        assert_ne!(jit.makespan, jit2.makespan);
        // Means stay close: within 10%.
        let rel = jit.makespan.relative_error(base.makespan);
        assert!(rel < 0.1, "jittered makespan drifted {rel}");
    }

    #[test]
    fn stream_sync_on_unused_stream_completes_inline() {
        // A StreamSync on a stream no op ever enqueues to still
        // prepares (the stream exists, empty) and completes inline.
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::StreamSync {
            stream: StreamId(42),
        });
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let out = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap();
        assert_eq!(out.trace.total_events(), 1);
    }

    fn faulted_fixture(tp: u32, pp: u32, dp: u32) -> SimConfig {
        SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(tp, pp, dp).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    #[test]
    fn identity_scenario_matches_clean_metrics() {
        let config = faulted_fixture(2, 1, 2);
        let job = lower(&config).unwrap();
        let prep = PreparedJob::new(&job).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let jitter = JitterModel::realistic(5);
        let clean = prep.execute_metrics(&cost, &oh, &jitter, 0).unwrap();
        let faulted = prep
            .execute_metrics_faulted(
                &cost,
                &oh,
                &jitter,
                0,
                &crate::scenario::RunScenario::identity(4),
            )
            .unwrap();
        assert_eq!(clean.makespan, faulted.makespan);
        assert_eq!(clean.total_events, faulted.total_events);
    }

    #[test]
    fn straggler_scenario_slows_makespan_not_structure() {
        let config = faulted_fixture(1, 2, 1);
        let job = lower(&config).unwrap();
        let prep = PreparedJob::new(&job).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let clean = prep
            .execute_metrics(&cost, &oh, &JitterModel::none(), 0)
            .unwrap();
        let spec =
            crate::scenario::FaultSpec::parse("[[straggler]]\nranks = 1\nslowdown = 2.0").unwrap();
        let real = spec.realize(7, 0, 2);
        let sc = real.compile(2, clean.makespan);
        assert!(!sc.is_identity());
        let faulted = prep
            .execute_metrics_faulted(&cost, &oh, &JitterModel::none(), 0, &sc)
            .unwrap();
        assert!(
            faulted.makespan > clean.makespan,
            "straggler must slow the run: {:?} vs {:?}",
            faulted.makespan,
            clean.makespan
        );
        assert_eq!(faulted.total_events, clean.total_events);
        // Deterministic: the same scenario replays byte-identically.
        let again = prep
            .execute_metrics_faulted(&cost, &oh, &JitterModel::none(), 0, &sc)
            .unwrap();
        assert_eq!(faulted.makespan, again.makespan);
    }

    #[test]
    fn degradation_window_scopes_to_matching_groups() {
        use crate::scenario::{DegradationSpec, Realization};
        use lumos_model::ScopeClass;
        let config = faulted_fixture(2, 1, 1);
        let job = lower(&config).unwrap();
        let prep = PreparedJob::new(&job).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let clean = prep
            .execute_metrics(&cost, &oh, &JitterModel::none(), 0)
            .unwrap();
        let window = |scope| Realization {
            replica: 0,
            stragglers: Vec::new(),
            windows: vec![DegradationSpec {
                probability: 1.0,
                scope,
                bandwidth_factor: 0.25,
                start_frac: 0.0,
                end_frac: 10.0,
            }],
            failure: None,
        };
        // A tp-scoped window on a tp-only job slows it down…
        let tp_faulted = prep
            .execute_metrics_faulted(
                &cost,
                &oh,
                &JitterModel::none(),
                0,
                &window(Some(ScopeClass::Tp)).compile(2, clean.makespan),
            )
            .unwrap();
        assert!(tp_faulted.makespan > clean.makespan);
        // …while a dp-scoped window leaves it untouched.
        let dp_faulted = prep
            .execute_metrics_faulted(
                &cost,
                &oh,
                &JitterModel::none(),
                0,
                &window(Some(ScopeClass::Dp)).compile(2, clean.makespan),
            )
            .unwrap();
        assert_eq!(dp_faulted.makespan, clean.makespan);
    }
}
