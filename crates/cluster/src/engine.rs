//! The ground-truth execution engine: a multi-rank discrete-event
//! simulator with CUDA semantics.
//!
//! Each rank contributes host threads (executing [`HostOp`] streams)
//! and CUDA streams (FIFO queues of kernels, event records, and event
//! waits). Cross-rank coupling happens exclusively through collective
//! rendezvous: a collective kernel instance starts when *every*
//! member's stream has reached it, all members start simultaneously,
//! and all members finish together after the cost-model duration.
//!
//! The engine is a dependency-resolution simulator (not a time-ordered
//! event queue): since all durations are known once their inputs
//! resolve, entities are advanced from a wake queue until quiescence.
//! Execution is deterministic — wake order never affects computed
//! timestamps, only the order in which they are discovered.

use crate::jitter::JitterModel;
use crate::lower::LoweredJob;
use crate::program::HostOp;
use lumos_cost::{CostModel, HostOverheads};
use lumos_trace::{
    ClusterTrace, CudaRuntimeKind, Dur, KernelClass, RankTrace, StreamId, TraceEvent, Ts,
};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Detection latency between a GPU completion and the host observing
/// it through a blocking synchronize.
const SYNC_POLL_LATENCY: Dur = Dur(500);

/// Errors from engine execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum EngineError {
    /// The job deadlocked: no entity could make progress but work
    /// remains. Indicates an ill-formed program (e.g. mismatched
    /// collective sequences).
    Deadlock {
        /// Human-readable stuck-entity report.
        detail: String,
    },
    /// A program emitted an event for a rank the job does not declare
    /// (a malformed [`LoweredJob`] built outside [`crate::lower`]).
    UnknownRank {
        /// The undeclared rank.
        rank: u32,
    },
    /// A collective launch referenced a communicator group absent from
    /// [`LoweredJob::groups`].
    UnknownGroup {
        /// The unregistered communicator id.
        group: u64,
    },
    /// An instruction stream violated an engine invariant (e.g. an
    /// `AnnotationEnd` without a matching begin, or a sync completion
    /// with no sync in progress). Indicates a malformed program
    /// rather than a timing question.
    MalformedProgram {
        /// What went wrong, and where.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Deadlock { detail } => write!(f, "execution deadlocked: {detail}"),
            EngineError::UnknownRank { rank } => {
                write!(f, "event emitted for undeclared rank {rank}")
            }
            EngineError::UnknownGroup { group } => {
                write!(
                    f,
                    "collective references unknown communicator group {group}"
                )
            }
            EngineError::MalformedProgram { detail } => {
                write!(f, "malformed program: {detail}")
            }
        }
    }
}

impl Error for EngineError {}

/// The result of executing a lowered job.
#[derive(Debug, Clone)]
pub struct EngineOutput {
    /// Per-rank Kineto-style traces (sorted by timestamp).
    pub trace: ClusterTrace,
    /// End-to-end iteration time.
    pub makespan: Dur,
}

/// Executes `job` with the given cost model, host overheads, and
/// jitter for iteration index `iteration`.
///
/// # Errors
///
/// Returns [`EngineError::Deadlock`] when the program graph cannot be
/// completed, and [`EngineError::UnknownRank`] /
/// [`EngineError::UnknownGroup`] / [`EngineError::MalformedProgram`]
/// when the job itself is ill-formed (a hand-built [`LoweredJob`]
/// rather than one from [`crate::lower`]). None of these panic: a bad
/// job yields a typed error.
pub fn execute<C: CostModel>(
    job: &LoweredJob,
    cost: &C,
    overheads: &HostOverheads,
    jitter: &JitterModel,
    iteration: u64,
) -> Result<EngineOutput, EngineError> {
    Engine::new(job, cost, overheads, jitter, iteration).run()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wake {
    Thread(usize),
    Stream(usize),
}

#[derive(Debug)]
enum Blocked {
    Ready,
    /// Waiting for a stream to drain its first `upto` entries.
    StreamDrain,
    /// Waiting for `pending` streams to drain (device sync).
    DeviceDrain {
        pending: usize,
    },
    Token,
    Done,
}

struct ThreadState {
    rank: u32,
    tid: lumos_trace::ThreadId,
    ops: Vec<HostOp>,
    pc: usize,
    clock: Ts,
    blocked: Blocked,
    /// Start timestamp of an in-progress blocking sync call.
    sync_started: Option<(Ts, CudaRuntimeKind)>,
    /// Latest GPU completion observed by the pending wake(s).
    wake_time: Ts,
    ann_stack: Vec<(Arc<str>, Ts)>,
    host_site: u64,
}

enum Entry {
    Kernel {
        name: Arc<str>,
        class: KernelClass,
        earliest: Ts,
        corr: u64,
    },
    Collective {
        name: Arc<str>,
        class: KernelClass,
        key: (u64, u32),
        earliest: Ts,
        corr: u64,
        arrived: bool,
    },
    Record {
        event: (u32, u32),
    },
    WaitEv {
        event: (u32, u32),
    },
}

struct StreamState {
    rank: u32,
    sid: StreamId,
    entries: Vec<Entry>,
    head: usize,
    clock: Ts,
    /// Threads waiting for this stream to drain `upto` entries.
    drain_waiters: Vec<(usize, usize)>,
    last_enqueue_host: Ts,
}

#[derive(Default)]
struct EventState {
    completed: Option<Ts>,
    waiting_streams: Vec<usize>,
}

#[derive(Default)]
struct TokenState {
    time: Option<Ts>,
    waiters: Vec<usize>,
}

struct CollInstance {
    expected: usize,
    arrivals: Vec<(usize, Ts)>,
    resolved: Option<(Ts, Dur)>,
}

struct Engine<'a, C: CostModel> {
    job: &'a LoweredJob,
    cost: &'a C,
    oh: &'a HostOverheads,
    jitter: &'a JitterModel,
    iteration: u64,
    threads: Vec<ThreadState>,
    streams: Vec<StreamState>,
    stream_index: HashMap<(u32, StreamId), usize>,
    events: HashMap<(u32, u32), EventState>,
    tokens: HashMap<(u32, u32), TokenState>,
    collectives: HashMap<(u64, u32), CollInstance>,
    traces: HashMap<u32, RankTrace>,
    queue: VecDeque<Wake>,
    queued_threads: Vec<bool>,
    queued_streams: Vec<bool>,
    next_corr: u64,
    /// First fatal error observed while draining the wake queue. The
    /// run loop stops at the next wake and reports it, so malformed
    /// programs surface as typed errors instead of panics.
    fatal: Option<EngineError>,
}

impl<'a, C: CostModel> Engine<'a, C> {
    fn new(
        job: &'a LoweredJob,
        cost: &'a C,
        oh: &'a HostOverheads,
        jitter: &'a JitterModel,
        iteration: u64,
    ) -> Self {
        let mut threads = Vec::new();
        let mut traces = HashMap::new();
        for program in &job.programs {
            traces.insert(program.rank, RankTrace::new(program.rank));
            for tp in &program.threads {
                threads.push(ThreadState {
                    rank: program.rank,
                    tid: tp.tid,
                    ops: tp.ops.clone(),
                    pc: 0,
                    clock: Ts::ZERO,
                    blocked: Blocked::Ready,
                    sync_started: None,
                    wake_time: Ts::ZERO,
                    ann_stack: Vec::new(),
                    host_site: 0,
                });
            }
        }
        let queued_threads = vec![false; threads.len()];
        Engine {
            job,
            cost,
            oh,
            jitter,
            iteration,
            threads,
            streams: Vec::new(),
            stream_index: HashMap::new(),
            events: HashMap::new(),
            tokens: HashMap::new(),
            collectives: HashMap::new(),
            traces,
            queue: VecDeque::new(),
            queued_threads,
            queued_streams: Vec::new(),
            next_corr: 1,
            fatal: None,
        }
    }

    /// Records a fatal error (first one wins) and lets the run loop
    /// stop at its next iteration.
    fn fail(&mut self, e: EngineError) {
        if self.fatal.is_none() {
            self.fatal = Some(e);
        }
    }

    fn stream_idx(&mut self, rank: u32, sid: StreamId) -> usize {
        if let Some(&i) = self.stream_index.get(&(rank, sid)) {
            return i;
        }
        let i = self.streams.len();
        self.streams.push(StreamState {
            rank,
            sid,
            entries: Vec::new(),
            head: 0,
            clock: Ts::ZERO,
            drain_waiters: Vec::new(),
            last_enqueue_host: Ts::ZERO,
        });
        self.queued_streams.push(false);
        self.stream_index.insert((rank, sid), i);
        i
    }

    fn wake_thread(&mut self, i: usize) {
        if !self.queued_threads[i] {
            self.queued_threads[i] = true;
            self.queue.push_back(Wake::Thread(i));
        }
    }

    fn wake_stream(&mut self, i: usize) {
        if !self.queued_streams[i] {
            self.queued_streams[i] = true;
            self.queue.push_back(Wake::Stream(i));
        }
    }

    fn emit(&mut self, rank: u32, event: TraceEvent) {
        match self.traces.get_mut(&rank) {
            Some(trace) => trace.push(event),
            None => self.fail(EngineError::UnknownRank { rank }),
        }
    }

    fn run(mut self) -> Result<EngineOutput, EngineError> {
        for i in 0..self.threads.len() {
            self.wake_thread(i);
        }
        while let Some(w) = self.queue.pop_front() {
            if self.fatal.is_some() {
                break;
            }
            match w {
                Wake::Thread(i) => {
                    self.queued_threads[i] = false;
                    self.run_thread(i);
                }
                Wake::Stream(i) => {
                    self.queued_streams[i] = false;
                    self.run_stream(i);
                }
            }
        }
        if let Some(e) = self.fatal.take() {
            return Err(e);
        }
        self.check_quiescent()?;

        let mut cluster = ClusterTrace::new(self.job.config.label());
        let mut ranks: Vec<(u32, RankTrace)> = self.traces.drain().collect();
        ranks.sort_unstable_by_key(|&(r, _)| r);
        for (_, mut t) in ranks {
            t.sort();
            cluster.push_rank(t);
        }
        let makespan = cluster.makespan();
        Ok(EngineOutput {
            trace: cluster,
            makespan,
        })
    }

    fn check_quiescent(&self) -> Result<(), EngineError> {
        let mut stuck = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            if !matches!(t.blocked, Blocked::Done) {
                stuck.push(format!(
                    "thread #{i} (rank {} {:?}) at pc {}/{} blocked {:?}",
                    t.rank,
                    t.tid,
                    t.pc,
                    t.ops.len(),
                    t.blocked
                ));
            }
        }
        for s in &self.streams {
            if s.head < s.entries.len() {
                stuck.push(format!(
                    "stream rank {} {} drained {}/{}",
                    s.rank,
                    s.sid,
                    s.head,
                    s.entries.len()
                ));
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            stuck.truncate(16);
            Err(EngineError::Deadlock {
                detail: stuck.join("; "),
            })
        }
    }

    fn host_dur(&mut self, thread: usize, base: Dur) -> Dur {
        let t = &mut self.threads[thread];
        t.host_site += 1;
        base.scale(
            self.jitter
                .host_multiplier(self.iteration, t.rank, t.host_site),
        )
    }

    fn run_thread(&mut self, i: usize) {
        // Resolve an in-progress block first.
        match self.threads[i].blocked {
            Blocked::Done => return,
            Blocked::Ready => {}
            Blocked::StreamDrain | Blocked::DeviceDrain { .. } => {
                // Woken by the last stream drain: finish the sync call.
                if matches!(self.threads[i].blocked, Blocked::DeviceDrain { pending } if pending > 0)
                {
                    return; // spurious wake; still waiting
                }
                let Some((start, kind)) = self.threads[i].sync_started.take() else {
                    self.fail(EngineError::MalformedProgram {
                        detail: format!("thread #{i} woke from a drain with no sync in progress"),
                    });
                    return;
                };
                let sync_dur = self.host_dur(i, self.oh.sync_call);
                let t = &mut self.threads[i];
                let end = (start + sync_dur).max(t.wake_time + SYNC_POLL_LATENCY);
                let rank = t.rank;
                let tid = t.tid;
                t.clock = end;
                t.blocked = Blocked::Ready;
                let mut ev = TraceEvent::cuda_runtime(kind, start, end - start, tid);
                ev.name = Arc::from(kind.api_name());
                self.emit(rank, ev);
            }
            Blocked::Token => {
                // Token time folded into clock by the waker.
                self.threads[i].blocked = Blocked::Ready;
            }
        }

        while self.threads[i].pc < self.threads[i].ops.len() {
            let op = self.threads[i].ops[self.threads[i].pc].clone();
            match op {
                HostOp::CpuOp { name } => {
                    let dur = self.host_dur(i, self.oh.cpu_op);
                    let t = &mut self.threads[i];
                    let (rank, tid, clock) = (t.rank, t.tid, t.clock);
                    t.clock += dur;
                    self.emit(rank, TraceEvent::cpu_op(name, clock, dur, tid));
                }
                HostOp::Launch { spec } => {
                    let dur = self.host_dur(i, self.oh.launch_call);
                    let corr = self.next_corr;
                    self.next_corr += 1;
                    let t = &mut self.threads[i];
                    let (rank, tid, clock) = (t.rank, t.tid, t.clock);
                    t.clock += dur;
                    self.emit(
                        rank,
                        TraceEvent::cuda_runtime(CudaRuntimeKind::LaunchKernel, clock, dur, tid)
                            .with_correlation(corr),
                    );
                    let earliest = clock + dur + self.oh.launch_gap;
                    let si = self.stream_idx(rank, spec.stream);
                    let entry = match spec.class {
                        KernelClass::Collective(meta) => Entry::Collective {
                            name: spec.name,
                            class: spec.class,
                            key: (meta.group, meta.seq),
                            earliest,
                            corr,
                            arrived: false,
                        },
                        class => Entry::Kernel {
                            name: spec.name,
                            class,
                            earliest,
                            corr,
                        },
                    };
                    self.enqueue(si, entry, clock);
                }
                HostOp::EventRecord { event, stream } => {
                    let dur = self.host_dur(i, self.oh.event_call);
                    let t = &mut self.threads[i];
                    let (rank, tid, clock) = (t.rank, t.tid, t.clock);
                    t.clock += dur;
                    self.emit(
                        rank,
                        TraceEvent::cuda_runtime(
                            CudaRuntimeKind::EventRecord {
                                event: event as u64,
                                stream,
                            },
                            clock,
                            dur,
                            tid,
                        ),
                    );
                    let si = self.stream_idx(rank, stream);
                    self.enqueue(
                        si,
                        Entry::Record {
                            event: (rank, event),
                        },
                        clock,
                    );
                }
                HostOp::StreamWait { stream, event } => {
                    let dur = self.host_dur(i, self.oh.event_call);
                    let t = &mut self.threads[i];
                    let (rank, tid, clock) = (t.rank, t.tid, t.clock);
                    t.clock += dur;
                    self.emit(
                        rank,
                        TraceEvent::cuda_runtime(
                            CudaRuntimeKind::StreamWaitEvent {
                                stream,
                                event: event as u64,
                            },
                            clock,
                            dur,
                            tid,
                        ),
                    );
                    let si = self.stream_idx(rank, stream);
                    self.enqueue(
                        si,
                        Entry::WaitEv {
                            event: (rank, event),
                        },
                        clock,
                    );
                }
                HostOp::StreamSync { stream } => {
                    let rank = self.threads[i].rank;
                    let si = self.stream_idx(rank, stream);
                    let upto = self.streams[si].entries.len();
                    let kind = CudaRuntimeKind::StreamSynchronize { stream };
                    if self.begin_sync(i, kind, &[(si, upto)]) {
                        self.threads[i].pc += 1;
                        continue;
                    }
                    self.threads[i].pc += 1;
                    return;
                }
                HostOp::DeviceSync => {
                    let rank = self.threads[i].rank;
                    let targets: Vec<(usize, usize)> = self
                        .streams
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.rank == rank)
                        .map(|(si, s)| (si, s.entries.len()))
                        .collect();
                    if self.begin_sync(i, CudaRuntimeKind::DeviceSynchronize, &targets) {
                        self.threads[i].pc += 1;
                        continue;
                    }
                    self.threads[i].pc += 1;
                    return;
                }
                HostOp::SignalPeer { token } => {
                    let t = &self.threads[i];
                    let (rank, clock) = (t.rank, t.clock);
                    let state = self.tokens.entry((rank, token)).or_default();
                    state.time = Some(clock);
                    let waiters = std::mem::take(&mut state.waiters);
                    for w in waiters {
                        self.threads[w].clock = self.threads[w].clock.max(clock);
                        self.wake_thread(w);
                    }
                }
                HostOp::WaitPeer { token } => {
                    let rank = self.threads[i].rank;
                    let state = self.tokens.entry((rank, token)).or_default();
                    match state.time {
                        Some(ts) => {
                            let t = &mut self.threads[i];
                            t.clock = t.clock.max(ts);
                        }
                        None => {
                            state.waiters.push(i);
                            self.threads[i].blocked = Blocked::Token;
                            self.threads[i].pc += 1;
                            return;
                        }
                    }
                }
                HostOp::AnnotationBegin { name } => {
                    let t = &mut self.threads[i];
                    let clock = t.clock;
                    t.ann_stack.push((name, clock));
                }
                HostOp::AnnotationEnd => {
                    let t = &mut self.threads[i];
                    let Some((name, start)) = t.ann_stack.pop() else {
                        let (rank, pc) = (t.rank, t.pc);
                        self.fail(EngineError::MalformedProgram {
                            detail: format!(
                                "rank {rank} thread #{i}: AnnotationEnd at pc {pc} \
                                 without a matching AnnotationBegin"
                            ),
                        });
                        return;
                    };
                    let (rank, tid, clock) = (t.rank, t.tid, t.clock);
                    self.emit(
                        rank,
                        TraceEvent::annotation(name, start, clock - start, tid),
                    );
                }
            }
            self.threads[i].pc += 1;
        }
        self.threads[i].blocked = Blocked::Done;
    }

    /// Starts a blocking sync over `targets = [(stream, upto)]`.
    /// Returns `true` if all targets are already drained (sync
    /// completes inline).
    fn begin_sync(
        &mut self,
        thread: usize,
        kind: CudaRuntimeKind,
        targets: &[(usize, usize)],
    ) -> bool {
        let start = self.threads[thread].clock;
        let mut pending = 0;
        let mut latest = Ts::ZERO;
        for &(si, upto) in targets {
            if self.streams[si].head >= upto {
                latest = latest.max(self.streams[si].clock);
            } else {
                self.streams[si].drain_waiters.push((thread, upto));
                pending += 1;
            }
        }
        if pending == 0 {
            let sync_dur = self.host_dur(thread, self.oh.sync_call);
            let t = &mut self.threads[thread];
            let end = (start + sync_dur)
                .max(latest + SYNC_POLL_LATENCY)
                .max(start);
            let (rank, tid) = (t.rank, t.tid);
            let ev = TraceEvent::cuda_runtime(kind, start, end - start, tid);
            t.clock = end;
            self.emit(rank, ev);
            true
        } else {
            let t = &mut self.threads[thread];
            t.sync_started = Some((start, kind));
            t.wake_time = latest;
            t.blocked = if targets.len() == 1 {
                Blocked::StreamDrain
            } else {
                Blocked::DeviceDrain { pending }
            };
            false
        }
    }

    fn enqueue(&mut self, si: usize, entry: Entry, host_time: Ts) {
        let s = &mut self.streams[si];
        debug_assert!(
            host_time >= s.last_enqueue_host,
            "stream enqueue order violated on rank {} {}",
            s.rank,
            s.sid
        );
        s.last_enqueue_host = host_time;
        s.entries.push(entry);
        self.wake_stream(si);
    }

    fn run_stream(&mut self, si: usize) {
        loop {
            let s = &self.streams[si];
            if s.head >= s.entries.len() {
                return;
            }
            let head = s.head;
            match &s.entries[head] {
                Entry::Kernel { .. } => {
                    let (rank, sid) = (s.rank, s.sid);
                    let Entry::Kernel {
                        name,
                        class,
                        earliest,
                        corr,
                    } = &self.streams[si].entries[head]
                    else {
                        unreachable!()
                    };
                    let (name, class, earliest, corr) = (name.clone(), *class, *earliest, *corr);
                    let base = self.cost.compute_cost(&class);
                    let dur = base.scale(self.jitter.kernel_multiplier(self.iteration, rank, corr));
                    let start = self.streams[si].clock.max(earliest);
                    self.emit(
                        rank,
                        TraceEvent::kernel(name, start, dur, sid)
                            .with_correlation(corr)
                            .with_class(class),
                    );
                    self.streams[si].clock = start + dur;
                    self.advance_head(si);
                }
                Entry::Record { event } => {
                    let event = *event;
                    let completed = self.streams[si].clock;
                    let state = self.events.entry(event).or_default();
                    state.completed = Some(completed);
                    let waiters = std::mem::take(&mut state.waiting_streams);
                    for w in waiters {
                        self.wake_stream(w);
                    }
                    self.advance_head(si);
                }
                Entry::WaitEv { event } => {
                    let event = *event;
                    let state = self.events.entry(event).or_default();
                    match state.completed {
                        Some(ts) => {
                            let s = &mut self.streams[si];
                            s.clock = s.clock.max(ts);
                            self.advance_head(si);
                        }
                        None => {
                            if !state.waiting_streams.contains(&si) {
                                state.waiting_streams.push(si);
                            }
                            return;
                        }
                    }
                }
                Entry::Collective { .. } => {
                    if !self.process_collective(si, head) {
                        return;
                    }
                }
            }
        }
    }

    /// Processes a collective entry at a stream head. Returns `true`
    /// if the stream advanced.
    fn process_collective(&mut self, si: usize, head: usize) -> bool {
        let (rank, sid, stream_clock) = {
            let s = &self.streams[si];
            (s.rank, s.sid, s.clock)
        };
        let Entry::Collective {
            name,
            class,
            key,
            earliest,
            corr,
            arrived,
        } = &mut self.streams[si].entries[head]
        else {
            unreachable!()
        };
        let key = *key;
        let (name, class, corr) = (name.clone(), *class, *corr);
        let ready = stream_clock.max(*earliest);
        let newly_arrived = if *arrived {
            false
        } else {
            *arrived = true;
            true
        };

        let Some(members) = self.job.groups.get(&key.0) else {
            self.fail(EngineError::UnknownGroup { group: key.0 });
            return false;
        };
        let expected = members.len();

        let inst = self.collectives.entry(key).or_insert_with(|| CollInstance {
            expected,
            arrivals: Vec::new(),
            resolved: None,
        });
        if newly_arrived {
            inst.arrivals.push((si, ready));
        }

        if inst.resolved.is_none() && inst.arrivals.len() == inst.expected {
            let start = inst
                .arrivals
                .iter()
                .map(|&(_, t)| t)
                .fold(Ts::ZERO, Ts::max);
            let KernelClass::Collective(meta) = class else {
                unreachable!("collective entries carry collective classes")
            };
            let base = self.cost.collective_cost(meta.kind, meta.bytes, members);
            let dur = base.scale(
                self.jitter
                    .comm_multiplier(self.iteration, key.0, key.1 as u64),
            );
            inst.resolved = Some((start, dur));
            // Wake the other member streams so they emit and advance.
            let others: Vec<usize> = inst
                .arrivals
                .iter()
                .map(|&(s, _)| s)
                .filter(|&s| s != si)
                .collect();
            for o in others {
                self.wake_stream(o);
            }
        }

        match self.collectives[&key].resolved {
            Some((start, dur)) => {
                self.emit(
                    rank,
                    TraceEvent::kernel(name, start, dur, sid)
                        .with_correlation(corr)
                        .with_class(class),
                );
                self.streams[si].clock = start + dur;
                self.advance_head(si);
                true
            }
            None => false,
        }
    }

    fn advance_head(&mut self, si: usize) {
        self.streams[si].head += 1;
        let head = self.streams[si].head;
        let clock = self.streams[si].clock;
        // Release drain waiters whose target has been reached.
        let mut released = Vec::new();
        self.streams[si].drain_waiters.retain(|&(thread, upto)| {
            if head >= upto {
                released.push(thread);
                false
            } else {
                true
            }
        });
        for thread in released {
            let t = &mut self.threads[thread];
            t.wake_time = t.wake_time.max(clock);
            match &mut t.blocked {
                Blocked::StreamDrain => self.wake_thread(thread),
                Blocked::DeviceDrain { pending } => {
                    *pending -= 1;
                    if *pending == 0 {
                        self.wake_thread(thread);
                    }
                }
                other => {
                    let detail =
                        format!("drain waiter thread #{thread} in unexpected state {other:?}");
                    self.fail(EngineError::MalformedProgram { detail });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, SimConfig};
    use crate::program::{streams, KernelSpec, Program};
    use lumos_cost::AnalyticalCostModel;
    use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
    use lumos_trace::EventKind;

    fn run_tiny(tp: u32, pp: u32, dp: u32) -> EngineOutput {
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(tp, pp, dp).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 2 * pp,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap()
    }

    #[test]
    fn single_rank_executes_and_validates() {
        let out = run_tiny(1, 1, 1);
        assert_eq!(out.trace.world_size(), 1);
        assert!(out.makespan > Dur::ZERO);
        out.trace.validate().unwrap();
    }

    #[test]
    fn all_parallel_axes_execute() {
        let out = run_tiny(2, 2, 2);
        assert_eq!(out.trace.world_size(), 8);
        out.trace.validate().unwrap();
        // Every rank observed kernels.
        for r in out.trace.ranks() {
            assert!(r.kernels().count() > 0, "{} has no kernels", r.rank());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_tiny(2, 2, 1);
        let b = run_tiny(2, 2, 1);
        assert_eq!(a.makespan, b.makespan);
        for (ra, rb) in a.trace.ranks().iter().zip(b.trace.ranks()) {
            assert_eq!(ra.events(), rb.events());
        }
    }

    #[test]
    fn collective_members_share_interval() {
        let out = run_tiny(2, 1, 1);
        // Find a TP all-reduce instance on both ranks: same (group,
        // seq) must give identical [start, end).
        let mut by_key: HashMap<(u64, u32), Vec<(Ts, Dur)>> = HashMap::new();
        for r in out.trace.ranks() {
            for e in r.kernels() {
                if let EventKind::Kernel {
                    class: KernelClass::Collective(m),
                    ..
                } = e.kind
                {
                    by_key
                        .entry((m.group, m.seq))
                        .or_default()
                        .push((e.ts, e.dur));
                }
            }
        }
        assert!(!by_key.is_empty());
        for (key, intervals) in by_key {
            assert_eq!(intervals.len(), 2, "instance {key:?} has both members");
            assert_eq!(intervals[0], intervals[1], "instance {key:?} synchronized");
        }
    }

    #[test]
    fn pipeline_stages_overlap_in_steady_state() {
        let out = run_tiny(1, 2, 1);
        // Stage 1 must start after stage 0 (activation dependency)…
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let r1 = out.trace.rank(lumos_trace::RankId(1)).unwrap();
        let first_k0 = r0.kernels().map(|e| e.ts).min().unwrap();
        let first_k1 = r1.kernels().map(|e| e.ts).min().unwrap();
        assert!(first_k1 > first_k0);
        // …but both must be concurrently busy somewhere (pipelining).
        let span0 = r0.span().unwrap();
        let span1 = r1.span().unwrap();
        assert!(span0.overlaps(&span1));
    }

    #[test]
    fn backward_runs_on_second_thread() {
        let out = run_tiny(1, 1, 1);
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let threads = r0.threads();
        assert!(threads.len() >= 2, "expected main + backward threads");
        // Backward-thread annotations exist.
        let bwd_ann = r0
            .annotations()
            .filter(|a| a.name.starts_with("bwd mb="))
            .count();
        assert_eq!(bwd_ann, 2); // num_microbatches = 2
    }

    #[test]
    fn annotations_cover_layers_and_iteration() {
        let out = run_tiny(1, 1, 1);
        let r0 = out.trace.rank(lumos_trace::RankId(0)).unwrap();
        let names: Vec<&str> = r0.annotations().map(|a| &*a.name).collect();
        assert!(names.contains(&"iteration"));
        assert!(names.iter().any(|n| n.starts_with("layer=0 fwd")));
        assert!(names.iter().any(|n| n.starts_with("layer=1 bwd")));
        assert!(names.contains(&"optimizer"));
    }

    #[test]
    fn mismatched_collective_deadlocks_with_diagnostic() {
        // Build a malformed 2-rank job where only rank 0 launches a
        // collective on a 2-member group.
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::Launch {
            spec: KernelSpec {
                name: "nccl".into(),
                class: KernelClass::Collective(lumos_trace::CommMeta {
                    kind: lumos_trace::CollectiveKind::AllReduce,
                    group: 99,
                    seq: 0,
                    bytes: 1024,
                }),
                stream: streams::TP_COMM,
            },
        });
        p0.main_mut().push(HostOp::StreamSync {
            stream: streams::TP_COMM,
        });
        let p1 = Program::new(1);
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0, p1],
            groups: HashMap::from([(99u64, vec![0u32, 1u32])]),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadlocked"), "{msg}");
    }

    #[test]
    fn unknown_group_is_typed_error() {
        // A collective launched on a communicator id the job never
        // registered must fail cleanly, not panic.
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::Launch {
            spec: KernelSpec {
                name: "nccl".into(),
                class: KernelClass::Collective(lumos_trace::CommMeta {
                    kind: lumos_trace::CollectiveKind::AllReduce,
                    group: 7,
                    seq: 0,
                    bytes: 64,
                }),
                stream: streams::TP_COMM,
            },
        });
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::UnknownGroup { group: 7 }),
            "{err}"
        );
        assert!(err.to_string().contains("unknown communicator group 7"));
    }

    #[test]
    fn unbalanced_annotation_is_typed_error() {
        let mut p0 = Program::new(0);
        p0.main_mut().push(HostOp::AnnotationEnd);
        let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
        let job = LoweredJob {
            programs: vec![p0],
            groups: HashMap::new(),
            config,
        };
        let err = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::MalformedProgram { .. }), "{err}");
        assert!(err.to_string().contains("AnnotationEnd"));
    }

    #[test]
    fn jitter_changes_timing_but_not_structure() {
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 1, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 2,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        let job = lower(&config).unwrap();
        let cost = AnalyticalCostModel::h100();
        let oh = HostOverheads::default();
        let base = execute(&job, &cost, &oh, &JitterModel::none(), 0).unwrap();
        let jit = execute(&job, &cost, &oh, &JitterModel::realistic(1), 0).unwrap();
        assert_eq!(
            base.trace.total_events(),
            jit.trace.total_events(),
            "jitter must not change event population"
        );
        assert_ne!(base.makespan, jit.makespan);
        // Different iterations of the same jittered run differ.
        let jit2 = execute(&job, &cost, &oh, &JitterModel::realistic(1), 1).unwrap();
        assert_ne!(jit.makespan, jit2.makespan);
        // Means stay close: within 10%.
        let rel = jit.makespan.relative_error(base.makespan);
        assert!(rel < 0.1, "jittered makespan drifted {rel}");
    }
}
