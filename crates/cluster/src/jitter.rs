//! Deterministic run-to-run variance for the ground-truth engine.
//!
//! Real training iterations vary: kernel durations drift with clock
//! and cache state, host dispatch jitters with OS scheduling, and
//! network transfers see congestion. The paper's 3.3% replay error is
//! measured against this reality — a profiled iteration is one sample
//! of a noisy process. This module reproduces that structure with
//! *deterministic* noise: every multiplier is derived by hashing
//! `(seed, iteration, site)`, so the same configuration always
//! produces the same "measured" run, independent of engine execution
//! order.

use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_distr::LogNormal;
use serde::{Deserialize, Serialize};

/// Coefficient-of-variation-parameterized log-normal noise.
///
/// Multipliers have mean 1.0, so jitter perturbs without biasing
/// means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Coefficient of variation of compute-kernel durations.
    pub kernel_cv: f64,
    /// Coefficient of variation of host-side op durations.
    pub host_cv: f64,
    /// Coefficient of variation of collective durations (congestion).
    pub comm_cv: f64,
    /// Coefficient of variation of a *correlated per-iteration drift*
    /// applied to every GPU duration of an iteration: clock/thermal
    /// state and fabric congestion epochs move whole iterations, which
    /// is why a profiled iteration differs from the measured mean by a
    /// few percent (the paper's replay-error floor) rather than the
    /// vanishing i.i.d. average.
    pub drift_cv: f64,
    /// Base seed; combined with the iteration index.
    pub seed: u64,
}

impl JitterModel {
    /// No noise at all — replays become exact. Used by unit tests and
    /// by Lumos's own simulator (which must be deterministic).
    pub fn none() -> Self {
        JitterModel {
            kernel_cv: 0.0,
            host_cv: 0.0,
            comm_cv: 0.0,
            drift_cv: 0.0,
            seed: 0,
        }
    }

    /// Production-like variance: ~2% kernels, ~8% host, ~5% comms,
    /// ~2.5% correlated per-iteration drift.
    pub fn realistic(seed: u64) -> Self {
        JitterModel {
            kernel_cv: 0.02,
            host_cv: 0.08,
            comm_cv: 0.05,
            drift_cv: 0.025,
            seed,
        }
    }

    /// Returns `true` when all components are disabled.
    pub fn is_none(&self) -> bool {
        self.kernel_cv == 0.0 && self.host_cv == 0.0 && self.comm_cv == 0.0 && self.drift_cv == 0.0
    }

    /// The correlated drift of one iteration (applied to every GPU
    /// duration in it).
    pub fn iteration_drift(&self, iteration: u64) -> f64 {
        self.multiplier(self.drift_cv, 0x6472, iteration, 0, 0)
    }

    /// Multiplier for a compute kernel, keyed by `(iteration, rank,
    /// site)` where `site` is a stable per-kernel identifier.
    pub fn kernel_multiplier(&self, iteration: u64, rank: u32, site: u64) -> f64 {
        self.multiplier(self.kernel_cv, 0x4b65, iteration, rank as u64, site)
            * self.iteration_drift(iteration)
    }

    /// Multiplier for a host op.
    pub fn host_multiplier(&self, iteration: u64, rank: u32, site: u64) -> f64 {
        self.multiplier(self.host_cv, 0x686f, iteration, rank as u64, site)
    }

    /// Multiplier for a collective instance — keyed by the
    /// communicator and sequence so that *all members observe the same
    /// perturbation* (a congested transfer is slow for everyone).
    pub fn comm_multiplier(&self, iteration: u64, group: u64, seq: u64) -> f64 {
        self.multiplier(self.comm_cv, 0x636f, iteration, group, seq)
            * self.iteration_drift(iteration)
    }

    fn multiplier(&self, cv: f64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        let key = mix(mix(mix(mix(self.seed, tag), a), b), c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(key);
        // Log-normal with mean exactly 1: sigma^2 = ln(1+cv^2),
        // mu = -sigma^2/2.
        let sigma2 = (1.0 + cv * cv).ln();
        let dist = LogNormal::new(-sigma2 / 2.0, sigma2.sqrt()).expect("valid lognormal");
        dist.sample(&mut rng)
    }
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel::none()
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash step.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(value.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let j = JitterModel::none();
        assert!(j.is_none());
        assert_eq!(j.kernel_multiplier(0, 0, 0), 1.0);
        assert_eq!(j.comm_multiplier(5, 1, 2), 1.0);
    }

    #[test]
    fn deterministic_per_site() {
        let j = JitterModel::realistic(42);
        let a = j.kernel_multiplier(3, 7, 100);
        let b = j.kernel_multiplier(3, 7, 100);
        assert_eq!(a, b);
        // Different sites differ (with overwhelming probability).
        let c = j.kernel_multiplier(3, 7, 101);
        assert_ne!(a, c);
        // Different iterations differ.
        let d = j.kernel_multiplier(4, 7, 100);
        assert_ne!(a, d);
    }

    #[test]
    fn multipliers_positive_and_mean_near_one() {
        let j = JitterModel::realistic(7);
        let n = 4000;
        let mut sum = 0.0;
        for i in 0..n {
            let m = j.host_multiplier(0, 0, i);
            assert!(m > 0.0);
            sum += m;
        }
        let mean = sum / n as f64;
        assert!(
            (0.99..1.01).contains(&mean),
            "host multiplier mean {mean} drifted from 1.0"
        );
    }

    #[test]
    fn comm_multiplier_shared_across_members() {
        // Keyed only by (iteration, group, seq) — no rank input, so
        // members necessarily agree.
        let j = JitterModel::realistic(9);
        assert_eq!(j.comm_multiplier(1, 10, 3), j.comm_multiplier(1, 10, 3));
    }

    #[test]
    fn cv_controls_spread() {
        let tight = JitterModel {
            kernel_cv: 0.01,
            ..JitterModel::none()
        };
        let tight = JitterModel { seed: 1, ..tight };
        let wide = JitterModel {
            kernel_cv: 0.2,
            seed: 1,
            ..JitterModel::none()
        };
        let spread = |j: &JitterModel| {
            let mut var = 0.0;
            let n = 2000;
            for i in 0..n {
                let m = j.kernel_multiplier(0, 0, i);
                var += (m - 1.0) * (m - 1.0);
            }
            (var / n as f64).sqrt()
        };
        assert!(spread(&wide) > 5.0 * spread(&tight));
    }
}
