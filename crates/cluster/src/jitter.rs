//! Deterministic run-to-run variance for the ground-truth engine.
//!
//! Real training iterations vary: kernel durations drift with clock
//! and cache state, host dispatch jitters with OS scheduling, and
//! network transfers see congestion. The paper's 3.3% replay error is
//! measured against this reality — a profiled iteration is one sample
//! of a noisy process. This module reproduces that structure with
//! *deterministic* noise: every multiplier is derived by hashing
//! `(seed, iteration, site)`, so the same configuration always
//! produces the same "measured" run, independent of engine execution
//! order.

use rand::distributions::Distribution;
use rand::SeedableRng;
use rand_distr::LogNormal;
use serde::{Deserialize, Serialize};

/// Coefficient-of-variation-parameterized log-normal noise.
///
/// Multipliers have mean 1.0, so jitter perturbs without biasing
/// means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Coefficient of variation of compute-kernel durations.
    pub kernel_cv: f64,
    /// Coefficient of variation of host-side op durations.
    pub host_cv: f64,
    /// Coefficient of variation of collective durations (congestion).
    pub comm_cv: f64,
    /// Coefficient of variation of a *correlated per-iteration drift*
    /// applied to every GPU duration of an iteration: clock/thermal
    /// state and fabric congestion epochs move whole iterations, which
    /// is why a profiled iteration differs from the measured mean by a
    /// few percent (the paper's replay-error floor) rather than the
    /// vanishing i.i.d. average.
    pub drift_cv: f64,
    /// Base seed; combined with the iteration index.
    pub seed: u64,
}

impl JitterModel {
    /// No noise at all — replays become exact. Used by unit tests and
    /// by Lumos's own simulator (which must be deterministic).
    pub fn none() -> Self {
        JitterModel {
            kernel_cv: 0.0,
            host_cv: 0.0,
            comm_cv: 0.0,
            drift_cv: 0.0,
            seed: 0,
        }
    }

    /// Production-like variance: ~2% kernels, ~8% host, ~5% comms,
    /// ~2.5% correlated per-iteration drift.
    pub fn realistic(seed: u64) -> Self {
        JitterModel {
            kernel_cv: 0.02,
            host_cv: 0.08,
            comm_cv: 0.05,
            drift_cv: 0.025,
            seed,
        }
    }

    /// Returns `true` when all components are disabled.
    pub fn is_none(&self) -> bool {
        self.kernel_cv == 0.0 && self.host_cv == 0.0 && self.comm_cv == 0.0 && self.drift_cv == 0.0
    }

    /// The correlated drift of one iteration (applied to every GPU
    /// duration in it).
    pub fn iteration_drift(&self, iteration: u64) -> f64 {
        self.multiplier(self.drift_cv, 0x6472, iteration, 0, 0)
    }

    /// Multiplier for a compute kernel, keyed by `(iteration, rank,
    /// site)` where `site` is a stable per-kernel identifier.
    pub fn kernel_multiplier(&self, iteration: u64, rank: u32, site: u64) -> f64 {
        self.multiplier(self.kernel_cv, 0x4b65, iteration, rank as u64, site)
            * self.iteration_drift(iteration)
    }

    /// Multiplier for a host op.
    pub fn host_multiplier(&self, iteration: u64, rank: u32, site: u64) -> f64 {
        self.multiplier(self.host_cv, 0x686f, iteration, rank as u64, site)
    }

    /// Multiplier for a collective instance — keyed by the
    /// communicator and sequence so that *all members observe the same
    /// perturbation* (a congested transfer is slow for everyone).
    pub fn comm_multiplier(&self, iteration: u64, group: u64, seq: u64) -> f64 {
        self.multiplier(self.comm_cv, 0x636f, iteration, group, seq)
            * self.iteration_drift(iteration)
    }

    fn multiplier(&self, cv: f64, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        match lognormal_params(cv) {
            Some(params) => sample_site(self.seed, params, tag, a, b, c),
            None => 1.0,
        }
    }
}

/// Log-normal parameters `(mu, sigma)` with mean exactly 1 for a
/// coefficient of variation: `sigma^2 = ln(1 + cv^2)`, `mu =
/// -sigma^2/2`. `None` disables the component (multiplier 1). One
/// site, shared by the per-call path and [`JitterModel::compile`], so
/// the two can never drift apart.
fn lognormal_params(cv: f64) -> Option<(f64, f64)> {
    (cv > 0.0).then(|| {
        let sigma2 = (1.0 + cv * cv).ln();
        (-sigma2 / 2.0, sigma2.sqrt())
    })
}

/// Draws one site's multiplier: hash the `(seed, tag, a, b, c)` key,
/// seed a fresh deterministic RNG, sample the parameterized
/// log-normal. Shared by [`JitterModel::multiplier`] and
/// [`RunJitter::sample`].
fn sample_site(seed: u64, (mu, sigma): (f64, f64), tag: u64, a: u64, b: u64, c: u64) -> f64 {
    let key = mix(mix(mix(mix(seed, tag), a), b), c);
    let mut rng = rand::rngs::StdRng::seed_from_u64(key);
    let dist = LogNormal::new(mu, sigma).expect("valid lognormal");
    dist.sample(&mut rng)
}

impl Default for JitterModel {
    fn default() -> Self {
        JitterModel::none()
    }
}

/// The per-run compiled form of a [`JitterModel`]: distribution
/// parameters (`mu`, `sigma`) are derived once per component instead
/// of per multiplier call, and the correlated per-iteration drift —
/// which depends only on the iteration index — is sampled **once**
/// instead of once per GPU duration. Every multiplier it returns is
/// bit-identical to the uncompiled path (same hash keys, same
/// Box–Muller draws, same `f64` expressions), so compiled execution
/// produces byte-identical timelines; the engine compiles the model
/// at construction and the hot loop pays one hash + one sample per
/// jittered duration.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RunJitter {
    seed: u64,
    iteration: u64,
    /// `(mu, sigma)` per component; `None` disables it (multiplier 1).
    kernel: Option<(f64, f64)>,
    host: Option<(f64, f64)>,
    comm: Option<(f64, f64)>,
    /// This iteration's correlated drift (1.0 when disabled).
    drift: f64,
    /// `true` when every multiplier is exactly 1.0 — the engine skips
    /// sampling and scaling entirely.
    identity: bool,
}

impl JitterModel {
    /// Compiles the model for one iteration (see [`RunJitter`]).
    pub(crate) fn compile(&self, iteration: u64) -> RunJitter {
        let kernel = lognormal_params(self.kernel_cv);
        let host = lognormal_params(self.host_cv);
        let comm = lognormal_params(self.comm_cv);
        let drift = self.iteration_drift(iteration);
        RunJitter {
            seed: self.seed,
            iteration,
            kernel,
            host,
            comm,
            identity: kernel.is_none() && host.is_none() && comm.is_none() && drift == 1.0,
            drift,
        }
    }
}

impl RunJitter {
    /// `true` when every multiplier is exactly 1.0.
    pub(crate) fn is_identity(&self) -> bool {
        self.identity
    }

    fn sample(&self, params: Option<(f64, f64)>, tag: u64, b: u64, c: u64) -> f64 {
        match params {
            Some(p) => sample_site(self.seed, p, tag, self.iteration, b, c),
            None => 1.0,
        }
    }

    /// See [`JitterModel::kernel_multiplier`].
    pub(crate) fn kernel_multiplier(&self, rank: u32, site: u64) -> f64 {
        self.sample(self.kernel, 0x4b65, rank as u64, site) * self.drift
    }

    /// See [`JitterModel::host_multiplier`].
    pub(crate) fn host_multiplier(&self, rank: u32, site: u64) -> f64 {
        self.sample(self.host, 0x686f, rank as u64, site)
    }

    /// See [`JitterModel::comm_multiplier`].
    pub(crate) fn comm_multiplier(&self, group: u64, seq: u64) -> f64 {
        self.sample(self.comm, 0x636f, group, seq) * self.drift
    }
}

/// SplitMix64 finalizer — a well-mixed 64-bit hash step. Shared with
/// [`crate::scenario`], whose per-replica fault sampling uses the same
/// hash-the-`(seed, replica, site)` idiom.
pub(crate) fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(value.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let j = JitterModel::none();
        assert!(j.is_none());
        assert_eq!(j.kernel_multiplier(0, 0, 0), 1.0);
        assert_eq!(j.comm_multiplier(5, 1, 2), 1.0);
    }

    #[test]
    fn deterministic_per_site() {
        let j = JitterModel::realistic(42);
        let a = j.kernel_multiplier(3, 7, 100);
        let b = j.kernel_multiplier(3, 7, 100);
        assert_eq!(a, b);
        // Different sites differ (with overwhelming probability).
        let c = j.kernel_multiplier(3, 7, 101);
        assert_ne!(a, c);
        // Different iterations differ.
        let d = j.kernel_multiplier(4, 7, 100);
        assert_ne!(a, d);
    }

    #[test]
    fn multipliers_positive_and_mean_near_one() {
        let j = JitterModel::realistic(7);
        let n = 4000;
        let mut sum = 0.0;
        for i in 0..n {
            let m = j.host_multiplier(0, 0, i);
            assert!(m > 0.0);
            sum += m;
        }
        let mean = sum / n as f64;
        assert!(
            (0.99..1.01).contains(&mean),
            "host multiplier mean {mean} drifted from 1.0"
        );
    }

    #[test]
    fn comm_multiplier_shared_across_members() {
        // Keyed only by (iteration, group, seq) — no rank input, so
        // members necessarily agree.
        let j = JitterModel::realistic(9);
        assert_eq!(j.comm_multiplier(1, 10, 3), j.comm_multiplier(1, 10, 3));
    }

    #[test]
    fn compiled_form_is_bit_identical() {
        // The engine's per-run compiled jitter must reproduce the
        // uncompiled multipliers exactly — same hash keys, same
        // Box–Muller draws.
        for seed in [0u64, 7, 42] {
            let j = JitterModel::realistic(seed);
            for iteration in 0..3u64 {
                let c = j.compile(iteration);
                assert!(!c.is_identity());
                for site in 0..50u64 {
                    assert_eq!(
                        j.kernel_multiplier(iteration, 3, site).to_bits(),
                        c.kernel_multiplier(3, site).to_bits()
                    );
                    assert_eq!(
                        j.host_multiplier(iteration, 3, site).to_bits(),
                        c.host_multiplier(3, site).to_bits()
                    );
                    assert_eq!(
                        j.comm_multiplier(iteration, 9, site).to_bits(),
                        c.comm_multiplier(9, site).to_bits()
                    );
                }
            }
        }
        assert!(JitterModel::none().compile(5).is_identity());
        // A partial model (only drift) is not an identity.
        let drift_only = JitterModel {
            drift_cv: 0.02,
            ..JitterModel::none()
        };
        assert!(!drift_only.compile(0).is_identity());
        assert_eq!(
            drift_only.compile(1).kernel_multiplier(0, 0).to_bits(),
            drift_only.kernel_multiplier(1, 0, 0).to_bits()
        );
    }

    #[test]
    fn cv_controls_spread() {
        let tight = JitterModel {
            kernel_cv: 0.01,
            ..JitterModel::none()
        };
        let tight = JitterModel { seed: 1, ..tight };
        let wide = JitterModel {
            kernel_cv: 0.2,
            seed: 1,
            ..JitterModel::none()
        };
        let spread = |j: &JitterModel| {
            let mut var = 0.0;
            let n = 2000;
            for i in 0..n {
                let m = j.kernel_multiplier(0, 0, i);
                var += (m - 1.0) * (m - 1.0);
            }
            (var / n as f64).sqrt()
        };
        assert!(spread(&wide) > 5.0 * spread(&tight));
    }
}
