//! Ground-truth cluster substrate: a multi-rank training-execution
//! engine that emits Kineto-style traces.
//!
//! The Lumos paper profiles real GPT-3 training on a production
//! cluster with up to 512 H100 GPUs. This crate replaces that cluster:
//! it lowers a model + 3D-parallelism deployment into per-rank host
//! programs (kernel launches, CUDA events, stream synchronization,
//! fwd/bwd thread handoffs) and executes them in a discrete-event
//! engine with faithful CUDA semantics — FIFO streams, event-fenced
//! inter-stream dependencies, cross-rank collective rendezvous, 1F1B
//! pipelining, and compute/communication overlap.
//!
//! The output is a [`lumos_trace::ClusterTrace`] indistinguishable in
//! structure from what PyTorch Kineto records, which the Lumos core
//! consumes without knowing it came from a simulator. A seeded
//! [`JitterModel`] supplies run-to-run variance so replay error can be
//! measured the way the paper measures it.
//!
//! The engine has two execution modes sharing one simulation:
//! full-trace ([`execute`], [`PreparedJob::execute`]) materializes
//! the Kineto-style trace, while metrics-only ([`execute_metrics`],
//! [`PreparedJob::execute_metrics`]) accumulates just the aggregates
//! ([`EngineMetrics`]: makespan, per-rank spans, per-stream busy
//! time, collective waits) without constructing a single trace event
//! — the mode the simulation-refined configuration search runs in.
//! [`PreparedJob`] resolves a lowered job's tuple-keyed lookups into
//! dense indices once, so repeated iterations (jitter replicas) share
//! one prepared form.
//!
//! # Example
//!
//! ```
//! use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
//! use lumos_cost::AnalyticalCostModel;
//! use lumos_model::{ModelConfig, Parallelism};
//!
//! let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1)?);
//! let cluster = GroundTruthCluster::new(&config, AnalyticalCostModel::h100())?
//!     .with_jitter(JitterModel::realistic(42));
//! let profiled = cluster.profile_iteration(0)?;
//! assert_eq!(profiled.trace.world_size(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod exec;
mod inference;
mod jitter;
mod lower;
mod program;
mod run;
pub mod scenario;
mod sink;
mod verify;

pub use engine::{execute, execute_metrics, EngineError, EngineOutput};
pub use exec::PreparedJob;
pub use inference::lower_inference;
pub use jitter::JitterModel;
pub use lower::{lower, LoweredJob, SimConfig};
pub use program::{
    streams, threads, HostOp, KernelSpec, NameId, NameTable, Program, ThreadProgram,
};
pub use run::{profile, profile_inference, ClusterError, GroundTruthCluster, MeasuredStats};
pub use scenario::{FaultSpec, FaultSpecError, Realization, RunScenario};
pub use sink::{EngineMetrics, RankMetrics, StreamBusy};
pub use verify::{verify, CycleStep, GroupEntry, PortableJob, VerifyError, VerifyReport};
