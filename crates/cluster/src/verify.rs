//! Static whole-job verification: prove a [`LoweredJob`] well-formed
//! and deadlock-free **before** the engine runs it.
//!
//! The engine's runtime deadlock latch ([`crate::engine::EngineError::Deadlock`])
//! fires only after simulation work has been wasted, and historically
//! reported little more than "no entity could make progress". This
//! module performs the same control-flow analysis statically, in four
//! phases, each with a typed diagnostic:
//!
//! 1. **Referential integrity** — every [`crate::program::NameId`]
//!    resolves, annotations balance, cross-thread tokens are signaled
//!    exactly once, no rank is declared by two programs, every
//!    `StreamWait` has a producing `EventRecord`, and every collective
//!    launch names a registered communicator group the launching rank
//!    belongs to.
//! 2. **Collective consistency** — all members of a group issue each
//!    `(group, seq)` instance exactly once, with the same
//!    [`CollectiveKind`] and payload bytes; the first divergent rank
//!    and op are named.
//! 3. **Point-to-point matching** — send/recv instances
//!    ([`CollectiveKind::SendRecv`]) must be issued by both members of
//!    their pair group; a lone send (or recv) is reported with the
//!    ranks present and missing.
//! 4. **Deadlock freedom** — an abstract, costless scheduler replays
//!    the exact wake discipline of [`crate::engine`] (threads block on
//!    stream drains and tokens; streams stall on collective rendezvous
//!    and event waits). Which entity blocks is purely structural —
//!    costs only move clocks — so the abstract run gets stuck if and
//!    only if the real engine would. At quiescence-with-work the
//!    cross-rank wait-for graph is walked and the cycle (or dead-end
//!    chain) is reported step by step: rank → entity → waited-on
//!    resource → rank → …
//!
//! Zero false positives is a hard requirement: every job the engine
//! executes successfully must pass [`verify`] clean. The proptest
//! suite in `tests/verify.rs` holds both directions.

use crate::exec::{ExecOp, PreparedJob};
use crate::lower::{LoweredJob, SimConfig};
use crate::program::{HostOp, KernelSpec, Program};
use lumos_model::{ModelConfig, Parallelism};
use lumos_trace::{CollectiveKind, KernelClass, ThreadId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

/// One step of a reported deadlock chain: who waits, and on what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStep {
    /// Global rank of the stuck entity.
    pub rank: u32,
    /// The stuck entity, e.g. `"stream 13 (entry 0/2)"` or
    /// `"ThreadId(1) thread (op 3/7)"`.
    pub entity: String,
    /// The resource it waits on, e.g.
    /// `"AllReduce group 7 seq 0 (1/2 arrived; awaiting rank 1)"`.
    pub waits_on: String,
}

impl fmt::Display for CycleStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} {} waits on {}",
            self.rank, self.entity, self.waits_on
        )
    }
}

/// A violation found by static verification. The taxonomy follows the
/// four check phases (see the module docs); `docs/verify-checks.md`
/// catalogues each variant with an example diagnostic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum VerifyError {
    /// An op references a name id absent from its program's table.
    UnknownName {
        /// Rank of the offending program.
        rank: u32,
        /// The dangling raw name id.
        id: u32,
    },
    /// An `AnnotationEnd` without a matching `AnnotationBegin`.
    UnmatchedAnnotationEnd {
        /// Rank of the offending program.
        rank: u32,
        /// Thread with the unbalanced annotation.
        tid: ThreadId,
    },
    /// A thread ends with annotation ranges still open.
    UnclosedAnnotations {
        /// Rank of the offending program.
        rank: u32,
        /// Thread with the unbalanced annotation.
        tid: ThreadId,
        /// How many ranges stayed open.
        open: i64,
    },
    /// A cross-thread token is posted twice in one program.
    TokenSignaledTwice {
        /// Rank of the offending program.
        rank: u32,
        /// The doubly-signaled token.
        token: u32,
    },
    /// A `WaitPeer` token that no `SignalPeer` in the program posts.
    TokenNeverSignaled {
        /// Rank of the offending program.
        rank: u32,
        /// The never-signaled token.
        token: u32,
    },
    /// Two programs declare the same global rank.
    DuplicateRank {
        /// The rank declared twice.
        rank: u32,
    },
    /// A `StreamWait` on an event no `EventRecord` in the program ever
    /// records — the enqueued wait entry could never drain.
    WaitWithoutRecord {
        /// Rank of the offending program.
        rank: u32,
        /// The unrecorded per-rank CUDA event id.
        event: u32,
    },
    /// A collective launch references a communicator group absent from
    /// [`LoweredJob::groups`].
    UnknownGroup {
        /// Rank of the launching program.
        rank: u32,
        /// The unregistered communicator id.
        group: u64,
        /// Issue index of the launch.
        seq: u32,
    },
    /// A rank launches a collective on a group it is not a member of —
    /// its arrival would never be counted toward the rendezvous.
    ForeignGroup {
        /// The non-member launching rank.
        rank: u32,
        /// Communicator id.
        group: u64,
        /// Issue index of the launch.
        seq: u32,
    },
    /// A collective instance some group members never issue.
    CollectiveMissing {
        /// Communicator id.
        group: u64,
        /// Issue index.
        seq: u32,
        /// Kind issued by the ranks that did launch it.
        kind: CollectiveKind,
        /// Ranks that issued the instance.
        issued: Vec<u32>,
        /// Member ranks that never issue it.
        missing: Vec<u32>,
    },
    /// A rank issues the same collective instance more than once.
    CollectiveDuplicate {
        /// Communicator id.
        group: u64,
        /// Issue index.
        seq: u32,
        /// The over-issuing rank.
        rank: u32,
        /// How many times it launched the instance.
        launches: usize,
    },
    /// Members of one collective instance disagree on the kind.
    CollectiveKindMismatch {
        /// Communicator id.
        group: u64,
        /// Issue index.
        seq: u32,
        /// First divergent rank.
        rank: u32,
        /// What the divergent rank issues.
        kind: CollectiveKind,
        /// Reference rank (first issuer in program order).
        expected_rank: u32,
        /// What the reference rank issues.
        expected: CollectiveKind,
    },
    /// Members of one collective instance disagree on the payload.
    CollectiveBytesMismatch {
        /// Communicator id.
        group: u64,
        /// Issue index.
        seq: u32,
        /// First divergent rank.
        rank: u32,
        /// Payload bytes the divergent rank contributes.
        bytes: u64,
        /// Reference rank (first issuer in program order).
        expected_rank: u32,
        /// Payload bytes the reference rank contributes.
        expected: u64,
    },
    /// A send/recv instance missing one side of its pair.
    SendRecvUnmatched {
        /// Pair communicator id.
        group: u64,
        /// Issue index.
        seq: u32,
        /// Ranks that launched their side.
        issued: Vec<u32>,
        /// Member ranks with no matching launch.
        missing: Vec<u32>,
    },
    /// The cross-rank wait-for graph has a cycle (or a chain ending in
    /// a resource nothing will produce): the job would deadlock.
    Deadlock {
        /// The chain, stuck entity by stuck entity.
        chain: Vec<CycleStep>,
        /// `true` when the chain closes on itself (a true cycle);
        /// `false` when it dead-ends in an unproducible resource.
        cycle: bool,
    },
    /// A structural violation not covered by a dedicated variant.
    Malformed {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownName { rank, id } => {
                write!(f, "rank {rank}: op references unknown name id {id}")
            }
            VerifyError::UnmatchedAnnotationEnd { rank, tid } => {
                write!(f, "rank {rank} {tid:?}: unmatched AnnotationEnd")
            }
            VerifyError::UnclosedAnnotations { rank, tid, open } => {
                write!(f, "rank {rank} {tid:?}: {open} unclosed annotations")
            }
            VerifyError::TokenSignaledTwice { rank, token } => {
                write!(f, "rank {rank}: token {token} signaled twice")
            }
            VerifyError::TokenNeverSignaled { rank, token } => {
                write!(f, "rank {rank}: token {token} waited but never signaled")
            }
            VerifyError::DuplicateRank { rank } => {
                write!(f, "rank {rank} declared by more than one program")
            }
            VerifyError::WaitWithoutRecord { rank, event } => {
                write!(
                    f,
                    "rank {rank}: StreamWait on event {event} that no EventRecord ever records"
                )
            }
            VerifyError::UnknownGroup { rank, group, seq } => {
                write!(
                    f,
                    "rank {rank}: collective seq {seq} references unknown communicator group {group}"
                )
            }
            VerifyError::ForeignGroup { rank, group, seq } => {
                write!(
                    f,
                    "rank {rank}: launches collective (group {group}, seq {seq}) \
                     without being a member of the group"
                )
            }
            VerifyError::CollectiveMissing {
                group,
                seq,
                kind,
                issued,
                missing,
            } => {
                write!(
                    f,
                    "collective {kind:?} (group {group}, seq {seq}): \
                     rank(s) {missing:?} never issue it (issued by {issued:?})"
                )
            }
            VerifyError::CollectiveDuplicate {
                group,
                seq,
                rank,
                launches,
            } => {
                write!(
                    f,
                    "collective (group {group}, seq {seq}): rank {rank} issues it {launches} times"
                )
            }
            VerifyError::CollectiveKindMismatch {
                group,
                seq,
                rank,
                kind,
                expected_rank,
                expected,
            } => {
                write!(
                    f,
                    "collective (group {group}, seq {seq}): rank {rank} issues {kind:?} \
                     but rank {expected_rank} issues {expected:?}"
                )
            }
            VerifyError::CollectiveBytesMismatch {
                group,
                seq,
                rank,
                bytes,
                expected_rank,
                expected,
            } => {
                write!(
                    f,
                    "collective (group {group}, seq {seq}): rank {rank} contributes {bytes} bytes \
                     but rank {expected_rank} contributes {expected}"
                )
            }
            VerifyError::SendRecvUnmatched {
                group,
                seq,
                issued,
                missing,
            } => {
                write!(
                    f,
                    "send/recv (group {group}, seq {seq}): rank(s) {issued:?} launch their side \
                     but rank(s) {missing:?} never launch the matching one"
                )
            }
            VerifyError::Deadlock { chain, cycle } => {
                write!(f, "static deadlock: ")?;
                for (i, step) in chain.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{step}")?;
                }
                if *cycle {
                    write!(f, " -> cycle repeats")?;
                }
                Ok(())
            }
            VerifyError::Malformed { detail } => write!(f, "malformed job: {detail}"),
        }
    }
}

impl Error for VerifyError {}

/// Per-check counts from a clean verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Programs (ranks) checked.
    pub programs: usize,
    /// Host ops scanned across all programs.
    pub ops: usize,
    /// Interned names validated.
    pub names: usize,
    /// CUDA streams discovered.
    pub streams: usize,
    /// Non-send/recv collective instances checked for consistency.
    pub collectives: usize,
    /// Send/recv instances matched.
    pub sendrecv: usize,
    /// Per-rank CUDA events resolved.
    pub events: usize,
    /// Cross-thread tokens resolved.
    pub tokens: usize,
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} program(s): {} ops, {} names, {} streams, {} collective(s), \
             {} send/recv, {} events, {} tokens",
            self.programs,
            self.ops,
            self.names,
            self.streams,
            self.collectives,
            self.sendrecv,
            self.events,
            self.tokens
        )
    }
}

/// A [`LoweredJob`] in a serialization-friendly shape: the group map
/// becomes a sorted list of named entries (JSON object keys must be
/// strings, so `HashMap<u64, _>` would not round-trip portably), and
/// the simulation config — which verification never consults — is
/// dropped. Used by `lumos lint --job` fixtures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableJob {
    /// Per-rank programs.
    pub programs: Vec<Program>,
    /// Communicator groups, sorted by id.
    pub groups: Vec<GroupEntry>,
}

/// One communicator group of a [`PortableJob`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupEntry {
    /// Communicator id.
    pub group: u64,
    /// Member global ranks.
    pub members: Vec<u32>,
}

impl PortableJob {
    /// Captures a job's programs and groups.
    pub fn from_job(job: &LoweredJob) -> Self {
        let mut groups: Vec<GroupEntry> = job
            .groups
            .iter()
            .map(|(&group, members)| GroupEntry {
                group,
                members: members.clone(),
            })
            .collect();
        groups.sort_by_key(|g| g.group);
        PortableJob {
            programs: job.programs.clone(),
            groups,
        }
    }

    /// Rebuilds a [`LoweredJob`] suitable for [`verify`]. The attached
    /// config is a placeholder — verification never reads it.
    pub fn into_job(self) -> LoweredJob {
        let parallelism = Parallelism::new(1, 1, 1).expect("1x1x1 parallelism is valid");
        LoweredJob {
            programs: self.programs,
            groups: self
                .groups
                .into_iter()
                .map(|g| (g.group, g.members))
                .collect(),
            config: SimConfig::new(ModelConfig::tiny(), parallelism),
        }
    }
}

/// One collective launch observed during the consistency scan.
struct Issue {
    rank: u32,
    kind: CollectiveKind,
    bytes: u64,
}

/// Statically verifies `job`: referential integrity, collective
/// consistency, point-to-point matching, and deadlock freedom (see the
/// module docs for the exact checks). Returns per-check counts on
/// success.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, in check-phase order.
pub fn verify(job: &LoweredJob) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport {
        programs: job.programs.len(),
        ..VerifyReport::default()
    };

    // Phase 1: per-program structure + cross-program rank map.
    let mut seen_ranks = HashSet::new();
    for program in &job.programs {
        if !seen_ranks.insert(program.rank) {
            return Err(VerifyError::DuplicateRank { rank: program.rank });
        }
        program.well_formed()?;
        report.ops += program.len();
        report.names += program.names.len();
        let mut recorded = HashSet::new();
        for t in &program.threads {
            for op in &t.ops {
                if let HostOp::EventRecord { event, .. } = op {
                    recorded.insert(*event);
                }
            }
        }
        for t in &program.threads {
            for op in &t.ops {
                if let HostOp::StreamWait { event, .. } = op {
                    if !recorded.contains(event) {
                        return Err(VerifyError::WaitWithoutRecord {
                            rank: program.rank,
                            event: *event,
                        });
                    }
                }
            }
        }
    }

    // Phases 2 + 3: collective consistency and send/recv matching.
    // BTreeMap keeps the first reported divergence deterministic.
    let mut instances: BTreeMap<(u64, u32), Vec<Issue>> = BTreeMap::new();
    for program in &job.programs {
        for t in &program.threads {
            for op in &t.ops {
                let HostOp::Launch {
                    spec:
                        KernelSpec {
                            class: KernelClass::Collective(meta),
                            ..
                        },
                } = op
                else {
                    continue;
                };
                let Some(members) = job.groups.get(&meta.group) else {
                    return Err(VerifyError::UnknownGroup {
                        rank: program.rank,
                        group: meta.group,
                        seq: meta.seq,
                    });
                };
                if !members.contains(&program.rank) {
                    return Err(VerifyError::ForeignGroup {
                        rank: program.rank,
                        group: meta.group,
                        seq: meta.seq,
                    });
                }
                instances
                    .entry((meta.group, meta.seq))
                    .or_default()
                    .push(Issue {
                        rank: program.rank,
                        kind: meta.kind,
                        bytes: meta.bytes,
                    });
            }
        }
    }
    let mut kinds: HashMap<(u64, u32), CollectiveKind> = HashMap::new();
    for (&(group, seq), issues) in &instances {
        let first = &issues[0];
        kinds.insert((group, seq), first.kind);
        for issue in &issues[1..] {
            if issue.kind != first.kind {
                return Err(VerifyError::CollectiveKindMismatch {
                    group,
                    seq,
                    rank: issue.rank,
                    kind: issue.kind,
                    expected_rank: first.rank,
                    expected: first.kind,
                });
            }
            if issue.bytes != first.bytes {
                return Err(VerifyError::CollectiveBytesMismatch {
                    group,
                    seq,
                    rank: issue.rank,
                    bytes: issue.bytes,
                    expected_rank: first.rank,
                    expected: first.bytes,
                });
            }
        }
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for issue in issues {
            *counts.entry(issue.rank).or_insert(0) += 1;
        }
        if let Some((&rank, &launches)) = counts.iter().find(|&(_, &c)| c > 1) {
            return Err(VerifyError::CollectiveDuplicate {
                group,
                seq,
                rank,
                launches,
            });
        }
        let members = &job.groups[&group];
        let missing: Vec<u32> = members
            .iter()
            .copied()
            .filter(|r| !counts.contains_key(r))
            .collect();
        if !missing.is_empty() {
            let issued: Vec<u32> = counts.keys().copied().collect();
            return Err(if first.kind == CollectiveKind::SendRecv {
                VerifyError::SendRecvUnmatched {
                    group,
                    seq,
                    issued,
                    missing,
                }
            } else {
                VerifyError::CollectiveMissing {
                    group,
                    seq,
                    kind: first.kind,
                    issued,
                    missing,
                }
            });
        }
        if first.kind == CollectiveKind::SendRecv {
            report.sendrecv += 1;
        } else {
            report.collectives += 1;
        }
    }

    // Phase 4: deadlock freedom over the dense prepared form. After
    // phases 1-3, preparation cannot fail; the catch-all keeps this
    // panic-free for inputs that somehow slip through.
    let prep = PreparedJob::new(job).map_err(|e| VerifyError::Malformed {
        detail: e.to_string(),
    })?;
    report.streams = prep.streams.len();
    report.events = prep.n_events;
    report.tokens = prep.n_tokens;
    AbstractRun::new(&prep, job).check(&kinds)?;
    Ok(report)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AWake {
    Thread(usize),
    Stream(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Thread(usize),
    Stream(usize),
}

#[derive(Debug, Clone, Copy)]
enum ABlock {
    Ready,
    StreamDrain,
    DeviceDrain(usize),
    Token(u32),
    Done,
}

#[derive(Debug, Clone, Copy)]
enum AEntry {
    Kernel,
    Coll { coll: u32, arrived: bool },
    Record { event: u32 },
    WaitEv { event: u32 },
}

struct AThread {
    pc: usize,
    blocked: ABlock,
}

#[derive(Default)]
struct AStream {
    entries: Vec<AEntry>,
    head: usize,
    /// Threads waiting for this stream to drain `upto` entries.
    waiters: Vec<(usize, usize)>,
}

#[derive(Default)]
struct AEvent {
    completed: bool,
    waiting: Vec<usize>,
}

#[derive(Default)]
struct AToken {
    signaled: bool,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct AColl {
    arrivals: Vec<usize>,
    resolved: bool,
}

/// The abstract scheduler: a costless replay of the engine's wake
/// discipline. Mirrors `engine::Engine::{run, run_thread, run_stream,
/// begin_sync, advance_head, process_collective}` exactly — same
/// initial wake order, same FIFO wake queue with dedup flags, same
/// blocking rules — so its terminal stuck set matches the engine's.
struct AbstractRun<'p, 'a> {
    prep: &'p PreparedJob<'a>,
    threads: Vec<AThread>,
    streams: Vec<AStream>,
    events: Vec<AEvent>,
    tokens: Vec<AToken>,
    colls: Vec<AColl>,
    queue: VecDeque<AWake>,
    queued_threads: Vec<bool>,
    queued_streams: Vec<bool>,
    /// Raw (per-rank) event id per dense event index, for diagnostics.
    raw_event: Vec<u32>,
    /// Raw token id per dense token index, for diagnostics.
    raw_token: Vec<u32>,
}

impl<'p, 'a> AbstractRun<'p, 'a> {
    fn new(prep: &'p PreparedJob<'a>, job: &LoweredJob) -> Self {
        let (raw_event, raw_token) = raw_ids(job);
        AbstractRun {
            prep,
            threads: prep
                .threads
                .iter()
                .map(|_| AThread {
                    pc: 0,
                    blocked: ABlock::Ready,
                })
                .collect(),
            streams: prep.streams.iter().map(|_| AStream::default()).collect(),
            events: (0..prep.n_events).map(|_| AEvent::default()).collect(),
            tokens: (0..prep.n_tokens).map(|_| AToken::default()).collect(),
            colls: prep.collectives.iter().map(|_| AColl::default()).collect(),
            queue: VecDeque::new(),
            queued_threads: vec![false; prep.threads.len()],
            queued_streams: vec![false; prep.streams.len()],
            raw_event,
            raw_token,
        }
    }

    fn wake_thread(&mut self, i: usize) {
        if !self.queued_threads[i] {
            self.queued_threads[i] = true;
            self.queue.push_back(AWake::Thread(i));
        }
    }

    fn wake_stream(&mut self, i: usize) {
        if !self.queued_streams[i] {
            self.queued_streams[i] = true;
            self.queue.push_back(AWake::Stream(i));
        }
    }

    /// Runs to quiescence, then reports any remaining work as a
    /// [`VerifyError::Deadlock`] chain.
    fn check(mut self, kinds: &HashMap<(u64, u32), CollectiveKind>) -> Result<(), VerifyError> {
        for i in 0..self.threads.len() {
            self.wake_thread(i);
        }
        while let Some(w) = self.queue.pop_front() {
            match w {
                AWake::Thread(i) => {
                    self.queued_threads[i] = false;
                    self.run_thread(i);
                }
                AWake::Stream(i) => {
                    self.queued_streams[i] = false;
                    self.run_stream(i);
                }
            }
        }
        self.diagnose(kinds)
    }

    fn run_thread(&mut self, i: usize) {
        let prep = self.prep;
        let ops = prep.threads[i].ops.as_slice();
        match self.threads[i].blocked {
            ABlock::Done => return,
            ABlock::Ready => {}
            ABlock::DeviceDrain(pending) if pending > 0 => return,
            ABlock::StreamDrain | ABlock::DeviceDrain(_) | ABlock::Token(_) => {
                self.threads[i].blocked = ABlock::Ready;
            }
        }
        while self.threads[i].pc < ops.len() {
            match ops[self.threads[i].pc] {
                ExecOp::CpuOp { .. } | ExecOp::AnnotationBegin { .. } | ExecOp::AnnotationEnd => {}
                ExecOp::Launch { stream, .. } => self.enqueue(stream as usize, AEntry::Kernel),
                ExecOp::LaunchColl { stream, coll, .. } => self.enqueue(
                    stream as usize,
                    AEntry::Coll {
                        coll,
                        arrived: false,
                    },
                ),
                ExecOp::EventRecord { event, stream, .. } => {
                    self.enqueue(stream as usize, AEntry::Record { event });
                }
                ExecOp::StreamWait { event, stream, .. } => {
                    self.enqueue(stream as usize, AEntry::WaitEv { event });
                }
                ExecOp::StreamSync { stream, .. } => {
                    let si = stream as usize;
                    let upto = self.streams[si].entries.len();
                    if !self.begin_sync(i, &[(si, upto)]) {
                        self.threads[i].pc += 1;
                        return;
                    }
                }
                ExecOp::DeviceSync => {
                    let targets: Vec<(usize, usize)> = prep.rank_streams
                        [prep.threads[i].prog as usize]
                        .iter()
                        .map(|&si| (si as usize, self.streams[si as usize].entries.len()))
                        .collect();
                    if !self.begin_sync(i, &targets) {
                        self.threads[i].pc += 1;
                        return;
                    }
                }
                ExecOp::SignalPeer { token } => {
                    let tk = &mut self.tokens[token as usize];
                    tk.signaled = true;
                    let waiters = std::mem::take(&mut tk.waiters);
                    for w in waiters {
                        self.wake_thread(w);
                    }
                }
                ExecOp::WaitPeer { token } => {
                    if !self.tokens[token as usize].signaled {
                        self.tokens[token as usize].waiters.push(i);
                        self.threads[i].blocked = ABlock::Token(token);
                        self.threads[i].pc += 1;
                        return;
                    }
                }
            }
            self.threads[i].pc += 1;
        }
        self.threads[i].blocked = ABlock::Done;
    }

    /// Mirrors `Engine::begin_sync`: registers drain waiters, returns
    /// `true` when all targets are already drained.
    fn begin_sync(&mut self, thread: usize, targets: &[(usize, usize)]) -> bool {
        let mut pending = 0;
        for &(si, upto) in targets {
            if self.streams[si].head < upto {
                self.streams[si].waiters.push((thread, upto));
                pending += 1;
            }
        }
        if pending == 0 {
            true
        } else {
            self.threads[thread].blocked = if targets.len() == 1 {
                ABlock::StreamDrain
            } else {
                ABlock::DeviceDrain(pending)
            };
            false
        }
    }

    fn enqueue(&mut self, si: usize, entry: AEntry) {
        self.streams[si].entries.push(entry);
        self.wake_stream(si);
    }

    fn run_stream(&mut self, si: usize) {
        loop {
            let head = self.streams[si].head;
            if head >= self.streams[si].entries.len() {
                return;
            }
            match self.streams[si].entries[head] {
                AEntry::Kernel => self.advance_head(si),
                AEntry::Record { event } => {
                    let ev = &mut self.events[event as usize];
                    ev.completed = true;
                    let waiters = std::mem::take(&mut ev.waiting);
                    for w in waiters {
                        self.wake_stream(w);
                    }
                    self.advance_head(si);
                }
                AEntry::WaitEv { event } => {
                    if self.events[event as usize].completed {
                        self.advance_head(si);
                    } else {
                        let ev = &mut self.events[event as usize];
                        if !ev.waiting.contains(&si) {
                            ev.waiting.push(si);
                        }
                        return;
                    }
                }
                AEntry::Coll { coll, arrived } => {
                    let ci = coll as usize;
                    if !arrived {
                        if let AEntry::Coll { arrived, .. } = &mut self.streams[si].entries[head] {
                            *arrived = true;
                        }
                        self.colls[ci].arrivals.push(si);
                    }
                    if !self.colls[ci].resolved
                        && self.colls[ci].arrivals.len() == self.prep.collectives[ci].expected
                    {
                        self.colls[ci].resolved = true;
                        let arrivals = self.colls[ci].arrivals.clone();
                        for o in arrivals {
                            if o != si {
                                self.wake_stream(o);
                            }
                        }
                    }
                    if self.colls[ci].resolved {
                        self.advance_head(si);
                    } else {
                        return;
                    }
                }
            }
        }
    }

    fn advance_head(&mut self, si: usize) {
        self.streams[si].head += 1;
        let head = self.streams[si].head;
        let mut released = Vec::new();
        self.streams[si].waiters.retain(|&(thread, upto)| {
            if head >= upto {
                released.push(thread);
                false
            } else {
                true
            }
        });
        for thread in released {
            match &mut self.threads[thread].blocked {
                ABlock::StreamDrain => self.wake_thread(thread),
                ABlock::DeviceDrain(pending) => {
                    *pending -= 1;
                    if *pending == 0 {
                        self.wake_thread(thread);
                    }
                }
                _ => {}
            }
        }
    }

    /// At quiescence: clean if everything finished, otherwise walk the
    /// wait-for graph from the first stuck entity and report the chain.
    fn diagnose(&self, kinds: &HashMap<(u64, u32), CollectiveKind>) -> Result<(), VerifyError> {
        let stuck_thread = self
            .threads
            .iter()
            .position(|t| !matches!(t.blocked, ABlock::Done))
            .map(Node::Thread);
        let stuck_stream = self
            .streams
            .iter()
            .enumerate()
            .find(|(_, s)| s.head < s.entries.len())
            .map(|(si, _)| Node::Stream(si));
        let Some(start) = stuck_thread.or(stuck_stream) else {
            return Ok(());
        };

        let mut chain: Vec<CycleStep> = Vec::new();
        let mut visited: Vec<Node> = Vec::new();
        let mut node = start;
        let mut cycle = false;
        while chain.len() < 64 {
            if let Some(pos) = visited.iter().position(|n| *n == node) {
                chain.drain(..pos);
                cycle = true;
                break;
            }
            visited.push(node);
            let (rank, entity) = self.describe(node);
            let (next, waits_on) = self.out_edge(node, kinds);
            chain.push(CycleStep {
                rank,
                entity,
                waits_on,
            });
            match next {
                Some(n) => node = n,
                None => break,
            }
        }
        Err(VerifyError::Deadlock { chain, cycle })
    }

    fn describe(&self, node: Node) -> (u32, String) {
        match node {
            Node::Thread(i) => {
                let meta = &self.prep.threads[i];
                (
                    meta.rank,
                    format!(
                        "{:?} thread (op {}/{})",
                        meta.tid,
                        self.threads[i].pc,
                        meta.ops.len()
                    ),
                )
            }
            Node::Stream(si) => {
                let meta = self.prep.streams[si];
                (
                    meta.rank,
                    format!(
                        "stream {} (entry {}/{})",
                        meta.sid,
                        self.streams[si].head,
                        self.streams[si].entries.len()
                    ),
                )
            }
        }
    }

    /// The wait-for edge out of a stuck entity: a description of the
    /// awaited resource, plus the entity expected to produce it (or
    /// `None` when nothing remaining can).
    fn out_edge(
        &self,
        node: Node,
        kinds: &HashMap<(u64, u32), CollectiveKind>,
    ) -> (Option<Node>, String) {
        match node {
            Node::Thread(i) => self.thread_edge(i),
            Node::Stream(si) => self.stream_edge(si, kinds),
        }
    }

    fn thread_edge(&self, i: usize) -> (Option<Node>, String) {
        match self.threads[i].blocked {
            ABlock::StreamDrain | ABlock::DeviceDrain(_) => {
                for (si, s) in self.streams.iter().enumerate() {
                    if s.waiters.iter().any(|&(t, _)| t == i) {
                        let meta = self.prep.streams[si];
                        return (
                            Some(Node::Stream(si)),
                            format!("drain of stream {} on rank {}", meta.sid, meta.rank),
                        );
                    }
                }
                (None, "a stream drain no stream owes".to_string())
            }
            ABlock::Token(token) => {
                let raw = self.raw_token[token as usize];
                let prog = self.prep.threads[i].prog;
                for (j, tm) in self.prep.threads.iter().enumerate() {
                    if tm.prog != prog {
                        continue;
                    }
                    let pc = self.threads[j].pc.min(tm.ops.len());
                    let produces = tm.ops[pc..]
                        .iter()
                        .any(|op| matches!(op, ExecOp::SignalPeer { token: t } if *t == token));
                    if produces {
                        return (
                            Some(Node::Thread(j)),
                            format!("token {raw} signaled by rank {} {:?}", tm.rank, tm.tid),
                        );
                    }
                }
                (
                    None,
                    format!("token {raw} — which nothing remaining will signal"),
                )
            }
            ABlock::Ready | ABlock::Done => (None, "nothing (not actually blocked)".to_string()),
        }
    }

    fn stream_edge(
        &self,
        si: usize,
        kinds: &HashMap<(u64, u32), CollectiveKind>,
    ) -> (Option<Node>, String) {
        let head = self.streams[si].head;
        match self.streams[si].entries[head] {
            AEntry::Coll { coll, .. } => {
                let ci = coll as usize;
                let info = self.prep.collectives[ci];
                let arrived: BTreeSet<u32> = self.colls[ci]
                    .arrivals
                    .iter()
                    .map(|&s| self.prep.streams[s].rank)
                    .collect();
                let missing: Vec<u32> = info
                    .members
                    .iter()
                    .copied()
                    .filter(|r| !arrived.contains(r))
                    .collect();
                let kind = kinds
                    .get(&(info.group, info.seq))
                    .map_or_else(|| "collective".to_string(), |k| format!("{k:?}"));
                let awaiting = missing.first().copied();
                let desc = format!(
                    "{kind} group {} seq {} ({}/{} arrived{})",
                    info.group,
                    info.seq,
                    self.colls[ci].arrivals.len(),
                    info.expected,
                    awaiting.map_or(String::new(), |m| format!("; awaiting rank {m}")),
                );
                let Some(m) = awaiting else {
                    return (None, format!("{desc} — which nothing will resolve"));
                };
                for (sj, s) in self.streams.iter().enumerate() {
                    if self.prep.streams[sj].rank != m {
                        continue;
                    }
                    let holds = s.entries[s.head..].iter().any(
                        |e| matches!(e, AEntry::Coll { coll: c, arrived: false } if *c == coll),
                    );
                    if holds {
                        return (Some(Node::Stream(sj)), desc);
                    }
                }
                for (j, tm) in self.prep.threads.iter().enumerate() {
                    if tm.rank != m {
                        continue;
                    }
                    let pc = self.threads[j].pc.min(tm.ops.len());
                    let launches = tm.ops[pc..]
                        .iter()
                        .any(|op| matches!(op, ExecOp::LaunchColl { coll: c, .. } if *c == coll));
                    if launches {
                        return (Some(Node::Thread(j)), desc);
                    }
                }
                (None, format!("{desc} — which rank {m} will never launch"))
            }
            AEntry::WaitEv { event } => {
                let raw = self.raw_event[event as usize];
                let rank = self.prep.streams[si].rank;
                let desc = format!("completion of event {raw} on rank {rank}");
                for (sj, s) in self.streams.iter().enumerate() {
                    let holds = s.entries[s.head..]
                        .iter()
                        .any(|e| matches!(e, AEntry::Record { event: ev } if *ev == event));
                    if holds {
                        return (Some(Node::Stream(sj)), desc);
                    }
                }
                for (j, tm) in self.prep.threads.iter().enumerate() {
                    let pc = self.threads[j].pc.min(tm.ops.len());
                    let records = tm.ops[pc..].iter().any(
                        |op| matches!(op, ExecOp::EventRecord { event: ev, .. } if *ev == event),
                    );
                    if records {
                        return (Some(Node::Thread(j)), desc);
                    }
                }
                (None, format!("{desc} — which nothing will record"))
            }
            AEntry::Kernel | AEntry::Record { .. } => {
                (None, "nothing (head entry is always runnable)".to_string())
            }
        }
    }
}

/// Replays `PreparedJob::new`'s dense-id assignment to recover the raw
/// per-rank event and token ids for diagnostics (the dense form only
/// keeps raw event ids on `StreamWait`/`EventRecord` ops).
fn raw_ids(job: &LoweredJob) -> (Vec<u32>, Vec<u32>) {
    let mut event_index: HashMap<(u32, u32), u32> = HashMap::new();
    let mut token_index: HashMap<(u32, u32), u32> = HashMap::new();
    let mut raw_event = Vec::new();
    let mut raw_token = Vec::new();
    for (pi, program) in job.programs.iter().enumerate() {
        let prog = pi as u32;
        for t in &program.threads {
            for op in &t.ops {
                match *op {
                    HostOp::EventRecord { event, .. } | HostOp::StreamWait { event, .. } => {
                        event_index.entry((prog, event)).or_insert_with(|| {
                            raw_event.push(event);
                            (raw_event.len() - 1) as u32
                        });
                    }
                    HostOp::SignalPeer { token } | HostOp::WaitPeer { token } => {
                        token_index.entry((prog, token)).or_insert_with(|| {
                            raw_token.push(token);
                            (raw_token.len() - 1) as u32
                        });
                    }
                    _ => {}
                }
            }
        }
    }
    (raw_event, raw_token)
}
