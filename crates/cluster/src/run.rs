//! High-level ground-truth runs: profile an iteration, measure many.

use crate::engine::{execute, EngineError, EngineOutput};
use crate::exec::PreparedJob;
use crate::jitter::JitterModel;
use crate::lower::{lower, LoweredJob, SimConfig};
use crate::sink::EngineMetrics;
use lumos_cost::{CostModel, HostOverheads};
use lumos_model::ModelError;
use lumos_trace::{ClusterTrace, Dur};
use std::error::Error;
use std::fmt;

/// Errors from ground-truth simulation.
#[derive(Debug)]
pub enum ClusterError {
    /// Invalid model / deployment configuration.
    Config(ModelError),
    /// The engine could not complete the job.
    Engine(EngineError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Config(e) => write!(f, "invalid configuration: {e}"),
            ClusterError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Config(e) => Some(e),
            ClusterError::Engine(e) => Some(e),
        }
    }
}

impl From<ModelError> for ClusterError {
    fn from(e: ModelError) -> Self {
        ClusterError::Config(e)
    }
}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

/// Iteration-time statistics from repeated measured runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredStats {
    /// Per-iteration makespans.
    pub iterations: Vec<Dur>,
}

impl MeasuredStats {
    /// Mean iteration time.
    pub fn mean(&self) -> Dur {
        if self.iterations.is_empty() {
            return Dur::ZERO;
        }
        let total: u128 = self.iterations.iter().map(|d| d.as_ns() as u128).sum();
        Dur((total / self.iterations.len() as u128) as u64)
    }

    /// Nearest-rank `q`-quantile iteration time (`q` clamped to
    /// `[0, 1]`; [`Dur::ZERO`] when no iterations were measured).
    pub fn percentile(&self, q: f64) -> Dur {
        if self.iterations.is_empty() {
            return Dur::ZERO;
        }
        let mut sorted = self.iterations.clone();
        sorted.sort_unstable();
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Nearest-rank 95th-percentile iteration time — the tail metric
    /// the jitter-robustness search pass reports.
    pub fn p95(&self) -> Dur {
        self.percentile(0.95)
    }

    /// Sample standard deviation (0 for fewer than 2 samples).
    pub fn std_dev(&self) -> Dur {
        let n = self.iterations.len();
        if n < 2 {
            return Dur::ZERO;
        }
        let mean = self.mean().as_ns() as f64;
        let var = self
            .iterations
            .iter()
            .map(|d| {
                let x = d.as_ns() as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / (n - 1) as f64;
        Dur(var.sqrt().round() as u64)
    }
}

/// A configured ground-truth cluster: the production-fleet substitute.
///
/// Owns the lowered job so repeated iterations don't re-lower.
pub struct GroundTruthCluster<C> {
    job: LoweredJob,
    cost: C,
    overheads: HostOverheads,
    jitter: JitterModel,
}

impl<C: CostModel> GroundTruthCluster<C> {
    /// Lowers `config` onto a cluster priced by `cost`.
    ///
    /// # Errors
    ///
    /// Returns configuration-validity errors.
    pub fn new(config: &SimConfig, cost: C) -> Result<Self, ClusterError> {
        Ok(GroundTruthCluster {
            job: lower(config)?,
            cost,
            overheads: HostOverheads::default(),
            jitter: JitterModel::none(),
        })
    }

    /// Sets the run-to-run variance model (builder style).
    pub fn with_jitter(mut self, jitter: JitterModel) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets host-overhead constants (builder style).
    pub fn with_overheads(mut self, overheads: HostOverheads) -> Self {
        self.overheads = overheads;
        self
    }

    /// The lowered job (program + communicator membership).
    pub fn job(&self) -> &LoweredJob {
        &self.job
    }

    /// The configuration this cluster runs.
    pub fn config(&self) -> &SimConfig {
        &self.job.config
    }

    /// Executes iteration `iteration` and returns its full trace —
    /// "profiling one iteration with Kineto".
    ///
    /// # Errors
    ///
    /// Returns engine deadlock errors (lowering bugs).
    pub fn profile_iteration(&self, iteration: u64) -> Result<EngineOutput, ClusterError> {
        Ok(execute(
            &self.job,
            &self.cost,
            &self.overheads,
            &self.jitter,
            iteration,
        )?)
    }

    /// Executes iteration `iteration` in metrics-only mode: the same
    /// deterministic simulation as [`Self::profile_iteration`], but
    /// only aggregates are accumulated — no trace events exist.
    ///
    /// # Errors
    ///
    /// Returns engine deadlock errors (lowering bugs).
    pub fn metrics_iteration(&self, iteration: u64) -> Result<EngineMetrics, ClusterError> {
        let prep = PreparedJob::new(&self.job)?;
        Ok(prep.execute_metrics(&self.cost, &self.overheads, &self.jitter, iteration)?)
    }

    /// Runs `n` iterations and collects only makespans — "measuring
    /// real training time" without trace collection. Uses the
    /// metrics-only engine mode: the job is prepared once and no
    /// trace events are materialized, so measurement is bounded by
    /// model math, not bookkeeping.
    ///
    /// # Errors
    ///
    /// Returns engine deadlock errors.
    pub fn measure(&self, n: usize) -> Result<MeasuredStats, ClusterError> {
        let prep = PreparedJob::new(&self.job)?;
        let mut iterations = Vec::with_capacity(n);
        for i in 0..n {
            iterations.push(
                prep.execute_metrics(&self.cost, &self.overheads, &self.jitter, i as u64)?
                    .makespan,
            );
        }
        Ok(MeasuredStats { iterations })
    }
}

/// One-call convenience: profile a single iteration of `config` with
/// realistic jitter under the default H100 cost model.
///
/// # Errors
///
/// Returns configuration or engine errors.
pub fn profile(config: &SimConfig, seed: u64) -> Result<ClusterTrace, ClusterError> {
    let cluster = GroundTruthCluster::new(config, lumos_cost::AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(seed));
    Ok(cluster.profile_iteration(0)?.trace)
}

/// One-call convenience: profile one inference request batch
/// (prefill + decode) with realistic jitter under the default H100
/// cost model.
///
/// # Errors
///
/// Returns configuration or engine errors.
pub fn profile_inference(
    setup: &lumos_model::InferenceSetup,
    seed: u64,
) -> Result<ClusterTrace, ClusterError> {
    let job = crate::inference::lower_inference(setup)?;
    let out = execute(
        &job,
        &lumos_cost::AnalyticalCostModel::h100(),
        &HostOverheads::default(),
        &JitterModel::realistic(seed),
        0,
    )?;
    Ok(out.trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_cost::AnalyticalCostModel;
    use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};

    fn tiny() -> SimConfig {
        SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(1, 2, 1).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 4,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    #[test]
    fn measure_reports_stats() {
        let cluster = GroundTruthCluster::new(&tiny(), AnalyticalCostModel::h100())
            .unwrap()
            .with_jitter(JitterModel::realistic(3));
        let stats = cluster.measure(5).unwrap();
        assert_eq!(stats.iterations.len(), 5);
        assert!(stats.mean() > Dur::ZERO);
        assert!(stats.std_dev() > Dur::ZERO);
        // CV should be modest for realistic jitter.
        let cv = stats.std_dev().as_secs_f64() / stats.mean().as_secs_f64();
        assert!(cv < 0.15, "cv {cv}");
    }

    #[test]
    fn zero_jitter_measurements_identical() {
        let cluster = GroundTruthCluster::new(&tiny(), AnalyticalCostModel::h100()).unwrap();
        let stats = cluster.measure(3).unwrap();
        assert_eq!(stats.std_dev(), Dur::ZERO);
        assert_eq!(stats.iterations[0], stats.iterations[2]);
    }

    #[test]
    fn profile_convenience() {
        let trace = profile(&tiny(), 7).unwrap();
        assert_eq!(trace.world_size(), 2);
        trace.validate().unwrap();
        assert!(trace.label.contains("tiny"));
    }

    #[test]
    fn invalid_config_surfaces_as_error() {
        let mut cfg = tiny();
        cfg.parallelism = Parallelism::new(3, 1, 1).unwrap(); // 4 heads % 3 != 0
        assert!(matches!(
            GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100()),
            Err(ClusterError::Config(_))
        ));
    }

    #[test]
    fn empty_stats() {
        let s = MeasuredStats { iterations: vec![] };
        assert_eq!(s.mean(), Dur::ZERO);
        assert_eq!(s.std_dev(), Dur::ZERO);
        assert_eq!(s.p95(), Dur::ZERO);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = MeasuredStats {
            iterations: (1..=100).map(Dur).collect(),
        };
        assert_eq!(s.percentile(0.0), Dur(1));
        assert_eq!(s.percentile(0.5), Dur(50));
        assert_eq!(s.p95(), Dur(95));
        assert_eq!(s.percentile(1.0), Dur(100));
        // Out-of-range and NaN quantiles clamp instead of panicking.
        assert_eq!(s.percentile(-1.0), Dur(1));
        assert_eq!(s.percentile(2.0), Dur(100));
        assert_eq!(s.percentile(f64::NAN), Dur(100));
        let one = MeasuredStats {
            iterations: vec![Dur(7)],
        };
        assert_eq!(one.p95(), Dur(7));
    }
}
