//! Event sinks: what the engine does with the events it computes.
//!
//! The discrete-event engine produces the same timeline either way;
//! the sink decides how much of it is materialized:
//!
//! * [`FullTraceSink`] builds complete per-rank Kineto-style
//!   [`TraceEvent`] streams — what `profile`/replay/trace-export
//!   consumers need;
//! * [`MetricsSink`] accumulates only the aggregates search consumes —
//!   makespan, per-rank spans, per-stream busy time, collective
//!   rendezvous waits, and pipeline-boundary SendRecv time — without
//!   constructing a single [`TraceEvent`]. The simulated inner loop is
//!   allocation-free: every callback is a handful of integer
//!   min/max/add updates on pre-sized vectors.
//!
//! Both sinks observe exactly the same callbacks in exactly the same
//! order, so a [`MetricsSink`] run is bit-identical in every shared
//! statistic to deriving the same numbers from a [`FullTraceSink`]
//! trace (asserted by the `sink` equivalence test suite).

use crate::exec::PreparedJob;
use crate::program::NameId;
use lumos_trace::{
    ClusterTrace, CollectiveKind, CudaRuntimeKind, Dur, KernelClass, RankTrace, StreamId, ThreadId,
    TraceEvent, Ts,
};

/// Receiver of the engine's computed events (see module docs).
///
/// `prog` is the dense program index (the rank slot), letting sinks
/// index pre-sized vectors instead of hashing rank ids. Names arrive
/// as interned [`NameId`]s: the metrics sink never resolves them, so
/// the hot loop pays for string handling only when a trace is
/// actually materialized.
pub(crate) trait EventSink {
    /// A framework-operator dispatch on a host thread.
    fn cpu_op(&mut self, prog: u32, tid: ThreadId, name: NameId, ts: Ts, dur: Dur);
    /// A CUDA runtime call on a host thread (`corr` 0 = none).
    fn runtime(
        &mut self,
        prog: u32,
        tid: ThreadId,
        kind: CudaRuntimeKind,
        corr: u64,
        ts: Ts,
        dur: Dur,
    );
    /// A user-annotation range on a host thread.
    fn annotation(&mut self, prog: u32, tid: ThreadId, name: NameId, ts: Ts, dur: Dur);
    /// A kernel execution on a stream (`stream` is the dense index,
    /// `sid` the original id).
    #[allow(clippy::too_many_arguments)]
    fn kernel(
        &mut self,
        prog: u32,
        stream: u32,
        sid: StreamId,
        name: NameId,
        class: KernelClass,
        corr: u64,
        ts: Ts,
        dur: Dur,
    );
    /// Exposed rendezvous wait of one collective member (instance
    /// start minus this member's ready time).
    fn collective_wait(&mut self, prog: u32, wait: Dur);
}

// ---------------------------------------------------------------- //
// Full-trace sink
// ---------------------------------------------------------------- //

/// Materializes complete per-rank traces (the pre-existing engine
/// behavior). Holds the prepared job to resolve interned names.
pub(crate) struct FullTraceSink<'p> {
    prep: &'p PreparedJob<'p>,
    ranks: Vec<RankTrace>,
}

impl<'p> FullTraceSink<'p> {
    pub(crate) fn new(prep: &'p PreparedJob<'p>) -> Self {
        FullTraceSink {
            prep,
            ranks: prep.ranks.iter().map(|&r| RankTrace::new(r)).collect(),
        }
    }

    /// Sorts and assembles the cluster trace.
    pub(crate) fn finish(self, label: String) -> (ClusterTrace, Dur) {
        let mut ranks: Vec<RankTrace> = self.ranks;
        ranks.sort_unstable_by_key(|r| r.rank());
        let mut cluster = ClusterTrace::new(label);
        for mut t in ranks {
            t.sort();
            cluster.push_rank(t);
        }
        let makespan = cluster.makespan();
        (cluster, makespan)
    }

    fn push(&mut self, prog: u32, event: TraceEvent) {
        self.ranks[prog as usize].push(event);
    }
}

impl EventSink for FullTraceSink<'_> {
    fn cpu_op(&mut self, prog: u32, tid: ThreadId, name: NameId, ts: Ts, dur: Dur) {
        let name = self.prep.name(prog, name).clone();
        self.push(prog, TraceEvent::cpu_op(name, ts, dur, tid));
    }

    fn runtime(
        &mut self,
        prog: u32,
        tid: ThreadId,
        kind: CudaRuntimeKind,
        corr: u64,
        ts: Ts,
        dur: Dur,
    ) {
        let mut ev = TraceEvent::cuda_runtime(kind, ts, dur, tid);
        if corr != 0 {
            ev = ev.with_correlation(corr);
        }
        self.push(prog, ev);
    }

    fn annotation(&mut self, prog: u32, tid: ThreadId, name: NameId, ts: Ts, dur: Dur) {
        let name = self.prep.name(prog, name).clone();
        self.push(prog, TraceEvent::annotation(name, ts, dur, tid));
    }

    fn kernel(
        &mut self,
        prog: u32,
        _stream: u32,
        sid: StreamId,
        name: NameId,
        class: KernelClass,
        corr: u64,
        ts: Ts,
        dur: Dur,
    ) {
        let name = self.prep.name(prog, name).clone();
        self.push(
            prog,
            TraceEvent::kernel(name, ts, dur, sid)
                .with_correlation(corr)
                .with_class(class),
        );
    }

    fn collective_wait(&mut self, _prog: u32, _wait: Dur) {}
}

// ---------------------------------------------------------------- //
// Metrics-only sink
// ---------------------------------------------------------------- //

#[derive(Debug, Clone, Copy)]
struct RankAgg {
    min_ts: Ts,
    max_end: Ts,
    events: usize,
    coll_wait_ns: u128,
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamAgg {
    busy_ns: u64,
    kernels: usize,
}

/// Accumulates aggregates only; never constructs a [`TraceEvent`].
pub(crate) struct MetricsSink {
    ranks: Vec<RankAgg>,
    streams: Vec<StreamAgg>,
    sendrecv_ns: u128,
    total_events: usize,
}

impl MetricsSink {
    pub(crate) fn new(prep: &PreparedJob<'_>) -> Self {
        MetricsSink {
            ranks: vec![
                RankAgg {
                    min_ts: Ts(u64::MAX),
                    max_end: Ts::ZERO,
                    events: 0,
                    coll_wait_ns: 0,
                };
                prep.ranks.len()
            ],
            streams: vec![StreamAgg::default(); prep.streams.len()],
            sendrecv_ns: 0,
            total_events: 0,
        }
    }

    #[inline]
    fn observe(&mut self, prog: u32, ts: Ts, dur: Dur) {
        let r = &mut self.ranks[prog as usize];
        r.min_ts = r.min_ts.min(ts);
        r.max_end = r.max_end.max(ts + dur);
        r.events += 1;
        self.total_events += 1;
    }

    pub(crate) fn finish(self, prep: &PreparedJob<'_>) -> EngineMetrics {
        // Makespan = hull of per-rank spans, exactly as
        // `ClusterTrace::makespan` computes it over a full trace
        // (ranks without events contribute nothing).
        let mut span: Option<(Ts, Ts)> = None;
        let ranks: Vec<RankMetrics> = self
            .ranks
            .iter()
            .zip(&prep.ranks)
            .map(|(agg, &rank)| {
                let (start, end) = if agg.events == 0 {
                    (Ts::ZERO, Ts::ZERO)
                } else {
                    span = Some(match span {
                        None => (agg.min_ts, agg.max_end),
                        Some((lo, hi)) => (lo.min(agg.min_ts), hi.max(agg.max_end)),
                    });
                    (agg.min_ts, agg.max_end)
                };
                RankMetrics {
                    rank,
                    start,
                    end,
                    events: agg.events,
                    collective_wait: dur_from_ns(agg.coll_wait_ns),
                }
            })
            .collect();
        let streams: Vec<StreamBusy> = self
            .streams
            .iter()
            .zip(&prep.streams)
            .map(|(agg, meta)| StreamBusy {
                rank: meta.rank,
                stream: meta.sid,
                busy: Dur(agg.busy_ns),
                kernels: agg.kernels,
            })
            .collect();
        let collective_wait = dur_from_ns(self.ranks.iter().map(|r| r.coll_wait_ns).sum::<u128>());
        EngineMetrics {
            makespan: span.map_or(Dur::ZERO, |(lo, hi)| hi - lo),
            ranks,
            streams,
            collective_wait,
            total_events: self.total_events,
            sendrecv_ns: self.sendrecv_ns,
        }
    }
}

fn dur_from_ns(ns: u128) -> Dur {
    Dur(u64::try_from(ns).unwrap_or(u64::MAX))
}

impl EventSink for MetricsSink {
    fn cpu_op(&mut self, prog: u32, _tid: ThreadId, _name: NameId, ts: Ts, dur: Dur) {
        self.observe(prog, ts, dur);
    }

    fn runtime(
        &mut self,
        prog: u32,
        _tid: ThreadId,
        _kind: CudaRuntimeKind,
        _corr: u64,
        ts: Ts,
        dur: Dur,
    ) {
        self.observe(prog, ts, dur);
    }

    fn annotation(&mut self, prog: u32, _tid: ThreadId, _name: NameId, ts: Ts, dur: Dur) {
        self.observe(prog, ts, dur);
    }

    fn kernel(
        &mut self,
        prog: u32,
        stream: u32,
        _sid: StreamId,
        _name: NameId,
        class: KernelClass,
        _corr: u64,
        ts: Ts,
        dur: Dur,
    ) {
        self.observe(prog, ts, dur);
        let s = &mut self.streams[stream as usize];
        s.busy_ns += dur.as_ns();
        s.kernels += 1;
        if let KernelClass::Collective(meta) = class {
            if meta.kind == CollectiveKind::SendRecv {
                self.sendrecv_ns += dur.as_ns() as u128;
            }
        }
    }

    fn collective_wait(&mut self, prog: u32, wait: Dur) {
        self.ranks[prog as usize].coll_wait_ns += wait.as_ns() as u128;
    }
}

// ---------------------------------------------------------------- //
// Public metrics types
// ---------------------------------------------------------------- //

/// Aggregates of one rank's simulated timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankMetrics {
    /// Global rank.
    pub rank: u32,
    /// Earliest event start (`Ts::ZERO` when the rank emitted
    /// nothing).
    pub start: Ts,
    /// Latest event end.
    pub end: Ts,
    /// Events the rank would have emitted under a full trace.
    pub events: usize,
    /// Total exposed collective rendezvous wait (instance start minus
    /// member-ready, summed over this rank's collective kernels).
    pub collective_wait: Dur,
}

/// Aggregates of one CUDA stream's simulated kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamBusy {
    /// Owning global rank.
    pub rank: u32,
    /// Stream id.
    pub stream: StreamId,
    /// Summed kernel duration.
    pub busy: Dur,
    /// Kernel count.
    pub kernels: usize,
}

/// The result of a metrics-only engine execution: everything the
/// simulation-refined search consumes, with zero [`TraceEvent`]
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// End-to-end iteration time (bit-identical to
    /// [`ClusterTrace::makespan`] of the equivalent full trace).
    pub makespan: Dur,
    /// Per-rank spans and event counts, in program order.
    pub ranks: Vec<RankMetrics>,
    /// Per-stream busy time, in stream-discovery order.
    pub streams: Vec<StreamBusy>,
    /// Total exposed collective rendezvous wait across all ranks.
    pub collective_wait: Dur,
    /// Events a full trace of this execution would contain.
    pub total_events: usize,
    /// Total SendRecv kernel nanoseconds across all ranks (pipeline-
    /// boundary traffic; each member's kernel counts once, as in a
    /// trace).
    sendrecv_ns: u128,
}

impl EngineMetrics {
    /// Mean per-rank time spent in pipeline-boundary SendRecv kernels
    /// — the same number the trace-walking
    /// `pipeline_comm_secs_per_rank` derives from a full trace, used
    /// by the search's interleaving adjustment.
    pub fn pipeline_comm_secs_per_rank(&self) -> f64 {
        let world = self.ranks.len().max(1) as f64;
        self.sendrecv_ns as f64 / 1e9 / world
    }

    /// Total SendRecv kernel nanoseconds across all ranks.
    pub fn sendrecv_ns(&self) -> u128 {
        self.sendrecv_ns
    }
}
