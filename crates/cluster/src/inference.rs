//! Lowering for inference (serving) workloads: prefill + decode.
//!
//! Produces the instruction stream a tensor-parallel inference engine
//! executes for one request batch: a prefill pass over the prompt,
//! then `decode_tokens` autoregressive steps. Every decode step ends
//! with a `cudaStreamSynchronize` — the engine must read the sampled
//! token back before it can launch the next step — which exercises the
//! GPU→CPU dependency class (§3.3.2) far more heavily than training
//! does. TP collectives use the same event-fenced two-stream pattern
//! as training, so the inter-stream dependency machinery is exercised
//! identically.

use crate::lower::{kernel_of, LoweredJob, NameCache, SimConfig};
use crate::program::{streams, HostOp, KernelSpec, NameId, Program};
use lumos_model::inference::{layer_decode_ops, layer_prefill_ops, sampling_ops, InferenceSetup};
use lumos_model::ops::{CollOp, OpBody, OpDesc};
use lumos_model::{BatchConfig, CommScope, GroupRegistry, ModelError, ScheduleKind};
use lumos_trace::{CollectiveKind, CommMeta, KernelClass};
use std::collections::HashMap;

/// Lowers an inference setup into per-rank programs (one rank per
/// tensor-parallel shard).
///
/// # Errors
///
/// Returns configuration-validity errors (zero dims, indivisible
/// heads/layers).
pub fn lower_inference(setup: &InferenceSetup) -> Result<LoweredJob, ModelError> {
    setup.validate()?;
    let par = setup.parallelism();
    let registry = GroupRegistry::new(par);
    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();

    let mut programs = Vec::with_capacity(par.world_size() as usize);
    for rank in par.all_ranks() {
        let coords = par.coords(rank);
        let tp_group = registry.group_id(CommScope::Tp, coords);
        groups
            .entry(tp_group)
            .or_insert_with(|| registry.members(CommScope::Tp, coords));

        let mut lowerer = InferenceLowerer {
            setup,
            tp_group,
            program: Program::new(rank),
            next_event: 0,
            tp_seq: 0,
            names: NameCache::default(),
        };
        lowerer.emit_request();
        let program = lowerer.program;
        program
            .well_formed()
            .expect("inference lowering must produce well-formed programs");
        programs.push(program);
    }

    // The engine only needs a label-producing config; describe the
    // serving job in training-config vocabulary.
    let config = SimConfig {
        model: {
            let mut m = setup.model.clone();
            m.name = setup.label();
            m
        },
        parallelism: par,
        batch: BatchConfig {
            seq_len: setup.prompt_len,
            microbatch_size: setup.batch_size,
            num_microbatches: 1,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    Ok(LoweredJob {
        programs,
        groups,
        config,
    })
}

struct InferenceLowerer<'a> {
    setup: &'a InferenceSetup,
    tp_group: u64,
    program: Program,
    next_event: u32,
    tp_seq: u32,
    names: NameCache,
}

impl InferenceLowerer<'_> {
    fn intern(&mut self, s: String) -> NameId {
        self.names.intern(&mut self.program, s)
    }

    fn push(&mut self, op: HostOp) {
        self.program.main_mut().push(op);
    }

    fn annotate(&mut self, name: String) {
        let name = self.intern(name);
        self.push(HostOp::AnnotationBegin { name });
    }

    fn end_annotation(&mut self) {
        self.push(HostOp::AnnotationEnd);
    }

    fn fresh_event(&mut self) -> u32 {
        let e = self.next_event;
        self.next_event += 1;
        e
    }

    /// Emits one operator: CPU dispatch plus either a compute-stream
    /// launch or a fully fenced TP collective.
    fn emit_op(&mut self, op: &OpDesc) {
        let name = self.intern(op.name.to_string());
        self.push(HostOp::CpuOp { name });
        match op.body {
            OpBody::Collective {
                op: CollOp::AllReduce,
                scope: CommScope::Tp,
                bytes,
            } => {
                let produce = self.fresh_event();
                self.push(HostOp::EventRecord {
                    event: produce,
                    stream: streams::COMPUTE,
                });
                self.push(HostOp::StreamWait {
                    stream: streams::TP_COMM,
                    event: produce,
                });
                let name = self.intern(CollectiveKind::AllReduce.kernel_name().to_string());
                let seq = self.tp_seq;
                self.tp_seq += 1;
                self.push(HostOp::Launch {
                    spec: KernelSpec {
                        name,
                        class: KernelClass::Collective(CommMeta {
                            kind: CollectiveKind::AllReduce,
                            group: self.tp_group,
                            seq,
                            bytes,
                        }),
                        stream: streams::TP_COMM,
                    },
                });
                let consume = self.fresh_event();
                self.push(HostOp::EventRecord {
                    event: consume,
                    stream: streams::TP_COMM,
                });
                self.push(HostOp::StreamWait {
                    stream: streams::COMPUTE,
                    event: consume,
                });
            }
            OpBody::Collective { .. } => {
                unreachable!("inference lowers only TP all-reduces")
            }
            ref body => {
                let (kname, class) = kernel_of(body);
                let name = self.intern(kname);
                self.push(HostOp::Launch {
                    spec: KernelSpec {
                        name,
                        class,
                        stream: streams::COMPUTE,
                    },
                });
            }
        }
    }

    fn emit_layers(&mut self, phase: &str, step: Option<u32>, ops: &[OpDesc]) {
        for layer in 0..self.setup.model.num_layers {
            match step {
                Some(s) => self.annotate(format!("layer={layer} {phase} step={s}")),
                None => self.annotate(format!("layer={layer} {phase}")),
            }
            for op in ops {
                self.emit_op(op);
            }
            self.end_annotation();
        }
    }

    /// One sampled token: head ops, a tiny vocab-parallel exchange
    /// when sharded, then the blocking read-back.
    fn emit_sample(&mut self, step: u32) {
        self.annotate(format!("sample step={step}"));
        for op in sampling_ops(self.setup) {
            self.emit_op(&op);
        }
        if self.setup.tp > 1 {
            // Vocab-parallel softmax exchanges per-shard max/sum.
            let op = OpDesc {
                name: "nccl:all_reduce_sample_stats",
                body: OpBody::Collective {
                    op: CollOp::AllReduce,
                    scope: CommScope::Tp,
                    bytes: self.setup.batch_size * 8,
                },
            };
            self.emit_op(&op);
        }
        let name = self.intern("read_sampled_token".to_string());
        self.push(HostOp::CpuOp { name });
        self.push(HostOp::StreamSync {
            stream: streams::COMPUTE,
        });
        self.end_annotation();
    }

    fn emit_request(&mut self) {
        self.annotate("inference".to_string());

        self.annotate("prefill".to_string());
        let prefill = layer_prefill_ops(self.setup);
        self.emit_layers("prefill", None, &prefill);
        self.end_annotation();
        self.emit_sample(0);

        for step in 1..=self.setup.decode_tokens {
            self.annotate(format!("decode step={step}"));
            let kv_len = self.setup.prompt_len + step as u64;
            let ops = layer_decode_ops(self.setup, kv_len);
            self.emit_layers("decode", Some(step), &ops);
            self.end_annotation();
            self.emit_sample(step);
        }

        self.end_annotation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::jitter::JitterModel;
    use lumos_cost::{AnalyticalCostModel, HostOverheads};
    use lumos_model::ModelConfig;

    fn tiny_setup(tp: u32) -> InferenceSetup {
        InferenceSetup {
            model: ModelConfig::tiny(),
            tp,
            batch_size: 2,
            prompt_len: 64,
            decode_tokens: 4,
        }
    }

    fn count_ops(job: &LoweredJob, pred: impl Fn(&HostOp) -> bool) -> usize {
        job.programs
            .iter()
            .flat_map(|p| p.threads.iter())
            .flat_map(|t| t.ops.iter())
            .filter(|op| pred(op))
            .count()
    }

    #[test]
    fn one_program_per_tp_shard() {
        let job = lower_inference(&tiny_setup(2)).unwrap();
        assert_eq!(job.programs.len(), 2);
        assert_eq!(job.groups.len(), 1);
        assert_eq!(job.groups.values().next().unwrap(), &vec![0, 1]);
    }

    #[test]
    fn every_step_ends_with_stream_sync() {
        let setup = tiny_setup(1);
        let job = lower_inference(&setup).unwrap();
        let syncs = count_ops(&job, |op| matches!(op, HostOp::StreamSync { .. }));
        // One per sample: prefill + decode_tokens.
        assert_eq!(syncs, 1 + setup.decode_tokens as usize);
    }

    #[test]
    fn decode_kv_lengths_grow() {
        let setup = tiny_setup(1);
        let job = lower_inference(&setup).unwrap();
        let mut kv_lens = Vec::new();
        for t in &job.programs[0].threads {
            for op in &t.ops {
                if let HostOp::Launch { spec } = op {
                    if let KernelClass::AttentionDecode { kv_len, .. } = spec.class {
                        kv_lens.push(kv_len);
                    }
                }
            }
        }
        // num_layers launches per step; lengths strictly grow per step.
        let layers = setup.model.num_layers as usize;
        assert_eq!(kv_lens.len(), layers * setup.decode_tokens as usize);
        assert_eq!(kv_lens[0], setup.prompt_len + 1);
        assert_eq!(*kv_lens.last().unwrap(), setup.prompt_len + 4);
        assert!(kv_lens.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tp_collective_seqs_match_across_shards() {
        let job = lower_inference(&tiny_setup(2)).unwrap();
        let seqs = |rank: usize| -> Vec<(u32, u64)> {
            let mut v = Vec::new();
            for t in &job.programs[rank].threads {
                for op in &t.ops {
                    if let HostOp::Launch { spec } = op {
                        if let KernelClass::Collective(m) = spec.class {
                            v.push((m.seq, m.bytes));
                        }
                    }
                }
            }
            v
        };
        assert_eq!(seqs(0), seqs(1));
        assert!(!seqs(0).is_empty());
    }

    #[test]
    fn executes_end_to_end_through_engine() {
        let setup = tiny_setup(2);
        let job = lower_inference(&setup).unwrap();
        let out = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap();
        assert!(out.makespan > lumos_trace::Dur::ZERO);
        out.trace.validate().unwrap();
        assert_eq!(out.trace.world_size(), 2);
        // Deterministic without jitter.
        let out2 = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )
        .unwrap();
        assert_eq!(out.makespan, out2.makespan);
    }

    #[test]
    fn label_flows_into_trace() {
        let setup = tiny_setup(1);
        let job = lower_inference(&setup).unwrap();
        assert!(job.config.label().contains("serve"));
    }

    #[test]
    fn invalid_setup_rejected() {
        let mut s = tiny_setup(1);
        s.prompt_len = 0;
        assert!(lower_inference(&s).is_err());
    }
}
