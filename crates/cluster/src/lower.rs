//! Lowering: model + deployment → per-rank host programs.
//!
//! Produces, for every rank, the instruction stream a Megatron-style
//! trainer executes for one iteration:
//!
//! * the 1F1B (or GPipe) schedule of micro-batch forwards/backwards
//!   for the rank's pipeline stage;
//! * per-layer operator sequences (from [`lumos_model::ops`]) as CPU
//!   dispatch + kernel launches on the compute stream;
//! * tensor-parallel all-reduces on a dedicated stream, fenced with
//!   `cudaEventRecord`/`cudaStreamWaitEvent` pairs in both directions
//!   (compute → comm and comm → compute) — the inter-stream
//!   dependencies at the heart of the paper;
//! * pipeline activation/gradient transfers as rendezvous send/recv
//!   pairs on direction-specific streams;
//! * data-parallel gradient all-reduces per layer, launched from the
//!   backward thread during the *last* micro-batch's backward pass so
//!   they overlap with remaining compute (fenced one-way only);
//! * the optimizer phase (grad-stream drain, clip, fused Adam),
//!   closed by a device synchronize.
//!
//! Forward work runs on the main thread and backward work on the
//! autograd thread, coordinated by token signal/wait pairs, matching
//! the PyTorch behavior Lumos's inter-thread gap detection targets.

use crate::program::{streams, HostOp, KernelSpec, NameId, Program};
use lumos_model::ops::{self, CollOp, OpBody, OpDesc};
use lumos_model::{
    CommScope, GroupRegistry, ModelError, Parallelism, PipelineSchedule, RankCoords, ScheduleItem,
};
use lumos_trace::{CollectiveKind, CommMeta, KernelClass, StreamId};
use std::collections::HashMap;
use std::sync::Arc;

/// A complete training-job description: everything needed to generate
/// ground-truth traces. Alias of [`lumos_model::TrainingSetup`] so the
/// same description drives both ground-truth generation and Lumos's
/// graph manipulation.
pub type SimConfig = lumos_model::TrainingSetup;

/// The lowered job: per-rank programs plus communicator membership.
#[derive(Debug, Clone)]
pub struct LoweredJob {
    /// One program per global rank.
    pub programs: Vec<Program>,
    /// Communicator id → member global ranks.
    pub groups: HashMap<u64, Vec<u32>>,
    /// The originating configuration.
    pub config: SimConfig,
}

/// Lowers a configuration into per-rank programs.
///
/// # Errors
///
/// Returns configuration-validity errors (zero dims, indivisible
/// layers/heads, empty schedule).
pub fn lower(config: &SimConfig) -> Result<LoweredJob, ModelError> {
    config.validate()?;
    let par = config.parallelism;
    let schedule =
        PipelineSchedule::generate(config.schedule, par.pp, config.batch.num_microbatches)?;
    let registry = GroupRegistry::new(par);

    let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut record_group = |scope: CommScope, coords: RankCoords| -> u64 {
        let id = registry.group_id(scope, coords);
        groups
            .entry(id)
            .or_insert_with(|| registry.members(scope, coords));
        id
    };

    let mut programs = Vec::with_capacity(par.world_size() as usize);
    for rank in par.all_ranks() {
        let coords = par.coords(rank);
        let tp_group = record_group(CommScope::Tp, coords);
        let dp_group = record_group(CommScope::Dp, coords);
        let fwd_in_group = (coords.pp > 0).then(|| {
            record_group(
                CommScope::PpPair {
                    upstream_stage: coords.pp - 1,
                },
                coords,
            )
        });
        let fwd_out_group = (coords.pp + 1 < par.pp).then(|| {
            record_group(
                CommScope::PpPair {
                    upstream_stage: coords.pp,
                },
                coords,
            )
        });
        let emb_group = (par.pp > 1 && (coords.pp == 0 || coords.pp == par.pp - 1))
            .then(|| record_group(CommScope::Embedding, coords));

        let mut lowerer = RankLowerer {
            config,
            par,
            coords,
            tp_group,
            dp_group,
            fwd_in_group,
            fwd_out_group,
            emb_group,
            program: Program::new(rank),
            next_event: 0,
            tp_seq: 0,
            dp_seq: 0,
            names: NameCache::default(),
        };
        lowerer.emit_iteration(&schedule);
        let program = lowerer.program;
        program
            .well_formed()
            .expect("lowering must produce well-formed programs");
        programs.push(program);
    }

    Ok(LoweredJob {
        programs,
        groups,
        config: config.clone(),
    })
}

/// Hash-indexed interning cache layered over a program's
/// [`crate::program::NameTable`]: repeated launches share one table
/// entry, and the lookup is O(1) instead of the table's linear scan.
#[derive(Default)]
pub(crate) struct NameCache(HashMap<String, NameId>);

impl NameCache {
    pub(crate) fn intern(&mut self, program: &mut Program, s: String) -> NameId {
        match self.0.entry(s) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let id = program.names.push_new(Arc::from(e.key().as_str()));
                e.insert(id);
                id
            }
        }
    }
}

struct RankLowerer<'a> {
    config: &'a SimConfig,
    par: Parallelism,
    coords: RankCoords,
    tp_group: u64,
    dp_group: u64,
    /// Pair group toward the previous stage (recv fwd / send bwd).
    fwd_in_group: Option<u64>,
    /// Pair group toward the next stage (send fwd / recv bwd).
    fwd_out_group: Option<u64>,
    emb_group: Option<u64>,
    program: Program,
    next_event: u32,
    tp_seq: u32,
    dp_seq: u32,
    names: NameCache,
}

/// Which host thread an instruction targets.
#[derive(Clone, Copy, PartialEq)]
enum Th {
    Main,
    Bwd,
}

impl RankLowerer<'_> {
    fn intern(&mut self, s: String) -> NameId {
        self.names.intern(&mut self.program, s)
    }

    fn push(&mut self, th: Th, op: HostOp) {
        match th {
            Th::Main => self.program.main_mut().push(op),
            Th::Bwd => self.program.backward_mut().push(op),
        }
    }

    fn fresh_event(&mut self) -> u32 {
        let e = self.next_event;
        self.next_event += 1;
        e
    }

    fn annotate(&mut self, th: Th, name: String) {
        let name = self.intern(name);
        self.push(th, HostOp::AnnotationBegin { name });
    }

    fn end_annotation(&mut self, th: Th) {
        self.push(th, HostOp::AnnotationEnd);
    }

    /// Emits one logical operator: CPU dispatch + compute-stream
    /// launch, or the full event-fenced collective pattern.
    fn emit_op(&mut self, th: Th, op: &OpDesc, fence_back: bool) {
        let name = self.intern(op.name.to_string());
        self.push(th, HostOp::CpuOp { name });
        match op.body {
            OpBody::Collective {
                op: coll,
                scope,
                bytes,
            } => {
                let (group, stream) = match scope {
                    CommScope::Tp => (self.tp_group, streams::TP_COMM),
                    CommScope::Dp => (self.dp_group, streams::DP_COMM),
                    // PP transfers are lowered by the schedule loop,
                    // not through per-layer op lists.
                    CommScope::PpPair { .. } | CommScope::Embedding => {
                        unreachable!("pp/embedding comms are emitted by the schedule loop")
                    }
                };
                let seq = match scope {
                    CommScope::Tp => {
                        let s = self.tp_seq;
                        self.tp_seq += 1;
                        s
                    }
                    _ => {
                        let s = self.dp_seq;
                        self.dp_seq += 1;
                        s
                    }
                };
                self.emit_collective(th, coll_kind(coll), group, seq, bytes, stream, fence_back);
            }
            body => {
                let (kname, class) = kernel_of(&body);
                let name = self.intern(kname);
                self.push(
                    th,
                    HostOp::Launch {
                        spec: KernelSpec {
                            name,
                            class,
                            stream: streams::COMPUTE,
                        },
                    },
                );
            }
        }
    }

    /// Emits an event-fenced collective: the comm stream waits for
    /// compute (producer fence); when `fence_back` is set, compute
    /// then waits for the collective (consumer fence — TP collectives
    /// need it, overlapped DP gradient reductions do not).
    #[allow(clippy::too_many_arguments)]
    fn emit_collective(
        &mut self,
        th: Th,
        kind: CollectiveKind,
        group: u64,
        seq: u32,
        bytes: u64,
        stream: StreamId,
        fence_back: bool,
    ) {
        let produce = self.fresh_event();
        self.push(
            th,
            HostOp::EventRecord {
                event: produce,
                stream: streams::COMPUTE,
            },
        );
        self.push(
            th,
            HostOp::StreamWait {
                stream,
                event: produce,
            },
        );
        let name = self.intern(kind.kernel_name().to_string());
        self.push(
            th,
            HostOp::Launch {
                spec: KernelSpec {
                    name,
                    class: KernelClass::Collective(CommMeta {
                        kind,
                        group,
                        seq,
                        bytes,
                    }),
                    stream,
                },
            },
        );
        if fence_back {
            let consume = self.fresh_event();
            self.push(
                th,
                HostOp::EventRecord {
                    event: consume,
                    stream,
                },
            );
            self.push(
                th,
                HostOp::StreamWait {
                    stream: streams::COMPUTE,
                    event: consume,
                },
            );
        }
    }

    /// Emits a pipeline transfer (one half of a send/recv rendezvous).
    /// For receives, compute is fenced behind arrival; for sends,
    /// the transfer stream is fenced behind compute.
    fn emit_pp_transfer(&mut self, group: u64, seq: u32, stream: StreamId, is_recv: bool) {
        let bytes = ops::pp_activation_bytes(&self.config.model, &self.config.batch);
        let cpu_name = self.intern(
            match (is_recv, stream == streams::PP_FWD) {
                (true, true) => "recv_forward",
                (false, true) => "send_forward",
                (true, false) => "recv_backward",
                (false, false) => "send_backward",
            }
            .to_string(),
        );
        self.push(Th::Main, HostOp::CpuOp { name: cpu_name });
        if !is_recv {
            let produce = self.fresh_event();
            self.push(
                Th::Main,
                HostOp::EventRecord {
                    event: produce,
                    stream: streams::COMPUTE,
                },
            );
            self.push(
                Th::Main,
                HostOp::StreamWait {
                    stream,
                    event: produce,
                },
            );
        }
        let name = self.intern(CollectiveKind::SendRecv.kernel_name().to_string());
        self.push(
            Th::Main,
            HostOp::Launch {
                spec: KernelSpec {
                    name,
                    class: KernelClass::Collective(CommMeta {
                        kind: CollectiveKind::SendRecv,
                        group,
                        seq,
                        bytes,
                    }),
                    stream,
                },
            },
        );
        if is_recv {
            let arrive = self.fresh_event();
            self.push(
                Th::Main,
                HostOp::EventRecord {
                    event: arrive,
                    stream,
                },
            );
            self.push(
                Th::Main,
                HostOp::StreamWait {
                    stream: streams::COMPUTE,
                    event: arrive,
                },
            );
        }
    }

    fn emit_iteration(&mut self, schedule: &PipelineSchedule) {
        let stage = self.coords.pp;
        let last_mb = self.config.batch.num_microbatches - 1;
        self.annotate(Th::Main, "iteration".to_string());

        let order: Vec<ScheduleItem> = schedule.stage(stage).expect("stage in range").to_vec();
        for item in order {
            match item {
                ScheduleItem::Forward { mb } => self.emit_forward(mb),
                ScheduleItem::Backward { mb } => self.emit_backward(mb, mb == last_mb),
                ScheduleItem::WeightGrad { mb } => self.emit_weight_grad(mb, mb == last_mb),
            }
        }
        self.emit_optimizer();
        self.end_annotation(Th::Main);
    }

    fn emit_forward(&mut self, mb: u32) {
        let model = &self.config.model;
        let batch = &self.config.batch;
        let par = self.par;
        let stage = self.coords.pp;
        self.annotate(Th::Main, format!("fwd mb={mb}"));

        if let Some(group) = self.fwd_in_group {
            self.emit_pp_transfer(group, 2 * mb, streams::PP_FWD, true);
        }
        if stage == 0 {
            self.annotate(Th::Main, format!("embed fwd mb={mb}"));
            for op in ops::embedding_forward_ops(model, batch) {
                self.emit_op(Th::Main, &op, true);
            }
            self.end_annotation(Th::Main);
        }
        let fwd_ops = ops::layer_forward_ops(model, par.tp, batch);
        for layer in par.stage_layers(model.num_layers, stage) {
            self.annotate(Th::Main, format!("layer={layer} fwd mb={mb}"));
            for op in &fwd_ops {
                self.emit_op(Th::Main, op, true);
            }
            self.end_annotation(Th::Main);
        }
        if stage == par.pp - 1 {
            self.annotate(Th::Main, format!("head fwd mb={mb}"));
            for op in ops::head_forward_ops(model, par.tp, batch) {
                self.emit_op(Th::Main, &op, true);
            }
            self.end_annotation(Th::Main);
        }
        if let Some(group) = self.fwd_out_group {
            self.emit_pp_transfer(group, 2 * mb, streams::PP_FWD, false);
        }
        self.end_annotation(Th::Main);
    }

    fn emit_backward(&mut self, mb: u32, is_last_mb: bool) {
        let model = self.config.model.clone();
        let batch = self.config.batch;
        let par = self.par;
        let stage = self.coords.pp;
        let start_token = 2 * mb;
        let done_token = 2 * mb + 1;

        // Main thread: receive the output gradient, hand off to the
        // autograd thread, wait for it, then send the input gradient.
        if let Some(group) = self.fwd_out_group {
            self.emit_pp_transfer(group, 2 * mb + 1, streams::PP_BWD, true);
        }
        self.push(Th::Main, HostOp::SignalPeer { token: start_token });
        self.push(Th::Main, HostOp::WaitPeer { token: done_token });
        if let Some(group) = self.fwd_in_group {
            self.emit_pp_transfer(group, 2 * mb + 1, streams::PP_BWD, false);
        }

        // Backward thread: the actual backward pass. Split-backward
        // schedules emit only the input-grad partition here (wgrad
        // GEMMs and the gradient reductions they feed move to the
        // micro-batch's WeightGrad item).
        let split = self.config.schedule.split_backward();
        self.push(Th::Bwd, HostOp::WaitPeer { token: start_token });
        self.annotate(Th::Bwd, format!("bwd mb={mb}"));
        if stage == par.pp - 1 {
            self.annotate(Th::Bwd, format!("head bwd mb={mb}"));
            for op in ops::head_backward_ops(&model, par.tp, &batch) {
                if split && is_wgrad(&op) {
                    continue;
                }
                self.emit_op(Th::Bwd, &op, true);
            }
            self.end_annotation(Th::Bwd);
        }
        let bwd_ops = ops::layer_backward_ops(&model, par.tp, &batch);
        let layer_grad_params = model.params_per_layer() / par.tp as u64;
        for layer in par.stage_layers(model.num_layers, stage).rev() {
            self.annotate(Th::Bwd, format!("layer={layer} bwd mb={mb}"));
            for op in &bwd_ops {
                if split && is_wgrad(op) {
                    continue;
                }
                self.emit_op(Th::Bwd, op, true);
            }
            self.end_annotation(Th::Bwd);
            if is_last_mb && par.dp > 1 && !split {
                // Overlapped gradient bucket: fenced producer-side
                // only, so it runs concurrently with earlier layers'
                // backward compute. Kept in its own annotation so
                // layer blocks stay pure compute + TP collectives.
                self.annotate(Th::Bwd, format!("dp_grads layer={layer} mb={mb}"));
                let op = OpDesc_dp_allreduce(layer_grad_params);
                self.emit_op(Th::Bwd, &op, false);
                self.end_annotation(Th::Bwd);
            }
        }
        if stage == 0 {
            self.annotate(Th::Bwd, format!("embed bwd mb={mb}"));
            for op in ops::embedding_backward_ops(&model, &batch) {
                self.emit_op(Th::Bwd, &op, true);
            }
            self.end_annotation(Th::Bwd);
            if is_last_mb && par.dp > 1 && !split {
                self.annotate(Th::Bwd, format!("dp_grads embed mb={mb}"));
                let emb_params = model.params_embedding() / par.tp as u64;
                let op = OpDesc_dp_allreduce(emb_params);
                self.emit_op(Th::Bwd, &op, false);
                self.end_annotation(Th::Bwd);
            }
        }
        self.end_annotation(Th::Bwd);
        self.push(Th::Bwd, HostOp::SignalPeer { token: done_token });
    }

    /// Weight-grad item of split-backward schedules: pure compute on
    /// the backward thread — no pipeline transfers — scheduled into
    /// the slots where the stage would otherwise idle waiting for the
    /// next output gradient to arrive. Each item is bracketed in the
    /// same main↔backward token handshake the backward items use
    /// (tokens offset by `2·M` to stay disjoint from theirs): both
    /// host threads feed the shared compute stream, and the handshake
    /// is what keeps their enqueue order — and the single GPU's
    /// execution — serial, exactly as in a real single-device stage.
    /// All data-parallel gradient reductions ride on the last
    /// micro-batch's item (every weight gradient is complete by then,
    /// and all members of a DP group share the same stage, so the
    /// collective order stays consistent across ranks).
    fn emit_weight_grad(&mut self, mb: u32, is_last_mb: bool) {
        let model = self.config.model.clone();
        let batch = self.config.batch;
        let par = self.par;
        let stage = self.coords.pp;
        let start_token = 2 * batch.num_microbatches + 2 * mb;
        let done_token = start_token + 1;
        self.push(Th::Main, HostOp::SignalPeer { token: start_token });
        self.push(Th::Main, HostOp::WaitPeer { token: done_token });
        self.push(Th::Bwd, HostOp::WaitPeer { token: start_token });
        self.annotate(Th::Bwd, format!("wgrad mb={mb}"));
        if stage == par.pp - 1 {
            self.annotate(Th::Bwd, format!("head wgrad mb={mb}"));
            for op in ops::head_backward_ops(&model, par.tp, &batch) {
                if is_wgrad(&op) {
                    self.emit_op(Th::Bwd, &op, true);
                }
            }
            self.end_annotation(Th::Bwd);
        }
        let bwd_ops = ops::layer_backward_ops(&model, par.tp, &batch);
        let layer_grad_params = model.params_per_layer() / par.tp as u64;
        for layer in par.stage_layers(model.num_layers, stage).rev() {
            self.annotate(Th::Bwd, format!("layer={layer} wgrad mb={mb}"));
            for op in &bwd_ops {
                if is_wgrad(op) {
                    self.emit_op(Th::Bwd, op, true);
                }
            }
            self.end_annotation(Th::Bwd);
            if is_last_mb && par.dp > 1 {
                self.annotate(Th::Bwd, format!("dp_grads layer={layer} mb={mb}"));
                let op = OpDesc_dp_allreduce(layer_grad_params);
                self.emit_op(Th::Bwd, &op, false);
                self.end_annotation(Th::Bwd);
            }
        }
        if stage == 0 && is_last_mb && par.dp > 1 {
            // Embedding gradients complete in the backward item, but
            // their reduction waits here with the other buckets.
            self.annotate(Th::Bwd, format!("dp_grads embed mb={mb}"));
            let emb_params = model.params_embedding() / par.tp as u64;
            let op = OpDesc_dp_allreduce(emb_params);
            self.emit_op(Th::Bwd, &op, false);
            self.end_annotation(Th::Bwd);
        }
        self.end_annotation(Th::Bwd);
        self.push(Th::Bwd, HostOp::SignalPeer { token: done_token });
    }

    fn emit_optimizer(&mut self) {
        let model = self.config.model.clone();
        let par = self.par;
        self.annotate(Th::Main, "optimizer".to_string());
        if par.dp > 1 {
            let name = self.intern("wait_all_grads".to_string());
            self.push(Th::Main, HostOp::CpuOp { name });
            self.push(
                Th::Main,
                HostOp::StreamSync {
                    stream: streams::DP_COMM,
                },
            );
        }
        // Tied-embedding gradient reduction between first and last
        // stage.
        if let Some(group) = self.emb_group {
            let bytes = model.params_embedding() / par.tp as u64 * ops::GRAD_BYTES;
            let name = self.intern("all_reduce_embedding_grads".to_string());
            self.push(Th::Main, HostOp::CpuOp { name });
            self.emit_collective(
                Th::Main,
                CollectiveKind::AllReduce,
                group,
                0,
                bytes,
                streams::DP_COMM,
                false,
            );
            self.push(
                Th::Main,
                HostOp::StreamSync {
                    stream: streams::DP_COMM,
                },
            );
        }
        let params = ops::local_params(&model, par.tp, par.pp, self.coords.pp);
        for op in ops::optimizer_ops(params) {
            self.emit_op(Th::Main, &op, true);
        }
        self.push(Th::Main, HostOp::DeviceSync);
        self.end_annotation(Th::Main);
    }
}

/// Whether an op belongs to the weight-grad partition of a split
/// backward (the `*_wgrad` GEMMs; everything else — dgrad GEMMs,
/// activation-function backwards, TP collectives — stays in the
/// input-grad partition).
fn is_wgrad(op: &OpDesc) -> bool {
    op.name.ends_with("_wgrad")
}

/// Builds the DP gradient-bucket all-reduce op for `params`
/// parameters.
#[allow(non_snake_case)]
fn OpDesc_dp_allreduce(params: u64) -> OpDesc {
    OpDesc {
        name: "nccl:all_reduce_dp_grads",
        body: OpBody::Collective {
            op: CollOp::AllReduce,
            scope: CommScope::Dp,
            bytes: params * ops::GRAD_BYTES,
        },
    }
}

fn coll_kind(op: CollOp) -> CollectiveKind {
    match op {
        CollOp::AllReduce => CollectiveKind::AllReduce,
        CollOp::AllGather => CollectiveKind::AllGather,
        CollOp::ReduceScatter => CollectiveKind::ReduceScatter,
        CollOp::Broadcast => CollectiveKind::Broadcast,
        CollOp::SendRecv => CollectiveKind::SendRecv,
    }
}

/// Maps a compute op body to a kernel name and class.
pub(crate) fn kernel_of(body: &OpBody) -> (String, KernelClass) {
    match *body {
        OpBody::Gemm { m, n, k } => (
            format!("sm90_xmma_gemm_bf16_{m}x{n}x{k}"),
            KernelClass::Gemm { m, n, k },
        ),
        OpBody::AttentionFwd {
            batch_heads,
            seq,
            head_dim,
        } => (
            "flash_fwd_kernel".to_string(),
            KernelClass::AttentionFwd {
                batch_heads,
                seq,
                head_dim,
            },
        ),
        OpBody::AttentionBwd {
            batch_heads,
            seq,
            head_dim,
        } => (
            "flash_bwd_kernel".to_string(),
            KernelClass::AttentionBwd {
                batch_heads,
                seq,
                head_dim,
            },
        ),
        OpBody::AttentionDecode {
            batch_heads,
            kv_len,
            head_dim,
        } => (
            "paged_attention_decode_kernel".to_string(),
            KernelClass::AttentionDecode {
                batch_heads,
                kv_len,
                head_dim,
            },
        ),
        OpBody::Elementwise { elems } => (
            "vectorized_elementwise_kernel".to_string(),
            KernelClass::Elementwise { elems },
        ),
        OpBody::Norm { elems } => ("ln_fwd_bwd_kernel".to_string(), KernelClass::Norm { elems }),
        OpBody::Softmax { elems } => (
            "softmax_xent_kernel".to_string(),
            KernelClass::Softmax { elems },
        ),
        OpBody::Embedding { elems } => (
            "embedding_kernel".to_string(),
            KernelClass::Embedding { elems },
        ),
        OpBody::Optimizer { params } => (
            "multi_tensor_adam".to_string(),
            KernelClass::Optimizer { params },
        ),
        OpBody::Collective { .. } => unreachable!("collectives handled by emit_collective"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_model::{BatchConfig, ModelConfig, ScheduleKind};

    fn tiny_config(tp: u32, pp: u32, dp: u32) -> SimConfig {
        SimConfig {
            model: ModelConfig::tiny(),
            parallelism: Parallelism::new(tp, pp, dp).unwrap(),
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: 2 * pp,
            },
            schedule: ScheduleKind::OneFOneB,
        }
    }

    fn count_ops(job: &LoweredJob, pred: impl Fn(&HostOp) -> bool) -> usize {
        job.programs
            .iter()
            .flat_map(|p| p.threads.iter())
            .flat_map(|t| t.ops.iter())
            .filter(|op| pred(op))
            .count()
    }

    #[test]
    fn lower_produces_program_per_rank() {
        let job = lower(&tiny_config(2, 2, 2)).unwrap();
        assert_eq!(job.programs.len(), 8);
        for (i, p) in job.programs.iter().enumerate() {
            assert_eq!(p.rank, i as u32);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn single_gpu_has_no_collectives() {
        let job = lower(&tiny_config(1, 1, 1)).unwrap();
        let collectives = count_ops(&job, |op| {
            matches!(
                op,
                HostOp::Launch { spec } if matches!(spec.class, KernelClass::Collective(_))
            )
        });
        assert_eq!(collectives, 0);
        assert!(job.groups.len() <= 2); // tp/dp singleton groups may be registered
    }

    #[test]
    fn tp_introduces_fenced_allreduces() {
        let job = lower(&tiny_config(2, 1, 1)).unwrap();
        // 2 fwd + 2 bwd TP all-reduces per layer per microbatch.
        let model_layers = 2u32;
        let mb = 2u32;
        let expected = (2 + 2) * model_layers * mb;
        let found = count_ops(&job, |op| {
            matches!(
                op,
                HostOp::Launch { spec }
                    if matches!(spec.class, KernelClass::Collective(m) if m.kind == CollectiveKind::AllReduce)
                        && spec.stream == streams::TP_COMM
            )
        });
        assert_eq!(found, (expected * 2) as usize); // both tp ranks
    }

    #[test]
    fn dp_allreduces_only_on_last_microbatch() {
        let cfg = tiny_config(1, 1, 2);
        let job = lower(&cfg).unwrap();
        // Per rank: one DP AR per layer + one for embeddings
        // (stage 0 == last stage here).
        let per_rank = cfg.model.num_layers as usize + 1;
        let found = count_ops(&job, |op| {
            matches!(
                op,
                HostOp::Launch { spec } if spec.stream == streams::DP_COMM
                    && matches!(spec.class, KernelClass::Collective(m) if m.kind == CollectiveKind::AllReduce)
            )
        });
        assert_eq!(found, per_rank * 2);
    }

    #[test]
    fn pp_transfers_match_schedule() {
        let cfg = tiny_config(1, 2, 1);
        let job = lower(&cfg).unwrap();
        let mb = cfg.batch.num_microbatches as usize;
        // Each boundary moves mb activations + mb gradients; each
        // transfer has a send side and a recv side.
        let sendrecvs = count_ops(&job, |op| {
            matches!(
                op,
                HostOp::Launch { spec }
                    if matches!(spec.class, KernelClass::Collective(m) if m.kind == CollectiveKind::SendRecv)
            )
        });
        assert_eq!(sendrecvs, 2 * mb * 2);
    }

    #[test]
    fn send_recv_seqs_pair_up() {
        let cfg = tiny_config(1, 2, 1);
        let job = lower(&cfg).unwrap();
        // Collect (group, seq) keyed launch counts: every key must
        // appear exactly twice (one send side, one recv side).
        let mut counts: HashMap<(u64, u32), usize> = HashMap::new();
        for p in &job.programs {
            for t in &p.threads {
                for op in &t.ops {
                    if let HostOp::Launch { spec } = op {
                        if let KernelClass::Collective(m) = spec.class {
                            if m.kind == CollectiveKind::SendRecv {
                                *counts.entry((m.group, m.seq)).or_default() += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(!counts.is_empty());
        for ((g, s), c) in counts {
            assert_eq!(c, 2, "transfer group={g} seq={s} has {c} sides");
        }
    }

    #[test]
    fn collective_seqs_consistent_across_members() {
        // All members of each group must issue the same multiset of
        // (seq, bytes): rendezvous instances must match.
        let job = lower(&tiny_config(2, 2, 2)).unwrap();
        let mut per_group_rank: HashMap<u64, HashMap<u32, Vec<(u32, u64)>>> = HashMap::new();
        for p in &job.programs {
            for t in &p.threads {
                for op in &t.ops {
                    if let HostOp::Launch { spec } = op {
                        if let KernelClass::Collective(m) = spec.class {
                            per_group_rank
                                .entry(m.group)
                                .or_default()
                                .entry(p.rank)
                                .or_default()
                                .push((m.seq, m.bytes));
                        }
                    }
                }
            }
        }
        for (group, by_rank) in per_group_rank {
            let members = &job.groups[&group];
            assert_eq!(
                by_rank.len(),
                members.len(),
                "group {group}: not all members participate"
            );
            let mut reference: Option<Vec<(u32, u64)>> = None;
            for (_, mut seqs) in by_rank {
                seqs.sort_unstable();
                match &reference {
                    None => reference = Some(seqs),
                    Some(r) => assert_eq!(r, &seqs, "group {group} seq mismatch"),
                }
            }
        }
    }

    #[test]
    fn group_members_cover_axes() {
        let cfg = tiny_config(2, 2, 2);
        let job = lower(&cfg).unwrap();
        for members in job.groups.values() {
            assert!(!members.is_empty());
            assert!(members.len() <= 8);
            for &m in members {
                assert!(m < cfg.parallelism.world_size());
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = tiny_config(1, 1, 1);
        cfg.parallelism = Parallelism::new(1, 3, 1).unwrap(); // 2 layers % 3 != 0
        assert!(lower(&cfg).is_err());
    }

    #[test]
    fn gpipe_lowering_works() {
        let mut cfg = tiny_config(1, 2, 1);
        cfg.schedule = ScheduleKind::GPipe;
        let job = lower(&cfg).unwrap();
        assert_eq!(job.programs.len(), 2);
    }
}
