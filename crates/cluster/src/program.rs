//! Per-rank host programs: the instruction stream each rank's CPU
//! threads execute during one training iteration.
//!
//! A [`Program`] is what the lowering pass produces from a model +
//! deployment description and what the execution engine runs to
//! obtain ground-truth timing. It mirrors what a PyTorch process
//! actually does: dispatch framework ops, call into the CUDA runtime
//! to launch kernels and record/wait events, synchronize streams, and
//! coordinate between the main thread and the autograd thread.
//!
//! # String interning
//!
//! Host ops never carry strings. Every display name (operator, kernel,
//! annotation) is interned into the program's [`NameTable`] at
//! lowering time and referenced by a dense [`NameId`], which keeps
//! [`HostOp`] a small `Copy` value: the execution engine's inner loop
//! moves ops by value without touching an allocator or an atomic
//! refcount, and the metrics-only execution mode never resolves a name
//! at all. Names are resolved back to `Arc<str>` only when a full
//! trace is materialized (the `FullTrace` event sink).
//!
//! Invariants of the table:
//!
//! * a [`NameId`] is an index into [`NameTable::names`] — ids are
//!   allocated densely in interning order and never reused;
//! * interning the same string twice returns the same id (the table
//!   stores each distinct name once);
//! * ids are only meaningful relative to the [`Program`] that interned
//!   them — the engine validates every referenced id when a job is
//!   prepared and rejects out-of-range ids as malformed programs.

use lumos_trace::{KernelClass, StreamId, ThreadId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Conventional stream assignment, mirroring typical Megatron/PyTorch
/// traces: one compute stream plus dedicated communication streams.
pub mod streams {
    use lumos_trace::StreamId;

    /// Default compute stream.
    pub const COMPUTE: StreamId = StreamId(7);
    /// Tensor-parallel collective stream.
    pub const TP_COMM: StreamId = StreamId(13);
    /// Data-parallel gradient collective stream.
    pub const DP_COMM: StreamId = StreamId(17);
    /// Pipeline forward-direction (activations) stream.
    pub const PP_FWD: StreamId = StreamId(21);
    /// Pipeline backward-direction (gradients) stream.
    pub const PP_BWD: StreamId = StreamId(22);
}

/// Conventional thread assignment: PyTorch runs forward dispatch on
/// the main thread and backward on the autograd engine thread (the
/// inter-thread dependency the paper calls out in §3.3.2).
pub mod threads {
    use lumos_trace::ThreadId;

    /// Main (forward / schedule) thread.
    pub const MAIN: ThreadId = ThreadId(1);
    /// Autograd (backward) thread.
    pub const BACKWARD: ThreadId = ThreadId(2);
}

/// Index of an interned name in a program's [`NameTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NameId(pub u32);

/// A program's interned display names (see the module docs for the
/// interning invariants).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NameTable {
    /// Distinct names, indexed by [`NameId`].
    pub names: Vec<Arc<str>>,
}

impl NameTable {
    /// Interns `name`, returning the id of the existing entry when the
    /// string was seen before.
    ///
    /// The scan is linear — fine for hand-built test programs. The
    /// lowering passes keep their own hash-indexed cache on top
    /// (`NameCache`) so production-sized programs intern in O(1).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(i) = self.names.iter().position(|n| &**n == name) {
            return NameId(i as u32);
        }
        self.push_new(Arc::from(name))
    }

    /// Appends a name known to be absent (the lowering caches use this
    /// after their own hash lookup missed).
    pub(crate) fn push_new(&mut self, name: Arc<str>) -> NameId {
        let id = NameId(self.names.len() as u32);
        self.names.push(name);
        id
    }

    /// Resolves an id, if in range.
    pub fn get(&self, id: NameId) -> Option<&Arc<str>> {
        self.names.get(id.0 as usize)
    }

    /// Number of distinct names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A device kernel to enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Kernel name as it should appear in the trace (interned in the
    /// owning program's [`NameTable`]).
    pub name: NameId,
    /// Shape-carrying classification (drives the cost model; for
    /// collectives, carries the communicator and sequence).
    pub class: KernelClass,
    /// Stream to enqueue on.
    pub stream: StreamId,
}

/// One host instruction.
///
/// `Copy`: every operand is a dense id or a small scalar, so the
/// engine's dispatch loop reads ops by value out of a shared slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostOp {
    /// Framework operator dispatch (emits a `CpuOp` trace event; any
    /// launches it performs follow as separate ops).
    CpuOp {
        /// Operator name (interned).
        name: NameId,
    },
    /// `cudaLaunchKernel`: enqueue `spec` on its stream.
    Launch {
        /// What to enqueue.
        spec: KernelSpec,
    },
    /// `cudaEventRecord(event, stream)`.
    EventRecord {
        /// Per-rank CUDA event id.
        event: u32,
        /// Stream recorded on.
        stream: StreamId,
    },
    /// `cudaStreamWaitEvent(stream, event)`.
    StreamWait {
        /// Stream that will wait.
        stream: StreamId,
        /// Event waited on.
        event: u32,
    },
    /// `cudaStreamSynchronize(stream)`: block this thread until all
    /// work enqueued on `stream` so far completes.
    StreamSync {
        /// Stream drained.
        stream: StreamId,
    },
    /// `cudaDeviceSynchronize()`: block until every stream drains.
    DeviceSync,
    /// Post a cross-thread token (models the fwd→bwd handoff queue;
    /// emits no trace event).
    SignalPeer {
        /// Token identifier, unique per rank.
        token: u32,
    },
    /// Block until a token is posted (emits no trace event — the
    /// resulting timeline gap is exactly what Lumos's inter-thread
    /// dependency detection keys on).
    WaitPeer {
        /// Token identifier.
        token: u32,
    },
    /// Open a user-annotation range on this thread.
    AnnotationBegin {
        /// Range label (interned), e.g. `layer=7 fwd mb=3`.
        name: NameId,
    },
    /// Close the innermost annotation range.
    AnnotationEnd,
}

/// The instruction stream of one host thread.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThreadProgram {
    /// Thread id (see [`threads`]).
    pub tid: ThreadId,
    /// Instructions in program order.
    pub ops: Vec<HostOp>,
}

impl ThreadProgram {
    /// Creates an empty program for `tid`.
    pub fn new(tid: ThreadId) -> Self {
        ThreadProgram {
            tid,
            ops: Vec::new(),
        }
    }

    /// Appends an instruction.
    pub fn push(&mut self, op: HostOp) {
        self.ops.push(op);
    }
}

/// One rank's full iteration program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    /// Global rank.
    pub rank: u32,
    /// Host threads (main + backward).
    pub threads: Vec<ThreadProgram>,
    /// Interned display names referenced by this program's ops.
    pub names: NameTable,
}

impl Program {
    /// Creates a program with the conventional two threads.
    pub fn new(rank: u32) -> Self {
        Program {
            rank,
            threads: vec![
                ThreadProgram::new(threads::MAIN),
                ThreadProgram::new(threads::BACKWARD),
            ],
            names: NameTable::default(),
        }
    }

    /// Interns `name` into this program's table.
    pub fn intern(&mut self, name: &str) -> NameId {
        self.names.intern(name)
    }

    /// Resolves an interned name, if the id belongs to this program.
    pub fn name(&self, id: NameId) -> Option<&Arc<str>> {
        self.names.get(id)
    }

    /// The main thread's program.
    pub fn main_mut(&mut self) -> &mut ThreadProgram {
        &mut self.threads[0]
    }

    /// The backward thread's program.
    pub fn backward_mut(&mut self) -> &mut ThreadProgram {
        &mut self.threads[1]
    }

    /// Total instruction count across threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.ops.len()).sum()
    }

    /// Returns `true` when no thread has instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks structural sanity: annotations balance per thread, every
    /// `WaitPeer` token is signaled somewhere in the program, and every
    /// referenced name id resolves in the program's table.
    ///
    /// # Errors
    ///
    /// Returns the first violation as a typed
    /// [`crate::verify::VerifyError`]. The whole-job analysis
    /// ([`crate::verify::verify`]) runs this as its first phase.
    pub fn well_formed(&self) -> Result<(), crate::verify::VerifyError> {
        use crate::verify::VerifyError;
        let mut signaled = std::collections::HashSet::new();
        let mut waited = Vec::new();
        let name_ok = |id: NameId| self.names.get(id).is_some();
        for t in &self.threads {
            let mut depth: i64 = 0;
            for op in &t.ops {
                match op {
                    HostOp::AnnotationBegin { name } => {
                        if !name_ok(*name) {
                            return Err(VerifyError::UnknownName {
                                rank: self.rank,
                                id: name.0,
                            });
                        }
                        depth += 1;
                    }
                    HostOp::AnnotationEnd => {
                        depth -= 1;
                        if depth < 0 {
                            return Err(VerifyError::UnmatchedAnnotationEnd {
                                rank: self.rank,
                                tid: t.tid,
                            });
                        }
                    }
                    HostOp::CpuOp { name }
                    | HostOp::Launch {
                        spec: KernelSpec { name, .. },
                    } if !name_ok(*name) => {
                        return Err(VerifyError::UnknownName {
                            rank: self.rank,
                            id: name.0,
                        });
                    }
                    HostOp::SignalPeer { token } if !signaled.insert(*token) => {
                        return Err(VerifyError::TokenSignaledTwice {
                            rank: self.rank,
                            token: *token,
                        });
                    }
                    HostOp::WaitPeer { token } => waited.push(*token),
                    _ => {}
                }
            }
            if depth != 0 {
                return Err(VerifyError::UnclosedAnnotations {
                    rank: self.rank,
                    tid: t.tid,
                    open: depth,
                });
            }
        }
        for token in waited {
            if !signaled.contains(&token) {
                return Err(VerifyError::TokenNeverSignaled {
                    rank: self.rank,
                    token,
                });
            }
        }
        Ok(())
    }

    /// Panicking wrapper over [`Program::well_formed`] for call sites
    /// that treat a violation as an internal bug (lowering output,
    /// hand-built test programs).
    ///
    /// # Panics
    ///
    /// Panics with the violation's display text.
    pub fn assert_well_formed(&self) {
        if let Err(err) = self.well_formed() {
            panic!("{err}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_program_passes() {
        let mut p = Program::new(0);
        let iteration = p.intern("iteration");
        let mm = p.intern("aten::mm");
        p.main_mut()
            .push(HostOp::AnnotationBegin { name: iteration });
        p.main_mut().push(HostOp::CpuOp { name: mm });
        p.main_mut().push(HostOp::SignalPeer { token: 1 });
        p.main_mut().push(HostOp::AnnotationEnd);
        p.backward_mut().push(HostOp::WaitPeer { token: 1 });
        p.assert_well_formed();
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn interning_deduplicates() {
        let mut p = Program::new(0);
        let a = p.intern("aten::mm");
        let b = p.intern("aten::add");
        let c = p.intern("aten::mm");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.names.len(), 2);
        assert_eq!(&**p.name(a).unwrap(), "aten::mm");
        assert_eq!(p.name(NameId(99)), None);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_annotation_caught() {
        let mut p = Program::new(0);
        let x = p.intern("x");
        p.main_mut().push(HostOp::AnnotationBegin { name: x });
        p.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "unknown name id")]
    fn dangling_name_id_caught() {
        let mut p = Program::new(0);
        p.main_mut().push(HostOp::CpuOp { name: NameId(7) });
        p.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "never signaled")]
    fn dangling_wait_caught() {
        let mut p = Program::new(0);
        p.backward_mut().push(HostOp::WaitPeer { token: 9 });
        p.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "signaled twice")]
    fn double_signal_caught() {
        let mut p = Program::new(0);
        p.main_mut().push(HostOp::SignalPeer { token: 1 });
        p.main_mut().push(HostOp::SignalPeer { token: 1 });
        p.assert_well_formed();
    }

    #[test]
    fn stream_constants_distinct() {
        let all = [
            streams::COMPUTE,
            streams::TP_COMM,
            streams::DP_COMM,
            streams::PP_FWD,
            streams::PP_BWD,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
