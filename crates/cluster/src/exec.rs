//! The prepared execution form of a [`LoweredJob`]: every tuple-keyed
//! lookup the engine used to perform per step is resolved **once**,
//! when the job is loaded, into dense `Vec` indices.
//!
//! Preparation scans each program a single time and rewrites its host
//! ops into [`ExecOp`]s whose operands are dense ids:
//!
//! * `(rank, stream)` → index into the engine's stream-state vector;
//! * `(rank, event)` → index into the CUDA-event-state vector;
//! * `(rank, token)` → index into the cross-thread token vector;
//! * `(group, seq)`  → index into the collective-instance vector,
//!   with the communicator's member list and expected arrival count
//!   resolved up front.
//!
//! The engine's inner loop then never touches a `HashMap`: state
//! access is direct indexing, and ops are small `Copy` values read out
//! of slices owned here — [`crate::engine::Engine`] construction
//! borrows them instead of deep-cloning per run, so simulating N
//! jitter replicas of one job shares a single prepared form.
//!
//! Preparation also front-loads validation: unknown communicator
//! groups, duplicate ranks, and dangling interned-name ids surface as
//! typed [`EngineError`]s before any simulation work happens.

use crate::engine::EngineError;
use crate::lower::LoweredJob;
use crate::program::{HostOp, NameId};
use lumos_trace::{KernelClass, StreamId, ThreadId};
use std::collections::HashMap;
use std::sync::Arc;

/// A host instruction with all operands resolved to dense indices.
///
/// Raw ids (`raw_event`, `raw_stream`) are kept alongside their dense
/// counterparts because full-trace emission must reproduce the
/// original CUDA-runtime operands in trace events.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ExecOp {
    /// Framework operator dispatch.
    CpuOp { name: NameId },
    /// Kernel launch of a non-collective kernel. `cost` indexes
    /// [`PreparedJob::kernel_classes`]: the engine prices each
    /// distinct class once per run instead of once per launch.
    Launch {
        name: NameId,
        class: KernelClass,
        stream: u32,
        cost: u32,
    },
    /// Kernel launch of a collective kernel (dense instance resolved).
    LaunchColl {
        name: NameId,
        class: KernelClass,
        stream: u32,
        coll: u32,
    },
    /// `cudaEventRecord`.
    EventRecord {
        event: u32,
        raw_event: u32,
        stream: u32,
        raw_stream: StreamId,
    },
    /// `cudaStreamWaitEvent`.
    StreamWait {
        event: u32,
        raw_event: u32,
        stream: u32,
        raw_stream: StreamId,
    },
    /// `cudaStreamSynchronize`.
    StreamSync { stream: u32, raw_stream: StreamId },
    /// `cudaDeviceSynchronize`.
    DeviceSync,
    /// Cross-thread token post.
    SignalPeer { token: u32 },
    /// Cross-thread token wait.
    WaitPeer { token: u32 },
    /// Annotation open.
    AnnotationBegin { name: NameId },
    /// Annotation close.
    AnnotationEnd,
}

/// One host thread, flattened for execution.
#[derive(Debug)]
pub(crate) struct PThread {
    /// Index of the owning program (also the dense rank slot).
    pub prog: u32,
    /// Global rank (jitter keys, diagnostics).
    pub rank: u32,
    /// Thread id (trace emission).
    pub tid: ThreadId,
    /// Resolved instruction stream.
    pub ops: Vec<ExecOp>,
}

/// One CUDA stream, discovered during the prepare scan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PStream {
    /// Index of the owning program (dense rank slot).
    pub prog: u32,
    /// Global rank.
    pub rank: u32,
    /// Original stream id (trace emission).
    pub sid: StreamId,
    /// Number of entries the program enqueues on this stream — lets
    /// the engine pre-size its FIFO exactly.
    pub entries_hint: usize,
}

/// One collective instance `(group, seq)` with its rendezvous
/// expectations resolved.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PColl<'a> {
    /// Communicator id (jitter key).
    pub group: u64,
    /// Issue index within the communicator (jitter key).
    pub seq: u32,
    /// Member global ranks (cost-model input).
    pub members: &'a [u32],
    /// Arrivals required before the instance resolves.
    pub expected: usize,
}

/// A [`LoweredJob`] resolved into the dense execution form.
///
/// Build once with [`PreparedJob::new`], then execute any number of
/// iterations against it — with full traces
/// ([`PreparedJob::execute`]) or allocation-free metrics only
/// ([`PreparedJob::execute_metrics`]). The simulation-refined search
/// prepares each finalist once and reuses the form across all jitter
/// replicas.
#[derive(Debug)]
pub struct PreparedJob<'a> {
    pub(crate) job: &'a LoweredJob,
    pub(crate) threads: Vec<PThread>,
    pub(crate) streams: Vec<PStream>,
    /// Dense stream indices per program (DeviceSync targets).
    pub(crate) rank_streams: Vec<Vec<u32>>,
    pub(crate) n_events: usize,
    pub(crate) n_tokens: usize,
    pub(crate) collectives: Vec<PColl<'a>>,
    /// Distinct non-collective kernel classes, indexed by
    /// `ExecOp::Launch::cost`. Cost models price kernels purely by
    /// class, so the engine resolves this table to durations once per
    /// run and the launch hot path is a vector index.
    pub(crate) kernel_classes: Vec<KernelClass>,
    /// Global rank per program index.
    pub(crate) ranks: Vec<u32>,
    /// Fallback for a name id that fails to resolve (cannot happen for
    /// jobs that pass preparation; kept so resolution stays
    /// panic-free).
    unknown_name: Arc<str>,
}

impl<'a> PreparedJob<'a> {
    /// Resolves `job` into dense execution form.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownGroup`] when a collective launch
    /// references a communicator absent from [`LoweredJob::groups`],
    /// and [`EngineError::MalformedProgram`] for duplicate ranks or
    /// dangling interned-name ids.
    pub fn new(job: &'a LoweredJob) -> Result<Self, EngineError> {
        let mut threads = Vec::new();
        let mut streams: Vec<PStream> = Vec::new();
        let mut stream_index: HashMap<(u32, StreamId), u32> = HashMap::new();
        let mut event_index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut token_index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut coll_index: HashMap<(u64, u32), u32> = HashMap::new();
        let mut collectives: Vec<PColl<'a>> = Vec::new();
        let mut class_index: HashMap<KernelClass, u32> = HashMap::new();
        let mut kernel_classes: Vec<KernelClass> = Vec::new();
        let mut rank_streams: Vec<Vec<u32>> = vec![Vec::new(); job.programs.len()];
        let mut ranks = Vec::with_capacity(job.programs.len());
        let mut seen_ranks = std::collections::HashSet::new();

        for (pi, program) in job.programs.iter().enumerate() {
            let prog = pi as u32;
            if !seen_ranks.insert(program.rank) {
                return Err(EngineError::MalformedProgram {
                    detail: format!("rank {} declared by more than one program", program.rank),
                });
            }
            ranks.push(program.rank);
            let mut stream_of = |sid: StreamId,
                                 streams: &mut Vec<PStream>,
                                 rank_streams: &mut Vec<Vec<u32>>|
             -> u32 {
                *stream_index.entry((prog, sid)).or_insert_with(|| {
                    let si = streams.len() as u32;
                    streams.push(PStream {
                        prog,
                        rank: program.rank,
                        sid,
                        entries_hint: 0,
                    });
                    rank_streams[pi].push(si);
                    si
                })
            };
            let check_name = |id: NameId| -> Result<NameId, EngineError> {
                if program.names.get(id).is_some() {
                    Ok(id)
                } else {
                    Err(EngineError::MalformedProgram {
                        detail: format!(
                            "rank {}: op references unknown name id {}",
                            program.rank, id.0
                        ),
                    })
                }
            };
            for tp in &program.threads {
                let mut ops = Vec::with_capacity(tp.ops.len());
                for op in &tp.ops {
                    let exec = match *op {
                        HostOp::CpuOp { name } => ExecOp::CpuOp {
                            name: check_name(name)?,
                        },
                        HostOp::Launch { spec } => {
                            let stream = stream_of(spec.stream, &mut streams, &mut rank_streams);
                            streams[stream as usize].entries_hint += 1;
                            let name = check_name(spec.name)?;
                            match spec.class {
                                KernelClass::Collective(meta) => {
                                    let coll = *coll_index
                                        .entry((meta.group, meta.seq))
                                        .or_insert_with(|| collectives.len() as u32);
                                    if coll as usize == collectives.len() {
                                        let members =
                                            job.groups.get(&meta.group).map(Vec::as_slice).ok_or(
                                                EngineError::UnknownGroup { group: meta.group },
                                            )?;
                                        collectives.push(PColl {
                                            group: meta.group,
                                            seq: meta.seq,
                                            members,
                                            expected: members.len(),
                                        });
                                    }
                                    ExecOp::LaunchColl {
                                        name,
                                        class: spec.class,
                                        stream,
                                        coll,
                                    }
                                }
                                class => {
                                    let cost = *class_index.entry(class).or_insert_with(|| {
                                        kernel_classes.push(class);
                                        (kernel_classes.len() - 1) as u32
                                    });
                                    ExecOp::Launch {
                                        name,
                                        class,
                                        stream,
                                        cost,
                                    }
                                }
                            }
                        }
                        HostOp::EventRecord { event, stream } => {
                            let si = stream_of(stream, &mut streams, &mut rank_streams);
                            streams[si as usize].entries_hint += 1;
                            let next = event_index.len() as u32;
                            ExecOp::EventRecord {
                                event: *event_index.entry((prog, event)).or_insert(next),
                                raw_event: event,
                                stream: si,
                                raw_stream: stream,
                            }
                        }
                        HostOp::StreamWait { stream, event } => {
                            let si = stream_of(stream, &mut streams, &mut rank_streams);
                            streams[si as usize].entries_hint += 1;
                            let next = event_index.len() as u32;
                            ExecOp::StreamWait {
                                event: *event_index.entry((prog, event)).or_insert(next),
                                raw_event: event,
                                stream: si,
                                raw_stream: stream,
                            }
                        }
                        HostOp::StreamSync { stream } => ExecOp::StreamSync {
                            stream: stream_of(stream, &mut streams, &mut rank_streams),
                            raw_stream: stream,
                        },
                        HostOp::DeviceSync => ExecOp::DeviceSync,
                        HostOp::SignalPeer { token } => {
                            let next = token_index.len() as u32;
                            ExecOp::SignalPeer {
                                token: *token_index.entry((prog, token)).or_insert(next),
                            }
                        }
                        HostOp::WaitPeer { token } => {
                            let next = token_index.len() as u32;
                            ExecOp::WaitPeer {
                                token: *token_index.entry((prog, token)).or_insert(next),
                            }
                        }
                        HostOp::AnnotationBegin { name } => ExecOp::AnnotationBegin {
                            name: check_name(name)?,
                        },
                        HostOp::AnnotationEnd => ExecOp::AnnotationEnd,
                    };
                    ops.push(exec);
                }
                threads.push(PThread {
                    prog,
                    rank: program.rank,
                    tid: tp.tid,
                    ops,
                });
            }
        }

        Ok(PreparedJob {
            job,
            threads,
            streams,
            rank_streams,
            n_events: event_index.len(),
            n_tokens: token_index.len(),
            collectives,
            kernel_classes,
            ranks,
            unknown_name: Arc::from("<unknown>"),
        })
    }

    /// The job this form was prepared from.
    pub fn job(&self) -> &'a LoweredJob {
        self.job
    }

    /// Resolves an interned name of program `prog`.
    pub(crate) fn name(&self, prog: u32, id: NameId) -> &Arc<str> {
        self.job
            .programs
            .get(prog as usize)
            .and_then(|p| p.names.get(id))
            .unwrap_or(&self.unknown_name)
    }
}
