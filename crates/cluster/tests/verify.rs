//! Mutation suite for the static program verifier.
//!
//! Each test seeds one corruption class into an otherwise-valid job
//! and asserts the exact [`VerifyError`] variant — the corruption must
//! be caught *statically*, never reaching the engine's runtime
//! deadlock latch. Property tests hold the zero-false-positive
//! contract in both directions: every program lowered from a random
//! valid candidate verifies clean, and every verify-clean program
//! executes without [`lumos_cluster::EngineError::Deadlock`].
//!
//! The committed fixture `examples/fixtures/deadlock.json` (consumed
//! by the CI `lint-smoke` job via `lumos lint --job`) is pinned
//! against its generator here so it cannot rot silently.

use lumos_cluster::{
    execute_metrics, lower, streams, verify, HostOp, JitterModel, KernelSpec, LoweredJob, NameId,
    PortableJob, Program, SimConfig, VerifyError,
};
use lumos_cost::{AnalyticalCostModel, HostOverheads};
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_trace::{CollectiveKind, CommMeta, KernelClass, StreamId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

fn config(tp: u32, pp: u32, dp: u32) -> SimConfig {
    SimConfig {
        model: ModelConfig::tiny(),
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 2 * pp,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn placeholder_config() -> SimConfig {
    SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap())
}

fn collective_launch(p: &mut Program, kind: CollectiveKind, group: u64, seq: u32, bytes: u64) {
    let name = p.intern("nccl");
    p.main_mut().push(HostOp::Launch {
        spec: KernelSpec {
            name,
            class: KernelClass::Collective(CommMeta {
                kind,
                group,
                seq,
                bytes,
            }),
            stream: streams::TP_COMM,
        },
    });
}

fn engine_deadlocks(job: &LoweredJob) -> bool {
    matches!(
        execute_metrics(
            job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        ),
        Err(lumos_cluster::EngineError::Deadlock { .. })
    )
}

/// Two ranks issue the same two collective instances on one stream,
/// but in opposite seq order: every instance is consistent, yet the
/// cross-rank wait-for graph is a 2-cycle. This is the committed CI
/// fixture's generator.
fn swapped_seq_job() -> LoweredJob {
    let mut programs = Vec::new();
    for rank in 0..2u32 {
        let mut p = Program::new(rank);
        let seqs: [u32; 2] = if rank == 0 { [0, 1] } else { [1, 0] };
        for seq in seqs {
            collective_launch(&mut p, CollectiveKind::AllReduce, 7, seq, 4096);
        }
        p.main_mut().push(HostOp::StreamSync {
            stream: streams::TP_COMM,
        });
        programs.push(p);
    }
    LoweredJob {
        programs,
        groups: HashMap::from([(7u64, vec![0u32, 1u32])]),
        config: placeholder_config(),
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/fixtures/deadlock.json")
}

#[test]
fn lowered_jobs_verify_clean() {
    for (tp, pp, dp) in [(1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 2, 2)] {
        let job = lower(&config(tp, pp, dp)).unwrap();
        let report = verify(&job).unwrap();
        assert_eq!(report.programs as u32, tp * pp * dp);
        assert!(report.ops > 0);
        if tp > 1 {
            assert!(report.collectives > 0, "tp job has collective instances");
        }
        if pp > 1 {
            assert!(report.sendrecv > 0, "pp job has send/recv pairs");
        }
    }
}

#[test]
fn stream_sync_on_unused_stream_verifies_clean() {
    // Witness against false positives: syncing a stream with no
    // entries completes inline in the engine, so it must verify clean.
    let mut p = Program::new(0);
    p.main_mut().push(HostOp::StreamSync {
        stream: StreamId(42),
    });
    p.main_mut().push(HostOp::DeviceSync);
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let report = verify(&job).unwrap();
    assert_eq!(report.programs, 1);
    assert!(!engine_deadlocks(&job));
}

#[test]
fn token_handoff_verifies_clean() {
    let mut p = Program::new(0);
    p.main_mut().push(HostOp::SignalPeer { token: 3 });
    p.backward_mut().push(HostOp::WaitPeer { token: 3 });
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    verify(&job).unwrap();
    assert!(!engine_deadlocks(&job));
}

#[test]
fn mutation_dropped_collective_is_caught() {
    let mut job = lower(&config(2, 1, 1)).unwrap();
    let victim = &mut job.programs[1];
    let mut removed = false;
    for t in &mut victim.threads {
        let pos = t.ops.iter().position(|op| {
            matches!(
                op,
                HostOp::Launch { spec }
                    if matches!(
                        spec.class,
                        KernelClass::Collective(m) if m.kind != CollectiveKind::SendRecv
                    )
            )
        });
        if let Some(pos) = pos {
            t.ops.remove(pos);
            removed = true;
            break;
        }
    }
    assert!(removed, "tp job must contain a collective launch to drop");
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(&err, VerifyError::CollectiveMissing { missing, .. } if missing == &vec![1u32]),
        "{err:?}"
    );
    // The same corruption trips the engine's runtime latch — verify
    // catches it without simulating anything.
    assert!(engine_deadlocks(&job));
}

#[test]
fn mutation_swapped_seq_order_is_caught_as_deadlock() {
    let job = swapped_seq_job();
    let err = verify(&job).unwrap_err();
    let VerifyError::Deadlock { ref chain, cycle } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    assert!(cycle, "swapped seqs form a true cycle: {err}");
    assert!(chain.len() >= 2, "{err}");
    let msg = err.to_string();
    assert!(msg.contains("static deadlock"), "{msg}");
    assert!(msg.contains("group 7"), "{msg}");
    assert!(msg.contains("awaiting rank"), "{msg}");
    assert!(engine_deadlocks(&job));
}

#[test]
fn mutation_unmatched_send_is_caught() {
    let mut p0 = Program::new(0);
    collective_launch(&mut p0, CollectiveKind::SendRecv, 5, 0, 2048);
    let p1 = Program::new(1);
    let job = LoweredJob {
        programs: vec![p0, p1],
        groups: HashMap::from([(5u64, vec![0u32, 1u32])]),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(
            &err,
            VerifyError::SendRecvUnmatched { group: 5, issued, missing, .. }
                if issued == &vec![0u32] && missing == &vec![1u32]
        ),
        "{err:?}"
    );
}

#[test]
fn mutation_dangling_name_id_is_caught() {
    let mut p = Program::new(0);
    p.main_mut().push(HostOp::CpuOp { name: NameId(1234) });
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(err, VerifyError::UnknownName { rank: 0, id: 1234 }),
        "{err:?}"
    );
}

#[test]
fn mutation_unknown_group_is_caught() {
    let mut p = Program::new(0);
    collective_launch(&mut p, CollectiveKind::AllReduce, 42, 0, 64);
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::UnknownGroup {
                rank: 0,
                group: 42,
                seq: 0
            }
        ),
        "{err:?}"
    );
}

#[test]
fn collective_kind_mismatch_is_caught() {
    let mut p0 = Program::new(0);
    collective_launch(&mut p0, CollectiveKind::AllReduce, 9, 0, 512);
    let mut p1 = Program::new(1);
    collective_launch(&mut p1, CollectiveKind::AllGather, 9, 0, 512);
    let job = LoweredJob {
        programs: vec![p0, p1],
        groups: HashMap::from([(9u64, vec![0u32, 1u32])]),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::CollectiveKindMismatch {
                group: 9,
                seq: 0,
                rank: 1,
                kind: CollectiveKind::AllGather,
                expected_rank: 0,
                expected: CollectiveKind::AllReduce,
            }
        ),
        "{err:?}"
    );
}

#[test]
fn collective_bytes_mismatch_is_caught() {
    let mut p0 = Program::new(0);
    collective_launch(&mut p0, CollectiveKind::AllReduce, 9, 0, 512);
    let mut p1 = Program::new(1);
    collective_launch(&mut p1, CollectiveKind::AllReduce, 9, 0, 1024);
    let job = LoweredJob {
        programs: vec![p0, p1],
        groups: HashMap::from([(9u64, vec![0u32, 1u32])]),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(
            err,
            VerifyError::CollectiveBytesMismatch {
                rank: 1,
                bytes: 1024,
                expected: 512,
                ..
            }
        ),
        "{err:?}"
    );
}

#[test]
fn duplicate_rank_is_caught() {
    let job = LoweredJob {
        programs: vec![Program::new(3), Program::new(3)],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(err, VerifyError::DuplicateRank { rank: 3 }),
        "{err:?}"
    );
}

#[test]
fn never_signaled_token_is_caught() {
    let mut p = Program::new(0);
    p.backward_mut().push(HostOp::WaitPeer { token: 9 });
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(err, VerifyError::TokenNeverSignaled { rank: 0, token: 9 }),
        "{err:?}"
    );
}

#[test]
fn wait_without_record_is_caught() {
    let mut p = Program::new(0);
    p.main_mut().push(HostOp::StreamWait {
        stream: streams::COMPUTE,
        event: 3,
    });
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(err, VerifyError::WaitWithoutRecord { rank: 0, event: 3 }),
        "{err:?}"
    );
}

#[test]
fn wait_recorded_later_on_same_stream_is_a_self_cycle() {
    // The record exists but sits *behind* the wait on the same FIFO
    // stream: phase 1 passes, the wait-for walk finds a length-1
    // cycle.
    let mut p = Program::new(0);
    p.main_mut().push(HostOp::StreamWait {
        stream: streams::COMPUTE,
        event: 1,
    });
    p.main_mut().push(HostOp::EventRecord {
        stream: streams::COMPUTE,
        event: 1,
    });
    p.main_mut().push(HostOp::StreamSync {
        stream: streams::COMPUTE,
    });
    let job = LoweredJob {
        programs: vec![p],
        groups: HashMap::new(),
        config: placeholder_config(),
    };
    let err = verify(&job).unwrap_err();
    assert!(
        matches!(err, VerifyError::Deadlock { cycle: true, .. }),
        "{err:?}"
    );
    assert!(engine_deadlocks(&job));
}

#[test]
fn portable_job_round_trips_through_json() {
    let job = lower(&config(2, 2, 1)).unwrap();
    let original = verify(&job).unwrap();
    let text = serde_json::to_string(&PortableJob::from_job(&job)).unwrap();
    let parsed: PortableJob = serde_json::from_str(&text).unwrap();
    let restored = parsed.into_job();
    let report = verify(&restored).unwrap();
    assert_eq!(report, original);
}

#[test]
fn committed_fixture_is_rejected_with_named_cycle() {
    let text = std::fs::read_to_string(fixture_path()).unwrap();
    let parsed: PortableJob = serde_json::from_str(&text).unwrap();
    let err = verify(&parsed.into_job()).unwrap_err();
    assert!(
        matches!(err, VerifyError::Deadlock { cycle: true, .. }),
        "{err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("static deadlock"), "{msg}");
    assert!(msg.contains("group 7"), "{msg}");
}

#[test]
fn committed_fixture_matches_generator() {
    let expected =
        serde_json::to_string_pretty(&PortableJob::from_job(&swapped_seq_job())).unwrap();
    let committed = std::fs::read_to_string(fixture_path()).unwrap();
    assert_eq!(
        committed.trim_end(),
        expected,
        "fixture drifted from its generator; regenerate with \
         `cargo test -p lumos-cluster --test verify regenerate_deadlock_fixture -- --ignored`"
    );
}

#[test]
#[ignore = "writes the committed fixture; run manually after changing the generator"]
fn regenerate_deadlock_fixture() {
    let json = serde_json::to_string_pretty(&PortableJob::from_job(&swapped_seq_job())).unwrap();
    std::fs::write(fixture_path(), json + "\n").unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero false positives / zero false negatives on the lowering
    /// path: every job lowered from a valid candidate verifies clean,
    /// and (being verify-clean) executes without a deadlock.
    #[test]
    fn lowered_candidates_verify_clean_and_execute(
        tp_i in 0usize..3,
        pp_i in 0usize..2,
        dp in 1u32..3,
        mb in 1u32..4,
    ) {
        let tp = [1u32, 2, 4][tp_i];
        let pp = [1u32, 2][pp_i];
        let Ok(parallelism) = Parallelism::new(tp, pp, dp) else {
            return Ok(());
        };
        let config = SimConfig {
            model: ModelConfig::tiny(),
            parallelism,
            batch: BatchConfig {
                seq_len: 128,
                microbatch_size: 1,
                num_microbatches: mb * pp,
            },
            schedule: ScheduleKind::OneFOneB,
        };
        if config.validate().is_err() {
            return Ok(());
        }
        let job = lower(&config).unwrap();
        let report = verify(&job).unwrap();
        prop_assert_eq!(report.programs as u32, tp * pp * dp);
        let metrics = execute_metrics(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        );
        prop_assert!(metrics.is_ok(), "verify-clean job must execute: {:?}", metrics.err());
    }
}
