//! Sink-equivalence suite: the metrics-only engine mode must be
//! bit-identical, in every statistic both modes share, to deriving
//! the same numbers from a full trace — across world sizes, schedules,
//! jitter settings, and arbitrary small random programs.
//!
//! The engine computes one timeline; the sink only decides what is
//! materialized. These tests pin that contract:
//!
//! * makespan, per-rank spans, per-rank event counts, per-stream busy
//!   time, and pipeline-boundary SendRecv totals agree exactly with
//!   the full trace for worlds of 1 / 2 / 4 / 7 ranks;
//! * the equality holds under deterministic jitter, per iteration
//!   index (the jitter-replica pattern the refined search runs);
//! * property test: random single-rank host programs (kernels,
//!   event fences, stream syncs, annotations) keep the two modes in
//!   exact agreement.

use lumos_cluster::{
    execute, execute_metrics, lower, streams, EngineMetrics, EngineOutput, HostOp, JitterModel,
    KernelSpec, LoweredJob, PreparedJob, Program, SimConfig,
};
use lumos_cost::{AnalyticalCostModel, HostOverheads};
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind};
use lumos_trace::{CollectiveKind, Dur, EventKind, KernelClass, RankId};
use proptest::prelude::*;

fn config(tp: u32, pp: u32, dp: u32) -> SimConfig {
    SimConfig {
        model: ModelConfig::tiny(),
        parallelism: Parallelism::new(tp, pp, dp).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 2 * pp,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

/// Asserts every shared statistic matches between a full-trace run
/// and a metrics-only run of the same job/iteration.
fn assert_equivalent(out: &EngineOutput, metrics: &EngineMetrics) {
    assert_eq!(metrics.makespan, out.makespan, "makespan");
    assert_eq!(
        metrics.total_events,
        out.trace.total_events(),
        "total event count"
    );
    assert_eq!(metrics.ranks.len(), out.trace.world_size(), "world size");

    for rm in &metrics.ranks {
        let rt = out.trace.rank(RankId(rm.rank)).expect("rank in trace");
        assert_eq!(rm.events, rt.len(), "rank {} event count", rm.rank);
        if rm.events > 0 {
            let span = rt.span().expect("non-empty rank has a span");
            assert_eq!(rm.start, span.start, "rank {} span start", rm.rank);
            assert_eq!(rm.end, span.end, "rank {} span end", rm.rank);
        }
    }

    for sb in &metrics.streams {
        let rt = out.trace.rank(RankId(sb.rank)).expect("rank in trace");
        let (busy, kernels) = rt
            .kernels()
            .filter(|e| e.kind.stream() == Some(sb.stream))
            .fold((0u64, 0usize), |(b, k), e| (b + e.dur.as_ns(), k + 1));
        assert_eq!(sb.busy, Dur(busy), "rank {} {} busy", sb.rank, sb.stream);
        assert_eq!(
            sb.kernels, kernels,
            "rank {} {} kernel count",
            sb.rank, sb.stream
        );
    }

    // Pipeline-boundary SendRecv accounting: bit-identical to the
    // trace walk the search's interleave adjustment used to perform.
    let world = out.trace.world_size().max(1) as f64;
    let total_ns: u128 = out
        .trace
        .ranks()
        .iter()
        .flat_map(|r| r.kernels())
        .filter_map(|e| match e.kind {
            EventKind::Kernel {
                class: KernelClass::Collective(meta),
                ..
            } if meta.kind == CollectiveKind::SendRecv => Some(e.dur.as_ns() as u128),
            _ => None,
        })
        .sum();
    assert_eq!(metrics.sendrecv_ns(), total_ns, "sendrecv total");
    let expected = total_ns as f64 / 1e9 / world;
    assert_eq!(
        metrics.pipeline_comm_secs_per_rank().to_bits(),
        expected.to_bits(),
        "pipeline comm secs per rank"
    );
}

fn run_both(
    job: &LoweredJob,
    jitter: &JitterModel,
    iteration: u64,
) -> (EngineOutput, EngineMetrics) {
    let cost = AnalyticalCostModel::h100();
    let oh = HostOverheads::default();
    let out = execute(job, &cost, &oh, jitter, iteration).unwrap();
    let metrics = execute_metrics(job, &cost, &oh, jitter, iteration).unwrap();
    (out, metrics)
}

#[test]
fn equivalent_across_world_sizes() {
    // Worlds of 1, 2, 4, and 7 ranks, exercising every coupling class:
    // single rank, TP rendezvous, PP transfers + DP gradient
    // reductions, and a wide pure-DP world.
    for (tp, pp, dp) in [(1, 1, 1), (2, 1, 1), (1, 2, 2), (1, 1, 7)] {
        let job = lower(&config(tp, pp, dp)).unwrap();
        let (out, metrics) = run_both(&job, &JitterModel::none(), 0);
        assert_eq!(
            metrics.ranks.len() as u32,
            tp * pp * dp,
            "world size for tp={tp} pp={pp} dp={dp}"
        );
        assert_equivalent(&out, &metrics);
    }
}

#[test]
fn equivalent_under_jitter_per_iteration() {
    // The jitter-replica pattern: one prepared job, several iteration
    // indices, realistic variance. Every iteration must agree between
    // modes (same seeds → same multipliers → same timeline).
    let job = lower(&config(1, 2, 1)).unwrap();
    let prep = PreparedJob::new(&job).unwrap();
    let cost = AnalyticalCostModel::h100();
    let oh = HostOverheads::default();
    let jitter = JitterModel::realistic(2025);
    let mut makespans = Vec::new();
    for iteration in 0..4 {
        let out = execute(&job, &cost, &oh, &jitter, iteration).unwrap();
        let metrics = prep
            .execute_metrics(&cost, &oh, &jitter, iteration)
            .unwrap();
        assert_equivalent(&out, &metrics);
        makespans.push(metrics.makespan);
    }
    // Jitter actually varies across iterations.
    assert!(makespans.windows(2).any(|w| w[0] != w[1]));
}

#[test]
fn equivalent_for_gpipe_schedule() {
    let mut cfg = config(1, 2, 1);
    cfg.schedule = ScheduleKind::GPipe;
    let job = lower(&cfg).unwrap();
    let (out, metrics) = run_both(&job, &JitterModel::none(), 0);
    assert_equivalent(&out, &metrics);
}

#[test]
fn metrics_mode_is_deterministic() {
    let job = lower(&config(2, 2, 1)).unwrap();
    let prep = PreparedJob::new(&job).unwrap();
    let cost = AnalyticalCostModel::h100();
    let oh = HostOverheads::default();
    let jitter = JitterModel::realistic(7);
    let a = prep.execute_metrics(&cost, &oh, &jitter, 3).unwrap();
    let b = prep.execute_metrics(&cost, &oh, &jitter, 3).unwrap();
    assert_eq!(a, b);
}

#[test]
fn collective_wait_accounts_for_rendezvous_skew() {
    // With TP=2, the two members of each all-reduce arrive at
    // different times (host dispatch skew), so some exposed wait must
    // be accumulated — and the total is identical across repeated
    // runs.
    let job = lower(&config(2, 1, 1)).unwrap();
    let (_, metrics) = run_both(&job, &JitterModel::realistic(3), 0);
    assert!(metrics.collective_wait >= Dur::ZERO);
    let (_, again) = run_both(&job, &JitterModel::realistic(3), 0);
    assert_eq!(metrics.collective_wait, again.collective_wait);
    // Per-rank waits sum to the total.
    let per_rank: u64 = metrics
        .ranks
        .iter()
        .map(|r| r.collective_wait.as_ns())
        .sum();
    assert_eq!(Dur(per_rank), metrics.collective_wait);
}

#[test]
fn empty_job_yields_zero_metrics() {
    let cfg = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
    let job = LoweredJob {
        programs: vec![Program::new(0)],
        groups: std::collections::HashMap::new(),
        config: cfg,
    };
    let (out, metrics) = run_both(&job, &JitterModel::none(), 0);
    assert_eq!(metrics.makespan, Dur::ZERO);
    assert_eq!(metrics.total_events, 0);
    assert_equivalent(&out, &metrics);
}

/// Builds a random but well-formed single-rank program from a code
/// stream: kernels on two streams, producer event fences, stream
/// syncs, and balanced annotations. Every generated program
/// terminates (waits only reference events recorded earlier in
/// program order).
fn program_from_codes(codes: &[u8]) -> LoweredJob {
    let mut p = Program::new(0);
    let op_name = p.intern("aten::op");
    let gemm = p.intern("gemm_kernel");
    let ew = p.intern("elementwise_kernel");
    let ann = p.intern("block");
    let mut next_event = 0u32;
    let mut recorded: Vec<u32> = Vec::new();
    let mut depth = 0u32;
    for &c in codes {
        match c % 8 {
            0 => p.main_mut().push(HostOp::CpuOp { name: op_name }),
            1 => p.main_mut().push(HostOp::Launch {
                spec: KernelSpec {
                    name: gemm,
                    class: KernelClass::Gemm {
                        m: 64 + c as u64,
                        n: 64,
                        k: 64,
                    },
                    stream: streams::COMPUTE,
                },
            }),
            2 => p.main_mut().push(HostOp::Launch {
                spec: KernelSpec {
                    name: ew,
                    class: KernelClass::Elementwise {
                        elems: 1000 * (1 + c as u64),
                    },
                    stream: streams::TP_COMM,
                },
            }),
            3 => {
                let event = next_event;
                next_event += 1;
                recorded.push(event);
                p.main_mut().push(HostOp::EventRecord {
                    event,
                    stream: streams::COMPUTE,
                });
            }
            4 => {
                if let Some(&event) = recorded.last() {
                    p.main_mut().push(HostOp::StreamWait {
                        stream: streams::TP_COMM,
                        event,
                    });
                }
            }
            5 => p.main_mut().push(HostOp::StreamSync {
                stream: streams::COMPUTE,
            }),
            6 => {
                depth += 1;
                p.main_mut().push(HostOp::AnnotationBegin { name: ann });
            }
            _ => {
                if depth > 0 {
                    depth -= 1;
                    p.main_mut().push(HostOp::AnnotationEnd);
                }
            }
        }
    }
    for _ in 0..depth {
        p.main_mut().push(HostOp::AnnotationEnd);
    }
    p.main_mut().push(HostOp::DeviceSync);
    p.well_formed().expect("generated program is well-formed");
    let config = SimConfig::new(ModelConfig::tiny(), Parallelism::new(1, 1, 1).unwrap());
    LoweredJob {
        programs: vec![p],
        groups: std::collections::HashMap::new(),
        config,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small host programs: full-trace and metrics-only modes
    /// agree exactly on every shared statistic, with and without
    /// jitter.
    #[test]
    fn random_programs_equivalent(
        codes in proptest::collection::vec(0u8..255, 0..48),
        seed in 0u64..1000,
    ) {
        let job = program_from_codes(&codes);
        let (out, metrics) = run_both(&job, &JitterModel::none(), 0);
        assert_equivalent(&out, &metrics);
        let (out, metrics) = run_both(&job, &JitterModel::realistic(seed), seed % 5);
        assert_equivalent(&out, &metrics);
    }
}
