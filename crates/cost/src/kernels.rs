//! The full analytical kernel cost model: bandwidth models for
//! pointwise / normalization / softmax / embedding / optimizer
//! kernels, a FLOP model for fused attention, plus the GEMM and
//! collective sub-models.

use crate::collective::CollectiveModel;
use crate::gemm::GemmModel;
use crate::hardware::{ClusterSpec, GpuSpec};
use crate::CostModel;
use lumos_trace::{CollectiveKind, Dur, KernelClass};
use serde::{Deserialize, Serialize};

/// First-principles cost model for every [`KernelClass`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalCostModel {
    gpu: GpuSpec,
    gemm: GemmModel,
    collective: CollectiveModel,
    /// Achievable HBM fraction for streaming kernels.
    stream_efficiency: f64,
    /// Achievable peak fraction for fused attention kernels.
    attention_efficiency: f64,
    /// Fixed launch-to-finish floor for trivial kernels.
    min_kernel: Dur,
}

impl AnalyticalCostModel {
    /// Builds the model for a cluster (GPU taken from the node spec).
    pub fn new(cluster: ClusterSpec) -> Self {
        let gpu = cluster.node.gpu.clone();
        AnalyticalCostModel {
            gemm: GemmModel::new(gpu.clone()),
            collective: CollectiveModel::new(cluster),
            gpu,
            stream_efficiency: 0.75,
            attention_efficiency: 0.55,
            min_kernel: Dur::from_us(2),
        }
    }

    /// The paper's evaluation platform (H100 + RoCE).
    pub fn h100() -> Self {
        AnalyticalCostModel::new(ClusterSpec::h100_roce())
    }

    /// The A100 generation of the same platform.
    pub fn a100() -> Self {
        AnalyticalCostModel::new(ClusterSpec::a100_roce())
    }

    /// Resolves a hardware-preset name (`"h100"` / `"a100"`) — the
    /// names `lumos calibrate --hardware` records in artifacts, so
    /// query paths can rebuild the exact fallback a calibration
    /// assumed. `None` for unknown names.
    pub fn from_preset(name: &str) -> Option<Self> {
        match name {
            "h100" => Some(AnalyticalCostModel::h100()),
            "a100" => Some(AnalyticalCostModel::a100()),
            _ => None,
        }
    }

    /// The GEMM sub-model.
    pub fn gemm(&self) -> &GemmModel {
        &self.gemm
    }

    /// The collective sub-model.
    pub fn collective(&self) -> &CollectiveModel {
        &self.collective
    }

    /// Duration of a kernel that streams `bytes` through HBM.
    fn stream_cost(&self, bytes: u64) -> Dur {
        let t = bytes as f64 / (self.gpu.hbm_bytes_per_sec() * self.stream_efficiency);
        self.min_kernel + Dur::from_secs_f64(t)
    }

    /// Duration of fused attention given total FLOPs and streamed
    /// bytes (flash kernels are compute bound at long sequence, memory
    /// bound at short).
    fn attention_cost(&self, flops: f64, bytes: u64) -> Dur {
        let t_compute = flops / (self.gpu.peak_flops() * self.attention_efficiency);
        let t_mem = bytes as f64 / (self.gpu.hbm_bytes_per_sec() * self.stream_efficiency);
        self.min_kernel + Dur::from_secs_f64(t_compute.max(t_mem))
    }
}

impl CostModel for AnalyticalCostModel {
    fn compute_cost(&self, class: &KernelClass) -> Dur {
        match *class {
            KernelClass::Gemm { m, n, k } => self.gemm.duration(m, n, k),
            KernelClass::AttentionFwd {
                batch_heads,
                seq,
                head_dim,
            } => {
                let flops = 4.0 * batch_heads as f64 * (seq as f64).powi(2) * head_dim as f64;
                // Q, K, V, O in bf16.
                let bytes = 4 * batch_heads * seq * head_dim * 2;
                self.attention_cost(flops, bytes)
            }
            KernelClass::AttentionBwd {
                batch_heads,
                seq,
                head_dim,
            } => {
                let flops = 10.0 * batch_heads as f64 * (seq as f64).powi(2) * head_dim as f64;
                let bytes = 8 * batch_heads * seq * head_dim * 2;
                self.attention_cost(flops, bytes)
            }
            // Decode reads the whole K/V cache for one query token:
            // memory-bound streaming, linear in kv_len.
            KernelClass::AttentionDecode {
                batch_heads,
                kv_len,
                head_dim,
            } => {
                let flops = 4.0 * batch_heads as f64 * kv_len as f64 * head_dim as f64;
                let bytes = 2 * batch_heads * kv_len * head_dim * 2; // K + V in bf16
                self.attention_cost(flops, bytes)
            }
            // Read + write in bf16, ~1.5 passes for fused pointwise.
            KernelClass::Elementwise { elems } => self.stream_cost(elems * 3),
            // LayerNorm: two passes over input + write (bf16).
            KernelClass::Norm { elems } => self.stream_cost(elems * 6),
            // Softmax/cross-entropy: read, reduce, write.
            KernelClass::Softmax { elems } => self.stream_cost(elems * 6),
            // Gather: read indices + write rows (bf16 out).
            KernelClass::Embedding { elems } => self.stream_cost(elems * 4),
            // Adam fp32: read p/g/m/v, write p/m/v = 7 words/param.
            KernelClass::Optimizer { params } => self.stream_cost(params * 28),
            KernelClass::Memcpy { bytes } => self.stream_cost(bytes * 2),
            KernelClass::Memset { bytes } => self.stream_cost(bytes),
            KernelClass::Other => self.min_kernel + Dur::from_us(3),
            KernelClass::Collective(_) => {
                panic!("collective kernels are priced by collective_cost")
            }
        }
    }

    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        self.collective.duration(kind, bytes, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::CommMeta;

    fn model() -> AnalyticalCostModel {
        AnalyticalCostModel::h100()
    }

    #[test]
    fn gpt3_gemm_magnitude_realistic() {
        // GPT-3 175B QKV projection at tp=8, tokens=2048:
        // m=2048, n=3*12288/8=4608, k=12288 -> ~232 GFLOP.
        let m = model();
        let d = m.compute_cost(&KernelClass::Gemm {
            m: 2048,
            n: 4608,
            k: 12288,
        });
        // Must land in the hundreds of microseconds on H100.
        let us = d.as_us_f64();
        assert!((100.0..2_000.0).contains(&us), "qkv gemm {us}us");
    }

    #[test]
    fn attention_scales_quadratically_in_seq() {
        let m = model();
        let t1 = m.compute_cost(&KernelClass::AttentionFwd {
            batch_heads: 12,
            seq: 2048,
            head_dim: 128,
        });
        let t2 = m.compute_cost(&KernelClass::AttentionFwd {
            batch_heads: 12,
            seq: 4096,
            head_dim: 128,
        });
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((3.0..5.0).contains(&ratio), "seq scaling ratio {ratio}");
    }

    #[test]
    fn backward_attention_slower_than_forward() {
        let m = model();
        let fwd = m.compute_cost(&KernelClass::AttentionFwd {
            batch_heads: 12,
            seq: 2048,
            head_dim: 128,
        });
        let bwd = m.compute_cost(&KernelClass::AttentionBwd {
            batch_heads: 12,
            seq: 2048,
            head_dim: 128,
        });
        assert!(bwd > fwd);
    }

    #[test]
    fn optimizer_streams_many_bytes() {
        let m = model();
        // 1B params at 28 bytes/param over ~2.5TB/s: ~11ms.
        let d = m.compute_cost(&KernelClass::Optimizer {
            params: 1_000_000_000,
        });
        let ms = d.as_ms_f64();
        assert!((5.0..30.0).contains(&ms), "adam {ms}ms");
    }

    #[test]
    fn kernel_cost_dispatches_collectives() {
        let m = model();
        let meta = CommMeta {
            kind: CollectiveKind::AllReduce,
            group: 1,
            seq: 0,
            bytes: 1 << 24,
        };
        let via_dispatch = m.kernel_cost(&KernelClass::Collective(meta), &[0, 1, 2, 3]);
        let direct = m.collective_cost(CollectiveKind::AllReduce, 1 << 24, &[0, 1, 2, 3]);
        assert_eq!(via_dispatch, direct);
    }

    #[test]
    #[should_panic(expected = "collective")]
    fn compute_cost_rejects_collectives() {
        let m = model();
        let meta = CommMeta {
            kind: CollectiveKind::AllReduce,
            group: 1,
            seq: 0,
            bytes: 8,
        };
        let _ = m.compute_cost(&KernelClass::Collective(meta));
    }

    #[test]
    fn all_compute_classes_positive_and_deterministic() {
        let m = model();
        let classes = [
            KernelClass::Gemm {
                m: 64,
                n: 64,
                k: 64,
            },
            KernelClass::AttentionFwd {
                batch_heads: 4,
                seq: 128,
                head_dim: 64,
            },
            KernelClass::AttentionBwd {
                batch_heads: 4,
                seq: 128,
                head_dim: 64,
            },
            KernelClass::Elementwise { elems: 1000 },
            KernelClass::Norm { elems: 1000 },
            KernelClass::Softmax { elems: 1000 },
            KernelClass::Embedding { elems: 1000 },
            KernelClass::Optimizer { params: 1000 },
            KernelClass::Memcpy { bytes: 1000 },
            KernelClass::Memset { bytes: 1000 },
            KernelClass::Other,
        ];
        for c in &classes {
            let d = m.compute_cost(c);
            assert!(d > Dur::ZERO, "{c:?} must cost > 0");
            assert_eq!(d, m.compute_cost(c), "{c:?} must be deterministic");
        }
    }

    #[test]
    fn reference_costmodel_impl_works() {
        fn total<M: CostModel>(m: &M) -> Dur {
            m.compute_cost(&KernelClass::Other)
        }
        let m = model();
        assert_eq!(total(&&m), total(&m));
    }
}
