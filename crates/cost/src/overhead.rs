//! Host-side timing constants: CPU operator overheads, CUDA runtime
//! call durations, and launch-to-start gaps.
//!
//! These calibrate the CPU half of the synthetic traces. Values are
//! representative of PyTorch 2.x on a modern server CPU (microseconds
//! per dispatch; launch gaps of a few microseconds when the stream is
//! idle).

use lumos_trace::Dur;
use serde::{Deserialize, Serialize};

/// Host-side cost constants.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostOverheads {
    /// Framework dispatch time of a CPU operator (excluding runtime
    /// calls made inside it).
    pub cpu_op: Dur,
    /// Duration of a `cudaLaunchKernel` call on the host.
    pub launch_call: Dur,
    /// Earliest a kernel may start after its launch call returns,
    /// when the stream is idle.
    pub launch_gap: Dur,
    /// Duration of `cudaEventRecord` / `cudaStreamWaitEvent` calls.
    pub event_call: Dur,
    /// Host-side cost of a synchronization call itself (the blocking
    /// wait is modeled by the simulator, not this constant).
    pub sync_call: Dur,
}

impl HostOverheads {
    /// PyTorch 2.x-calibrated defaults.
    pub fn pytorch_defaults() -> Self {
        HostOverheads {
            cpu_op: Dur::from_us(6),
            launch_call: Dur::from_us(4),
            launch_gap: Dur::from_us(2),
            event_call: Dur::from_us(1),
            sync_call: Dur::from_us(2),
        }
    }

    /// A faster host (e.g. CUDA graphs / lean dispatch), for what-if
    /// studies on CPU-bound launch behavior.
    pub fn lean() -> Self {
        HostOverheads {
            cpu_op: Dur::from_us(2),
            launch_call: Dur(1_500),
            launch_gap: Dur(800),
            event_call: Dur(500),
            sync_call: Dur(800),
        }
    }
}

impl Default for HostOverheads {
    fn default() -> Self {
        HostOverheads::pytorch_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reasonable() {
        let h = HostOverheads::default();
        assert!(h.cpu_op >= h.launch_call);
        assert!(h.launch_call > Dur::ZERO);
        assert_eq!(h, HostOverheads::pytorch_defaults());
    }

    #[test]
    fn lean_faster_than_default() {
        let (lean, def) = (HostOverheads::lean(), HostOverheads::default());
        assert!(lean.cpu_op < def.cpu_op);
        assert!(lean.launch_call < def.launch_call);
        assert!(lean.launch_gap < def.launch_gap);
    }
}
