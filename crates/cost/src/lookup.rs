//! Trace-fitted lookup cost model — the stand-in for the paper's
//! "in-house GPU kernel performance model, built by analyzing fleet
//! GPU traces" (§4.3.1).
//!
//! Observed kernel durations are recorded keyed by their shape-
//! carrying [`KernelClass`] (and, for collectives, by payload and
//! communicator size/topology). Queries for recorded shapes return the
//! observed mean; unseen shapes fall back to an inner model —
//! exactly how a fleet model behaves: accurate where fleet coverage
//! exists, extrapolating elsewhere.
//!
//! The model is split in two so calibration can be persisted:
//!
//! * [`LookupTables`] — the concrete, serializable fitted state
//!   (compute and collective observation tables). This is what a
//!   calibration artifact stores on disk and what repeated queries
//!   share; serialization round-trips bit-exactly, so predictions
//!   priced from a reloaded table are identical to ones priced from a
//!   freshly fitted one.
//! * [`LookupCostModel`] — a thin generic wrapper pairing tables with
//!   a fallback [`CostModel`] for unseen shapes.

use crate::CostModel;
use lumos_trace::{CollectiveKind, Dur, KernelClass};
use serde::{de, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Accumulated duration observations for one table key. The exact
/// nanosecond total is kept (not a running mean) so serialization can
/// round-trip the fitted state bit-exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Acc {
    total_ns: u128,
    count: u64,
}

impl Acc {
    fn record(&mut self, d: Dur) {
        self.total_ns += d.as_ns() as u128;
        self.count += 1;
    }

    fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur((self.total_ns / self.count as u128) as u64)
        }
    }
}

// The vendored serde data model has no u128; encode the nanosecond
// total as (hi, lo) u64 halves so fitted state round-trips exactly.
impl Serialize for Acc {
    fn serialize_value(&self) -> Value {
        (
            (self.total_ns >> 64) as u64,
            self.total_ns as u64,
            self.count,
        )
            .serialize_value()
    }
}

impl Deserialize for Acc {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let (hi, lo, count) = <(u64, u64, u64)>::deserialize_value(v)?;
        Ok(Acc {
            total_ns: ((hi as u128) << 64) | lo as u128,
            count,
        })
    }
}

/// Key for collective observations: payload and communicator
/// cardinality + placement determine cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct CollKey {
    kind: CollectiveKind,
    bytes: u64,
    members: usize,
    intra_node: bool,
}

/// The concrete fitted state of a lookup cost model: per-shape compute
/// observations and per-(kind, payload, topology) collective
/// observations, plus the `gpus_per_node` used to classify collective
/// placements.
///
/// Serializable (this is the payload a calibration artifact persists)
/// and exactly reproducible: `deserialize(serialize(t)) == t`, and
/// every mean queried from the round-tripped table equals the
/// original's bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LookupTables {
    compute: HashMap<KernelClass, Acc>,
    collectives: HashMap<CollKey, Acc>,
    gpus_per_node: u32,
}

impl LookupTables {
    /// Creates empty tables. `gpus_per_node` classifies collective
    /// placements (intra- vs inter-node).
    ///
    /// # Panics
    ///
    /// Panics when `gpus_per_node` is zero.
    pub fn new(gpus_per_node: u32) -> Self {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        LookupTables {
            compute: HashMap::new(),
            collectives: HashMap::new(),
            gpus_per_node,
        }
    }

    fn coll_key(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> CollKey {
        let intra_node = {
            let mut nodes = members.iter().map(|&r| r / self.gpus_per_node);
            match nodes.next() {
                Some(first) => nodes.all(|n| n == first),
                None => true,
            }
        };
        CollKey {
            kind,
            bytes,
            members: members.len(),
            intra_node,
        }
    }

    /// The `gpus_per_node` the tables were fitted with.
    pub fn gpus_per_node(&self) -> u32 {
        self.gpus_per_node
    }

    /// Records one observation of a compute kernel.
    ///
    /// # Panics
    ///
    /// Panics when handed a collective class; use
    /// [`LookupTables::record_collective`] for those.
    pub fn record_compute(&mut self, class: KernelClass, observed: Dur) {
        assert!(
            !matches!(class, KernelClass::Collective(_)),
            "collectives are recorded via record_collective"
        );
        self.compute.entry(class).or_default().record(observed);
    }

    /// Records one observation of a collective instance.
    pub fn record_collective(
        &mut self,
        kind: CollectiveKind,
        bytes: u64,
        members: &[u32],
        observed: Dur,
    ) {
        self.collectives
            .entry(self.coll_key(kind, bytes, members))
            .or_default()
            .record(observed);
    }

    /// Number of distinct compute shapes recorded.
    pub fn compute_entries(&self) -> usize {
        self.compute.len()
    }

    /// Number of distinct collective keys recorded.
    pub fn collective_entries(&self) -> usize {
        self.collectives.len()
    }

    /// Whether a compute shape has fleet coverage.
    pub fn covers(&self, class: &KernelClass) -> bool {
        self.compute.contains_key(class)
    }

    /// The observed mean for a recorded compute shape (`None` when the
    /// shape has no coverage).
    pub fn compute_mean(&self, class: &KernelClass) -> Option<Dur> {
        match self.compute.get(class) {
            Some(acc) if acc.count > 0 => Some(acc.mean()),
            _ => None,
        }
    }

    /// The observed mean for a recorded collective key (`None` when
    /// the (kind, payload, topology) combination has no coverage).
    pub fn collective_mean(
        &self,
        kind: CollectiveKind,
        bytes: u64,
        members: &[u32],
    ) -> Option<Dur> {
        match self.collectives.get(&self.coll_key(kind, bytes, members)) {
            Some(acc) if acc.count > 0 => Some(acc.mean()),
            _ => None,
        }
    }

    /// Fits tables from every kernel observation in a cluster trace —
    /// the "fleet traces" the paper's in-house model is built from.
    /// Collective membership is derived from the trace itself (the
    /// ranks issuing each communicator).
    pub fn fit_from_trace(trace: &lumos_trace::ClusterTrace, gpus_per_node: u32) -> Self {
        use lumos_trace::EventKind;
        let mut tables = LookupTables::new(gpus_per_node);
        // First pass: communicator membership.
        let mut members: HashMap<u64, Vec<u32>> = HashMap::new();
        for rank_trace in trace.ranks() {
            for e in rank_trace.kernels() {
                if let EventKind::Kernel {
                    class: KernelClass::Collective(meta),
                    ..
                } = e.kind
                {
                    let m = members.entry(meta.group).or_default();
                    if !m.contains(&rank_trace.rank().0) {
                        m.push(rank_trace.rank().0);
                    }
                }
            }
        }
        // Second pass: observations.
        for rank_trace in trace.ranks() {
            for e in rank_trace.kernels() {
                if let EventKind::Kernel { class, .. } = e.kind {
                    match class {
                        KernelClass::Collective(meta) => {
                            let m = &members[&meta.group];
                            tables.record_collective(meta.kind, meta.bytes, m, e.dur);
                        }
                        other => tables.record_compute(other, e.dur),
                    }
                }
            }
        }
        tables
    }
}

/// A cost model fitted from observed traces, backed by a fallback
/// model for unseen shapes: concrete [`LookupTables`] plus the generic
/// fallback.
#[derive(Debug, Clone)]
pub struct LookupCostModel<F> {
    tables: LookupTables,
    fallback: F,
}

impl<F: CostModel> LookupCostModel<F> {
    /// Creates an empty table over `fallback`. `gpus_per_node` is used
    /// to classify collective placements consistently with the
    /// fallback's cluster spec.
    pub fn new(fallback: F, gpus_per_node: u32) -> Self {
        LookupCostModel {
            tables: LookupTables::new(gpus_per_node),
            fallback,
        }
    }

    /// Pairs previously fitted (e.g. deserialized from a calibration
    /// artifact) tables with a fallback for unseen shapes.
    pub fn from_tables(tables: LookupTables, fallback: F) -> Self {
        LookupCostModel { tables, fallback }
    }

    /// The fitted tables.
    pub fn tables(&self) -> &LookupTables {
        &self.tables
    }

    /// Unwraps into the fitted tables, dropping the fallback.
    pub fn into_tables(self) -> LookupTables {
        self.tables
    }

    /// Records one observation of a compute kernel.
    pub fn record_compute(&mut self, class: KernelClass, observed: Dur) {
        self.tables.record_compute(class, observed);
    }

    /// Records one observation of a collective instance.
    pub fn record_collective(
        &mut self,
        kind: CollectiveKind,
        bytes: u64,
        members: &[u32],
        observed: Dur,
    ) {
        self.tables
            .record_collective(kind, bytes, members, observed);
    }

    /// Number of distinct compute shapes recorded.
    pub fn compute_entries(&self) -> usize {
        self.tables.compute_entries()
    }

    /// Number of distinct collective keys recorded.
    pub fn collective_entries(&self) -> usize {
        self.tables.collective_entries()
    }

    /// Whether a compute shape has fleet coverage.
    pub fn covers(&self, class: &KernelClass) -> bool {
        self.tables.covers(class)
    }

    /// Fits a table from every kernel observation in a cluster trace —
    /// the "fleet traces" the paper's in-house model is built from.
    /// Collective membership is derived from the trace itself (the
    /// ranks issuing each communicator).
    pub fn fit_from_trace(
        trace: &lumos_trace::ClusterTrace,
        fallback: F,
        gpus_per_node: u32,
    ) -> Self {
        LookupCostModel {
            tables: LookupTables::fit_from_trace(trace, gpus_per_node),
            fallback,
        }
    }
}

impl<F: CostModel> CostModel for LookupCostModel<F> {
    fn compute_cost(&self, class: &KernelClass) -> Dur {
        match self.tables.compute_mean(class) {
            Some(mean) => mean,
            None => self.fallback.compute_cost(class),
        }
    }

    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        match self.tables.collective_mean(kind, bytes, members) {
            Some(mean) => mean,
            None => self.fallback.collective_cost(kind, bytes, members),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::AnalyticalCostModel;

    fn lookup() -> LookupCostModel<AnalyticalCostModel> {
        LookupCostModel::new(AnalyticalCostModel::h100(), 8)
    }

    #[test]
    fn recorded_shapes_return_observed_mean() {
        let mut m = lookup();
        let shape = KernelClass::Gemm {
            m: 128,
            n: 128,
            k: 128,
        };
        m.record_compute(shape, Dur::from_us(100));
        m.record_compute(shape, Dur::from_us(200));
        assert_eq!(m.compute_cost(&shape), Dur::from_us(150));
        assert!(m.covers(&shape));
        assert_eq!(m.compute_entries(), 1);
    }

    #[test]
    fn unseen_shapes_fall_back() {
        let m = lookup();
        let shape = KernelClass::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        assert!(!m.covers(&shape));
        assert_eq!(
            m.compute_cost(&shape),
            AnalyticalCostModel::h100().compute_cost(&shape)
        );
    }

    #[test]
    fn collectives_keyed_by_topology() {
        let mut m = lookup();
        let intra: Vec<u32> = (0..4).collect();
        let inter = [0u32, 9];
        m.record_collective(CollectiveKind::AllReduce, 1024, &intra, Dur::from_us(50));
        // Same bytes, different placement: still falls back.
        let fb = AnalyticalCostModel::h100();
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &inter),
            fb.collective_cost(CollectiveKind::AllReduce, 1024, &inter)
        );
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &intra),
            Dur::from_us(50)
        );
        // Any 4 intra-node members hit the same key.
        let other_intra: Vec<u32> = (8..12).collect();
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &other_intra),
            Dur::from_us(50)
        );
    }

    #[test]
    #[should_panic(expected = "record_collective")]
    fn recording_collective_as_compute_panics() {
        let mut m = lookup();
        m.record_compute(
            KernelClass::Collective(lumos_trace::CommMeta {
                kind: CollectiveKind::AllReduce,
                group: 0,
                seq: 0,
                bytes: 8,
            }),
            Dur::from_us(1),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gpus_per_node_panics() {
        let _ = LookupCostModel::new(AnalyticalCostModel::h100(), 0);
    }

    #[test]
    fn tables_round_trip_bit_exact() {
        let mut t = LookupTables::new(8);
        let shape = KernelClass::Gemm {
            m: 256,
            n: 512,
            k: 128,
        };
        t.record_compute(shape, Dur(333_333));
        t.record_compute(shape, Dur(333_334));
        t.record_compute(shape, Dur(1));
        let members: Vec<u32> = (0..4).collect();
        t.record_collective(CollectiveKind::AllReduce, 4096, &members, Dur(777));
        t.record_collective(CollectiveKind::SendRecv, 128, &[0, 9], Dur(99));

        let json = serde_json::to_string(&t).expect("tables serialize");
        let back: LookupTables = serde_json::from_str(&json).expect("tables parse");
        assert_eq!(back, t);
        assert_eq!(back.compute_mean(&shape), t.compute_mean(&shape));
        assert_eq!(
            back.collective_mean(CollectiveKind::AllReduce, 4096, &members),
            t.collective_mean(CollectiveKind::AllReduce, 4096, &members)
        );
        // Deterministic encoding: serializing the round-tripped value
        // reproduces the same bytes (hash-map entries are sorted).
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);
    }

    #[test]
    fn acc_round_trips_beyond_u64_totals() {
        let acc = Acc {
            total_ns: (u64::MAX as u128) * 5 + 17,
            count: 3,
        };
        let back = Acc::deserialize_value(&acc.serialize_value()).expect("acc parses");
        assert_eq!(back, acc);
    }

    #[test]
    fn from_tables_matches_fitted_model() {
        let mut m = lookup();
        let shape = KernelClass::Gemm {
            m: 64,
            n: 64,
            k: 64,
        };
        m.record_compute(shape, Dur::from_us(42));
        let rebuilt = LookupCostModel::from_tables(m.tables().clone(), AnalyticalCostModel::h100());
        assert_eq!(rebuilt.compute_cost(&shape), m.compute_cost(&shape));
        assert_eq!(rebuilt.into_tables(), m.into_tables());
    }
}
