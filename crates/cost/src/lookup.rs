//! Trace-fitted lookup cost model — the stand-in for the paper's
//! "in-house GPU kernel performance model, built by analyzing fleet
//! GPU traces" (§4.3.1).
//!
//! Observed kernel durations are recorded keyed by their shape-
//! carrying [`KernelClass`] (and, for collectives, by payload and
//! communicator size/topology). Queries for recorded shapes return the
//! observed mean; unseen shapes fall back to an inner model —
//! exactly how a fleet model behaves: accurate where fleet coverage
//! exists, extrapolating elsewhere.

use crate::CostModel;
use lumos_trace::{CollectiveKind, Dur, KernelClass};
use std::collections::HashMap;

#[derive(Debug, Clone, Default)]
struct Acc {
    total_ns: u128,
    count: u64,
}

impl Acc {
    fn record(&mut self, d: Dur) {
        self.total_ns += d.as_ns() as u128;
        self.count += 1;
    }

    fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur((self.total_ns / self.count as u128) as u64)
        }
    }
}

/// Key for collective observations: payload and communicator
/// cardinality + placement determine cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CollKey {
    kind: CollectiveKind,
    bytes: u64,
    members: usize,
    intra_node: bool,
}

/// A cost model fitted from observed traces, backed by a fallback
/// model for unseen shapes.
#[derive(Debug, Clone)]
pub struct LookupCostModel<F> {
    compute: HashMap<KernelClass, Acc>,
    collectives: HashMap<CollKey, Acc>,
    gpus_per_node: u32,
    fallback: F,
}

impl<F: CostModel> LookupCostModel<F> {
    /// Creates an empty table over `fallback`. `gpus_per_node` is used
    /// to classify collective placements consistently with the
    /// fallback's cluster spec.
    pub fn new(fallback: F, gpus_per_node: u32) -> Self {
        assert!(gpus_per_node > 0, "gpus_per_node must be positive");
        LookupCostModel {
            compute: HashMap::new(),
            collectives: HashMap::new(),
            gpus_per_node,
            fallback,
        }
    }

    fn coll_key(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> CollKey {
        let intra_node = {
            let mut nodes = members.iter().map(|&r| r / self.gpus_per_node);
            match nodes.next() {
                Some(first) => nodes.all(|n| n == first),
                None => true,
            }
        };
        CollKey {
            kind,
            bytes,
            members: members.len(),
            intra_node,
        }
    }

    /// Records one observation of a compute kernel.
    pub fn record_compute(&mut self, class: KernelClass, observed: Dur) {
        assert!(
            !matches!(class, KernelClass::Collective(_)),
            "collectives are recorded via record_collective"
        );
        self.compute.entry(class).or_default().record(observed);
    }

    /// Records one observation of a collective instance.
    pub fn record_collective(
        &mut self,
        kind: CollectiveKind,
        bytes: u64,
        members: &[u32],
        observed: Dur,
    ) {
        self.collectives
            .entry(self.coll_key(kind, bytes, members))
            .or_default()
            .record(observed);
    }

    /// Number of distinct compute shapes recorded.
    pub fn compute_entries(&self) -> usize {
        self.compute.len()
    }

    /// Number of distinct collective keys recorded.
    pub fn collective_entries(&self) -> usize {
        self.collectives.len()
    }

    /// Whether a compute shape has fleet coverage.
    pub fn covers(&self, class: &KernelClass) -> bool {
        self.compute.contains_key(class)
    }

    /// Fits a table from every kernel observation in a cluster trace —
    /// the "fleet traces" the paper's in-house model is built from.
    /// Collective membership is derived from the trace itself (the
    /// ranks issuing each communicator).
    pub fn fit_from_trace(
        trace: &lumos_trace::ClusterTrace,
        fallback: F,
        gpus_per_node: u32,
    ) -> Self {
        use lumos_trace::EventKind;
        let mut model = LookupCostModel::new(fallback, gpus_per_node);
        // First pass: communicator membership.
        let mut members: HashMap<u64, Vec<u32>> = HashMap::new();
        for rank_trace in trace.ranks() {
            for e in rank_trace.kernels() {
                if let EventKind::Kernel {
                    class: KernelClass::Collective(meta),
                    ..
                } = e.kind
                {
                    let m = members.entry(meta.group).or_default();
                    if !m.contains(&rank_trace.rank().0) {
                        m.push(rank_trace.rank().0);
                    }
                }
            }
        }
        // Second pass: observations.
        for rank_trace in trace.ranks() {
            for e in rank_trace.kernels() {
                if let EventKind::Kernel { class, .. } = e.kind {
                    match class {
                        KernelClass::Collective(meta) => {
                            let m = &members[&meta.group];
                            model.record_collective(meta.kind, meta.bytes, m, e.dur);
                        }
                        other => model.record_compute(other, e.dur),
                    }
                }
            }
        }
        model
    }
}

impl<F: CostModel> CostModel for LookupCostModel<F> {
    fn compute_cost(&self, class: &KernelClass) -> Dur {
        match self.compute.get(class) {
            Some(acc) if acc.count > 0 => acc.mean(),
            _ => self.fallback.compute_cost(class),
        }
    }

    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        match self.collectives.get(&self.coll_key(kind, bytes, members)) {
            Some(acc) if acc.count > 0 => acc.mean(),
            _ => self.fallback.collective_cost(kind, bytes, members),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::AnalyticalCostModel;

    fn lookup() -> LookupCostModel<AnalyticalCostModel> {
        LookupCostModel::new(AnalyticalCostModel::h100(), 8)
    }

    #[test]
    fn recorded_shapes_return_observed_mean() {
        let mut m = lookup();
        let shape = KernelClass::Gemm {
            m: 128,
            n: 128,
            k: 128,
        };
        m.record_compute(shape, Dur::from_us(100));
        m.record_compute(shape, Dur::from_us(200));
        assert_eq!(m.compute_cost(&shape), Dur::from_us(150));
        assert!(m.covers(&shape));
        assert_eq!(m.compute_entries(), 1);
    }

    #[test]
    fn unseen_shapes_fall_back() {
        let m = lookup();
        let shape = KernelClass::Gemm {
            m: 4096,
            n: 4096,
            k: 4096,
        };
        assert!(!m.covers(&shape));
        assert_eq!(
            m.compute_cost(&shape),
            AnalyticalCostModel::h100().compute_cost(&shape)
        );
    }

    #[test]
    fn collectives_keyed_by_topology() {
        let mut m = lookup();
        let intra: Vec<u32> = (0..4).collect();
        let inter = [0u32, 9];
        m.record_collective(CollectiveKind::AllReduce, 1024, &intra, Dur::from_us(50));
        // Same bytes, different placement: still falls back.
        let fb = AnalyticalCostModel::h100();
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &inter),
            fb.collective_cost(CollectiveKind::AllReduce, 1024, &inter)
        );
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &intra),
            Dur::from_us(50)
        );
        // Any 4 intra-node members hit the same key.
        let other_intra: Vec<u32> = (8..12).collect();
        assert_eq!(
            m.collective_cost(CollectiveKind::AllReduce, 1024, &other_intra),
            Dur::from_us(50)
        );
    }

    #[test]
    #[should_panic(expected = "record_collective")]
    fn recording_collective_as_compute_panics() {
        let mut m = lookup();
        m.record_compute(
            KernelClass::Collective(lumos_trace::CommMeta {
                kind: CollectiveKind::AllReduce,
                group: 0,
                seq: 0,
                bytes: 8,
            }),
            Dur::from_us(1),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gpus_per_node_panics() {
        let _ = LookupCostModel::new(AnalyticalCostModel::h100(), 0);
    }
}
