//! Hardware descriptions and kernel/collective cost models.
//!
//! The paper re-costs kernels whose shapes change under a new
//! configuration using "an in-house GPU kernel performance model,
//! built by analyzing fleet GPU traces" (§4.3.1) and explicitly treats
//! kernel-runtime prediction as replaceable ("predicting the runtime
//! of individual kernels is beyond the scope of this work", §5).
//!
//! This crate supplies two interchangeable oracles behind the
//! [`CostModel`] trait:
//!
//! * [`AnalyticalCostModel`] — first-principles H100 models: a
//!   roofline GEMM model with tile/wave quantization, bandwidth models
//!   for pointwise/normalization/optimizer kernels, and a hierarchical
//!   latency–bandwidth model for NCCL-style collectives over
//!   NVLink + RoCE;
//! * [`LookupCostModel`] — a table fitted from previously collected
//!   traces (the "fleet model" substitute), falling back to the
//!   analytical model for unseen shapes. Its fitted state is a
//!   concrete, serializable [`LookupTables`] so that a calibration
//!   can be persisted once and shared across many queries.
//!
//! Host-side timing constants (operator overheads, launch costs,
//! synchronization polling) live in [`HostOverheads`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collective;
mod gemm;
mod hardware;
mod kernels;
mod lookup;
mod overhead;

pub use collective::{CollectiveAlgorithm, CollectiveModel};
pub use gemm::GemmModel;
pub use hardware::{ClusterSpec, GpuSpec, NodeSpec};
pub use kernels::AnalyticalCostModel;
pub use lookup::{LookupCostModel, LookupTables};
pub use overhead::HostOverheads;

use lumos_trace::{CollectiveKind, Dur, KernelClass};

/// A kernel-runtime oracle: prices compute kernels by shape and
/// collectives by payload and membership.
///
/// Implementations must be deterministic — the same query always
/// returns the same duration — so that simulated replays are
/// reproducible.
pub trait CostModel {
    /// Device time of a non-collective kernel.
    ///
    /// # Panics
    ///
    /// Implementations may panic when handed a
    /// [`KernelClass::Collective`]; use [`CostModel::collective_cost`]
    /// for those.
    fn compute_cost(&self, class: &KernelClass) -> Dur;

    /// Device time of one collective instance, given the payload
    /// `bytes` contributed per rank and the global ranks of all
    /// members. The returned duration covers the transfer only; queue
    /// and rendezvous waits are the simulator's job.
    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur;

    /// Prices any kernel class, dispatching collectives to
    /// [`CostModel::collective_cost`] using the metadata's byte count
    /// and the supplied member list.
    fn kernel_cost(&self, class: &KernelClass, members: &[u32]) -> Dur {
        match class {
            KernelClass::Collective(meta) => self.collective_cost(meta.kind, meta.bytes, members),
            other => self.compute_cost(other),
        }
    }
}

impl<T: CostModel + ?Sized> CostModel for &T {
    fn compute_cost(&self, class: &KernelClass) -> Dur {
        (**self).compute_cost(class)
    }
    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        (**self).collective_cost(kind, bytes, members)
    }
}

impl<T: CostModel + ?Sized> CostModel for std::sync::Arc<T> {
    fn compute_cost(&self, class: &KernelClass) -> Dur {
        (**self).compute_cost(class)
    }
    fn collective_cost(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        (**self).collective_cost(kind, bytes, members)
    }
}
