//! Roofline GEMM cost model with tile/wave quantization.
//!
//! Duration is the maximum of a compute bound and a memory bound:
//!
//! * compute: `2·m·n·k / (peak · efficiency)`, where efficiency folds
//!   in (a) achievable tensor-core utilization, (b) *wave
//!   quantization* — output tiles are scheduled in waves across the
//!   SMs, so a final partial wave wastes throughput — and (c) a small-
//!   `k` penalty for mainloop-dominated shapes;
//! * memory: operand + output bytes over HBM bandwidth.
//!
//! A fixed per-kernel epilogue overhead bounds tiny GEMMs away from
//! zero.

use crate::hardware::GpuSpec;
use lumos_trace::Dur;
use serde::{Deserialize, Serialize};

/// Analytical GEMM timing for one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GemmModel {
    gpu: GpuSpec,
    /// CUTLASS-style output tile edge (128×128 tiles).
    tile: u64,
    /// Peak fraction achievable by a well-tuned kernel on large
    /// shapes.
    max_efficiency: f64,
    /// Bytes per element (BF16).
    elem_bytes: u64,
    /// Fixed kernel overhead.
    overhead: Dur,
}

impl GemmModel {
    /// Creates a model for `gpu` with H100-calibrated constants.
    pub fn new(gpu: GpuSpec) -> Self {
        GemmModel {
            gpu,
            tile: 128,
            max_efficiency: 0.78,
            elem_bytes: 2,
            overhead: Dur::from_us(3),
        }
    }

    /// The modeled efficiency (fraction of peak) for an `m×n×k` GEMM.
    pub fn efficiency(&self, m: u64, n: u64, k: u64) -> f64 {
        if m == 0 || n == 0 || k == 0 {
            return self.max_efficiency;
        }
        // Wave quantization: tiles round up to whole waves over SMs.
        let tiles = m.div_ceil(self.tile) * n.div_ceil(self.tile);
        let sms = self.gpu.num_sms as u64;
        let waves = tiles.div_ceil(sms);
        let wave_eff = tiles as f64 / (waves * sms) as f64;
        // Small-k mainloop penalty: k below ~512 cannot hide operand
        // latency.
        let k_eff = k as f64 / (k as f64 + 256.0);
        // Small-tile penalty: partial edge tiles do redundant work.
        let mf = (m as f64 / self.tile as f64).min(1.0);
        let nf = (n as f64 / self.tile as f64).min(1.0);
        self.max_efficiency * wave_eff.min(1.0) * k_eff * mf * nf
    }

    /// Predicted duration of an `m×n×k` GEMM.
    pub fn duration(&self, m: u64, n: u64, k: u64) -> Dur {
        if m == 0 || n == 0 || k == 0 {
            return self.overhead;
        }
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        let eff = self.efficiency(m, n, k).max(1e-3);
        let t_compute = flops / (self.gpu.peak_flops() * eff);
        let bytes = (m * k + k * n + m * n) * self.elem_bytes;
        let t_mem = bytes as f64 / (self.gpu.hbm_bytes_per_sec() * 0.85);
        self.overhead + Dur::from_secs_f64(t_compute.max(t_mem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GemmModel {
        GemmModel::new(GpuSpec::h100_sxm())
    }

    #[test]
    fn large_gemm_near_peak() {
        let m = model();
        // 8k^3 GEMM: compute bound, should run at >60% of peak.
        let d = m.duration(8192, 8192, 8192);
        let flops = 2.0 * 8192f64.powi(3);
        let achieved = flops / d.as_secs_f64();
        let frac = achieved / GpuSpec::h100_sxm().peak_flops();
        assert!((0.5..0.85).contains(&frac), "achieved fraction {frac}");
    }

    #[test]
    fn tiny_gemm_dominated_by_overhead() {
        let m = model();
        let d = m.duration(16, 16, 16);
        assert!(d >= Dur::from_us(3));
        assert!(d < Dur::from_us(5));
    }

    #[test]
    fn duration_monotonic_in_each_dim() {
        let m = model();
        let base = m.duration(2048, 4096, 4096);
        assert!(m.duration(4096, 4096, 4096) >= base);
        assert!(m.duration(2048, 8192, 4096) >= base);
        assert!(m.duration(2048, 4096, 8192) >= base);
    }

    #[test]
    fn skinny_gemm_memory_bound() {
        let m = model();
        // m=2048, n=64, k=64: tiny flops, bandwidth+overhead bound.
        let d = m.duration(2048, 64, 64);
        let flops = 2.0 * 2048.0 * 64.0 * 64.0;
        let achieved = flops / d.as_secs_f64();
        assert!(achieved < 0.05 * GpuSpec::h100_sxm().peak_flops());
    }

    #[test]
    fn wave_quantization_visible() {
        let m = model();
        // 132 SMs × 128-tiles: 16 tiles along m at n=128 → eff for a
        // shape with one extra tile beyond a full wave dips.
        let full_wave = m.efficiency(128 * 132, 128, 8192);
        let partial = m.efficiency(128 * 133, 128, 8192);
        assert!(partial < full_wave);
    }

    #[test]
    fn zero_dims_cost_overhead_only() {
        let m = model();
        assert_eq!(m.duration(0, 128, 128), Dur::from_us(3));
    }

    #[test]
    fn efficiency_bounded() {
        let m = model();
        for &(a, b, c) in &[(1u64, 1u64, 1u64), (512, 512, 512), (16384, 16384, 16384)] {
            let e = m.efficiency(a, b, c);
            assert!((0.0..=0.78).contains(&e), "eff {e} for {a}x{b}x{c}");
        }
    }
}
