//! Latency–bandwidth model for NCCL-style collectives on a
//! hierarchical NVLink + RoCE fabric.
//!
//! Two algorithm families are modeled, mirroring NCCL's tuner:
//!
//! * **Ring** — an all-reduce of `S` bytes over `n` ranks moves
//!   `2·S·(n−1)/n` bytes through the slowest link on the ring and pays
//!   `2(n−1)` per-hop latencies; bandwidth-optimal, latency-heavy.
//! * **Tree** — a double-binary-tree reduce+broadcast moves `2·S`
//!   through each rank's link but pays only `2·⌈log₂ n⌉` latencies;
//!   wins for small payloads on large communicators.
//!
//! [`CollectiveAlgorithm::Auto`] takes the cheaper of the two per
//! query, the way NCCL's tuning tables do. When a communicator spans
//! several nodes the bottleneck is the NIC bandwidth apportioned to
//! each GPU; fully intra-node communicators ride NVLink/NVSwitch.

use crate::hardware::ClusterSpec;
use lumos_trace::{CollectiveKind, Dur};
use serde::{Deserialize, Serialize};

/// Which collective algorithm family to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CollectiveAlgorithm {
    /// Ring for everything (bandwidth-optimal; the repository default,
    /// matching the calibrated ground-truth substrate).
    #[default]
    Ring,
    /// Double binary tree where applicable (all-reduce, broadcast,
    /// barrier); others fall back to ring.
    Tree,
    /// Per-query minimum of ring and tree (NCCL-tuner-like).
    Auto,
}

/// Collective communication timing on a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveModel {
    cluster: ClusterSpec,
    /// Fraction of nominal link bandwidth achieved by NCCL (protocol
    /// and framing overheads).
    bus_efficiency: f64,
    /// Fixed kernel setup cost per collective.
    base_overhead: Dur,
    /// Algorithm family used by [`CollectiveModel::duration`].
    algorithm: CollectiveAlgorithm,
}

impl CollectiveModel {
    /// Creates a model with NCCL-calibrated constants and ring
    /// algorithms.
    pub fn new(cluster: ClusterSpec) -> Self {
        CollectiveModel {
            cluster,
            bus_efficiency: 0.80,
            base_overhead: Dur::from_us(8),
            algorithm: CollectiveAlgorithm::Ring,
        }
    }

    /// Sets the algorithm family (builder style).
    pub fn with_algorithm(mut self, algorithm: CollectiveAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The algorithm family used for pricing.
    pub fn algorithm(&self) -> CollectiveAlgorithm {
        self.algorithm
    }

    /// The cluster description this model prices against.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The effective per-rank bus bandwidth (bytes/s) for a
    /// communicator with the given members.
    pub fn bus_bandwidth(&self, members: &[u32]) -> f64 {
        let link = if self.cluster.is_intra_node(members) {
            self.cluster.node.gpu.nvlink_bytes_per_sec()
        } else {
            self.cluster.nic_bytes_per_sec()
        };
        link * self.bus_efficiency
    }

    /// Per-hop one-way latency for the communicator.
    pub fn hop_latency(&self, members: &[u32]) -> Dur {
        let us = if self.cluster.is_intra_node(members) {
            self.cluster.intra_node_latency_us
        } else {
            self.cluster.inter_node_latency_us
        };
        Dur::from_secs_f64(us / 1e6)
    }

    /// Predicted duration of one collective instance under the model's
    /// configured algorithm. `bytes` is the payload contributed per
    /// rank (the full tensor for all-reduce, the local shard for
    /// all-gather / reduce-scatter, the message for send/recv).
    pub fn duration(&self, kind: CollectiveKind, bytes: u64, members: &[u32]) -> Dur {
        self.duration_with(self.algorithm, kind, bytes, members)
    }

    /// Predicted duration under an explicit algorithm family.
    pub fn duration_with(
        &self,
        algorithm: CollectiveAlgorithm,
        kind: CollectiveKind,
        bytes: u64,
        members: &[u32],
    ) -> Dur {
        if members.len() <= 1 {
            // Single-member communicators are elided by NCCL.
            return Dur::from_us(2);
        }
        let ring = self.finish(ring_terms(kind, bytes, members.len()), members);
        match algorithm {
            CollectiveAlgorithm::Ring => ring,
            CollectiveAlgorithm::Tree => match tree_terms(kind, bytes, members.len()) {
                Some(t) => self.finish(t, members),
                None => ring,
            },
            CollectiveAlgorithm::Auto => match tree_terms(kind, bytes, members.len()) {
                Some(t) => ring.min(self.finish(t, members)),
                None => ring,
            },
        }
    }

    fn finish(&self, (volume, hops): (f64, f64), members: &[u32]) -> Dur {
        let bw = self.bus_bandwidth(members);
        let lat = self.hop_latency(members);
        self.base_overhead + Dur::from_secs_f64(volume / bw) + lat.scale(hops)
    }
}

/// Ring (volume, hops) terms for each collective kind.
fn ring_terms(kind: CollectiveKind, bytes: u64, members: usize) -> (f64, f64) {
    let n = members.max(1) as f64;
    match kind {
        // Ring all-reduce: reduce-scatter + all-gather phases.
        CollectiveKind::AllReduce => (2.0 * bytes as f64 * (n - 1.0) / n, 2.0 * (n - 1.0)),
        // Ring all-gather / reduce-scatter: (n-1) shard exchanges.
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter => {
            (bytes as f64 * (n - 1.0), n - 1.0)
        }
        // Broadcast: pipeline through the ring once.
        CollectiveKind::Broadcast => (bytes as f64 * (n - 1.0) / n, n - 1.0),
        // Paired send/recv: one traversal of the link.
        CollectiveKind::SendRecv => (bytes as f64, 1.0),
        // Barrier: latency only.
        CollectiveKind::Barrier => (0.0, 2.0 * (n - 1.0)),
    }
}

/// Tree (volume, hops) terms; `None` where no tree algorithm exists
/// (shard exchanges and point-to-point are inherently ring/pairwise).
fn tree_terms(kind: CollectiveKind, bytes: u64, members: usize) -> Option<(f64, f64)> {
    let depth = (members.max(1) as f64).log2().ceil();
    match kind {
        // Double binary tree: reduce up + broadcast down, each rank
        // sends the full payload both ways.
        CollectiveKind::AllReduce => Some((2.0 * bytes as f64, 2.0 * depth)),
        // Binomial broadcast: payload once, log depth.
        CollectiveKind::Broadcast => Some((bytes as f64, depth)),
        CollectiveKind::Barrier => Some((0.0, 2.0 * depth)),
        CollectiveKind::AllGather | CollectiveKind::ReduceScatter | CollectiveKind::SendRecv => {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CollectiveModel {
        CollectiveModel::new(ClusterSpec::h100_roce())
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn intra_node_faster_than_inter() {
        let m = model();
        let intra: Vec<u32> = (0..8).collect();
        let inter: Vec<u32> = (0..16).collect();
        let t_intra = m.duration(CollectiveKind::AllReduce, 64 * MB, &intra);
        let t_inter = m.duration(CollectiveKind::AllReduce, 64 * MB, &inter);
        assert!(
            t_inter > t_intra.scale(2.0),
            "inter {t_inter} should be much slower than intra {t_intra}"
        );
    }

    #[test]
    fn allreduce_volume_saturates_with_ranks() {
        // 2(n-1)/n approaches 2: doubling ranks beyond a few barely
        // moves large-payload cost (paper Fig. 7a: DP scaling changes
        // comm time modestly).
        let m = model();
        let t16 = m.duration(
            CollectiveKind::AllReduce,
            256 * MB,
            &(0..16).collect::<Vec<_>>(),
        );
        let t32 = m.duration(
            CollectiveKind::AllReduce,
            256 * MB,
            &(0..32).collect::<Vec<_>>(),
        );
        let ratio = t32.as_secs_f64() / t16.as_secs_f64();
        assert!((1.0..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let m = model();
        let members: Vec<u32> = (0..32).collect();
        let small = m.duration(CollectiveKind::AllReduce, 1024, &members);
        // 62 hops x 6us plus overhead: must exceed 350us.
        assert!(small > Dur::from_us(350));
        // And payload is irrelevant at this size.
        let small2 = m.duration(CollectiveKind::AllReduce, 2048, &members);
        let diff = small2.as_secs_f64() - small.as_secs_f64();
        assert!(diff < 1e-6);
    }

    #[test]
    fn sendrecv_is_single_hop() {
        let m = model();
        let t = m.duration(CollectiveKind::SendRecv, 50 * MB, &[0, 8]);
        // 50MB over 40GB/s effective ≈ 1.25ms + latency.
        let secs = t.as_secs_f64();
        assert!((0.001..0.002).contains(&secs), "sendrecv {secs}s");
    }

    #[test]
    fn single_member_elided() {
        let m = model();
        assert_eq!(
            m.duration(CollectiveKind::AllReduce, 1 << 30, &[3]),
            Dur::from_us(2)
        );
    }

    #[test]
    fn allgather_symmetric_with_reducescatter() {
        let m = model();
        let members: Vec<u32> = (0..8).collect();
        assert_eq!(
            m.duration(CollectiveKind::AllGather, MB, &members),
            m.duration(CollectiveKind::ReduceScatter, MB, &members)
        );
    }

    #[test]
    fn barrier_pays_latency_only() {
        let m = model();
        let members: Vec<u32> = (0..8).collect();
        let t = m.duration(CollectiveKind::Barrier, 0, &members);
        let with_payload = m.duration(CollectiveKind::Barrier, 1 << 30, &members);
        assert_eq!(t, with_payload);
    }

    #[test]
    fn duration_monotonic_in_bytes() {
        let m = model();
        let members: Vec<u32> = (0..16).collect();
        let mut prev = Dur::ZERO;
        for pow in 10..30 {
            let t = m.duration(CollectiveKind::AllReduce, 1 << pow, &members);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn tree_beats_ring_for_small_payloads_on_many_ranks() {
        // 64 inter-node ranks, 64 KiB: ring pays 126 hops, tree 12.
        let m = model();
        let members: Vec<u32> = (0..64).collect();
        let ring = m.duration_with(
            CollectiveAlgorithm::Ring,
            CollectiveKind::AllReduce,
            64 << 10,
            &members,
        );
        let tree = m.duration_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::AllReduce,
            64 << 10,
            &members,
        );
        assert!(tree < ring, "tree {tree} !< ring {ring}");
    }

    #[test]
    fn ring_beats_tree_for_large_payloads() {
        // 1 GiB over 16 ranks: ring moves 2S·15/16, tree 2S.
        let m = model();
        let members: Vec<u32> = (0..16).collect();
        let ring = m.duration_with(
            CollectiveAlgorithm::Ring,
            CollectiveKind::AllReduce,
            1 << 30,
            &members,
        );
        let tree = m.duration_with(
            CollectiveAlgorithm::Tree,
            CollectiveKind::AllReduce,
            1 << 30,
            &members,
        );
        assert!(ring < tree, "ring {ring} !< tree {tree}");
    }

    #[test]
    fn auto_takes_the_minimum() {
        let m = model();
        let members: Vec<u32> = (0..64).collect();
        for bytes in [1u64 << 10, 1 << 20, 1 << 30] {
            let ring = m.duration_with(
                CollectiveAlgorithm::Ring,
                CollectiveKind::AllReduce,
                bytes,
                &members,
            );
            let tree = m.duration_with(
                CollectiveAlgorithm::Tree,
                CollectiveKind::AllReduce,
                bytes,
                &members,
            );
            let auto = m.duration_with(
                CollectiveAlgorithm::Auto,
                CollectiveKind::AllReduce,
                bytes,
                &members,
            );
            assert_eq!(auto, ring.min(tree));
        }
    }

    #[test]
    fn tree_falls_back_to_ring_where_undefined() {
        let m = model();
        let members: Vec<u32> = (0..8).collect();
        for kind in [
            CollectiveKind::AllGather,
            CollectiveKind::ReduceScatter,
            CollectiveKind::SendRecv,
        ] {
            assert_eq!(
                m.duration_with(CollectiveAlgorithm::Tree, kind, MB, &members),
                m.duration_with(CollectiveAlgorithm::Ring, kind, MB, &members),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn builder_sets_default_algorithm() {
        let m = model().with_algorithm(CollectiveAlgorithm::Auto);
        assert_eq!(m.algorithm(), CollectiveAlgorithm::Auto);
        let members: Vec<u32> = (0..64).collect();
        assert_eq!(
            m.duration(CollectiveKind::AllReduce, 1 << 12, &members),
            m.duration_with(
                CollectiveAlgorithm::Auto,
                CollectiveKind::AllReduce,
                1 << 12,
                &members
            )
        );
    }

    #[test]
    fn crossover_exists_between_ring_and_tree() {
        // Sweeping payload upward must flip the winner exactly once
        // (tree first, ring later) on a large inter-node communicator.
        let m = model();
        let members: Vec<u32> = (0..64).collect();
        let mut flips = 0;
        let mut prev_tree_wins: Option<bool> = None;
        for pow in 10..32 {
            let bytes = 1u64 << pow;
            let ring = m.duration_with(
                CollectiveAlgorithm::Ring,
                CollectiveKind::AllReduce,
                bytes,
                &members,
            );
            let tree = m.duration_with(
                CollectiveAlgorithm::Tree,
                CollectiveKind::AllReduce,
                bytes,
                &members,
            );
            let tree_wins = tree < ring;
            if let Some(prev) = prev_tree_wins {
                if prev != tree_wins {
                    flips += 1;
                    assert!(prev, "winner must flip from tree to ring, not back");
                }
            }
            prev_tree_wins = Some(tree_wins);
        }
        assert_eq!(flips, 1);
    }
}
