//! GPU, node, and cluster hardware specifications.
//!
//! The defaults model the paper's evaluation platform: NVIDIA H100
//! SXM GPUs, 8 per server behind NVSwitch, servers interconnected by
//! 8× 400 Gbps RoCE per host (§4.1).

use serde::{Deserialize, Serialize};

/// A GPU's performance envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Dense BF16 tensor-core peak, in TFLOP/s.
    pub peak_tflops_bf16: f64,
    /// HBM bandwidth, in GB/s.
    pub hbm_gbps: f64,
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Per-GPU unidirectional NVLink bandwidth, in GB/s.
    pub nvlink_gbps: f64,
    /// HBM capacity, in GiB.
    pub memory_gib: u32,
}

impl GpuSpec {
    /// NVIDIA H100 SXM5: 989 TFLOP/s dense BF16, 3.35 TB/s HBM3,
    /// 132 SMs, 450 GB/s NVLink each way.
    pub fn h100_sxm() -> Self {
        GpuSpec {
            name: "H100-SXM5".to_string(),
            peak_tflops_bf16: 989.0,
            hbm_gbps: 3_350.0,
            num_sms: 132,
            nvlink_gbps: 450.0,
            memory_gib: 80,
        }
    }

    /// NVIDIA A100 SXM4 80GB: 312 TFLOP/s dense BF16, 2.04 TB/s HBM2e,
    /// 108 SMs, 300 GB/s NVLink each way. Used for cross-hardware
    /// what-if studies.
    pub fn a100_sxm() -> Self {
        GpuSpec {
            name: "A100-SXM4".to_string(),
            peak_tflops_bf16: 312.0,
            hbm_gbps: 2_039.0,
            num_sms: 108,
            nvlink_gbps: 300.0,
            memory_gib: 80,
        }
    }

    /// Peak FLOP/s as a plain number (not tera).
    pub fn peak_flops(&self) -> f64 {
        self.peak_tflops_bf16 * 1e12
    }

    /// HBM bandwidth in bytes/s.
    pub fn hbm_bytes_per_sec(&self) -> f64 {
        self.hbm_gbps * 1e9
    }

    /// NVLink bandwidth in bytes/s.
    pub fn nvlink_bytes_per_sec(&self) -> f64 {
        self.nvlink_gbps * 1e9
    }

    /// HBM capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_gib as u64 * (1 << 30)
    }
}

/// One server: several GPUs behind an all-to-all NVSwitch fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// The GPU model installed.
    pub gpu: GpuSpec,
    /// GPUs per server (paper: 8, i.e. "512 GPUs on 32 servers").
    pub gpus_per_node: u32,
}

impl NodeSpec {
    /// An 8×H100 SXM server (DGX-H100-like).
    pub fn dgx_h100() -> Self {
        NodeSpec {
            gpu: GpuSpec::h100_sxm(),
            gpus_per_node: 8,
        }
    }

    /// An 8×A100 SXM server (DGX-A100-like).
    pub fn dgx_a100() -> Self {
        NodeSpec {
            gpu: GpuSpec::a100_sxm(),
            gpus_per_node: 8,
        }
    }
}

/// A multi-node training cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Server configuration.
    pub node: NodeSpec,
    /// Per-GPU network bandwidth to the fabric, in GB/s. The paper's
    /// hosts have 8× 400 Gbps (= 50 GB/s per GPU with one rail each).
    pub nic_gbps_per_gpu: f64,
    /// One-way latency between GPUs in the same node, in microseconds.
    pub intra_node_latency_us: f64,
    /// One-way latency between GPUs on different nodes (RoCE), in
    /// microseconds.
    pub inter_node_latency_us: f64,
}

impl ClusterSpec {
    /// The paper's platform: 8×H100 nodes, 8×400 Gbps RoCE per host.
    pub fn h100_roce() -> Self {
        ClusterSpec {
            node: NodeSpec::dgx_h100(),
            nic_gbps_per_gpu: 50.0,
            intra_node_latency_us: 1.5,
            inter_node_latency_us: 6.0,
        }
    }

    /// A100 generation of the same topology: 8×A100 nodes with
    /// 8×200 Gbps RoCE per host (DGX-A100 networking).
    pub fn a100_roce() -> Self {
        ClusterSpec {
            node: NodeSpec::dgx_a100(),
            nic_gbps_per_gpu: 25.0,
            intra_node_latency_us: 1.8,
            inter_node_latency_us: 6.5,
        }
    }

    /// The node index a global rank lives on (ranks are packed onto
    /// nodes in order).
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.node.gpus_per_node
    }

    /// Returns `true` when all members live on a single node (so
    /// collectives ride NVLink only).
    pub fn is_intra_node(&self, members: &[u32]) -> bool {
        let mut nodes = members.iter().map(|&r| self.node_of(r));
        match nodes.next() {
            Some(first) => nodes.all(|n| n == first),
            None => true,
        }
    }

    /// NIC bandwidth in bytes/s per GPU.
    pub fn nic_bytes_per_sec(&self) -> f64 {
        self.nic_gbps_per_gpu * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_spec_sanity() {
        let g = GpuSpec::h100_sxm();
        assert!(g.peak_flops() > 9e14);
        assert!(g.hbm_bytes_per_sec() > 3e12);
        assert!(g.nvlink_bytes_per_sec() > 4e11);
        assert_eq!(g.num_sms, 132);
    }

    #[test]
    fn a100_slower_than_h100() {
        let (a, h) = (GpuSpec::a100_sxm(), GpuSpec::h100_sxm());
        assert!(a.peak_flops() < h.peak_flops());
        assert!(a.hbm_bytes_per_sec() < h.hbm_bytes_per_sec());
    }

    #[test]
    fn node_mapping() {
        let c = ClusterSpec::h100_roce();
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert!(c.is_intra_node(&[0, 3, 7]));
        assert!(!c.is_intra_node(&[0, 8]));
        assert!(c.is_intra_node(&[]));
        assert!(c.is_intra_node(&[12]));
    }

    #[test]
    fn nvlink_faster_than_nic() {
        let c = ClusterSpec::h100_roce();
        assert!(c.node.gpu.nvlink_bytes_per_sec() > c.nic_bytes_per_sec());
        assert!(c.inter_node_latency_us > c.intra_node_latency_us);
    }
}
