//! Source-trace identity: the fingerprint an artifact stores so a
//! stale calibration can never silently answer for the wrong trace.

use lumos_core::manipulate::value_digest;
use lumos_trace::{ClusterTrace, Dur};
use serde::{Deserialize, Serialize};

/// A compact identity of a profiled cluster trace: cheap structural
/// counters plus a stable content hash over every event. Two traces
/// with the same fingerprint are, for calibration purposes, the same
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceFingerprint {
    /// Total events across all ranks.
    pub events: u64,
    /// Number of ranks.
    pub ranks: u32,
    /// End-to-end makespan of the recorded iteration.
    pub makespan: Dur,
    /// FNV-1a hash over every rank's events (names, timestamps,
    /// durations, kinds), stable across processes and platforms.
    pub content_hash: u64,
}

impl TraceFingerprint {
    /// Fingerprints a trace.
    pub fn of(trace: &ClusterTrace) -> Self {
        TraceFingerprint {
            events: trace.total_events() as u64,
            ranks: trace.world_size() as u32,
            makespan: trace.makespan(),
            content_hash: content_hash(trace),
        }
    }

    /// The first differing field versus `other`, as
    /// `(field, self value, other value)` — `None` when identical.
    pub fn first_mismatch(&self, other: &Self) -> Option<(&'static str, String, String)> {
        if self.events != other.events {
            return Some((
                "event count",
                self.events.to_string(),
                other.events.to_string(),
            ));
        }
        if self.ranks != other.ranks {
            return Some((
                "rank count",
                self.ranks.to_string(),
                other.ranks.to_string(),
            ));
        }
        if self.makespan != other.makespan {
            return Some((
                "makespan",
                format!("{} ns", self.makespan.as_ns()),
                format!("{} ns", other.makespan.as_ns()),
            ));
        }
        if self.content_hash != other.content_hash {
            return Some((
                "content hash",
                format!("{:#018x}", self.content_hash),
                format!("{:#018x}", other.content_hash),
            ));
        }
        None
    }
}

/// A stable FNV-1a hash of the trace's full serialized content
/// (shared [`value_digest`] machinery, one digest per rank folded
/// into one so peak memory stays at one rank's value tree). Computed
/// from the parsed representation (not raw file bytes), so
/// formatting-only differences in the on-disk JSON do not change the
/// hash, while any event-level difference does.
fn content_hash(trace: &ClusterTrace) -> u64 {
    let mut parts = vec![value_digest(&trace.label.serialize_value())];
    for rank in trace.ranks() {
        parts.push(value_digest(&rank.serialize_value()));
    }
    value_digest(&parts.serialize_value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos_trace::{RankTrace, ThreadId, TraceEvent, Ts};

    fn trace() -> ClusterTrace {
        let mut r = RankTrace::new(0);
        r.push(TraceEvent::cpu_op("op", Ts(0), Dur(5_000), ThreadId(1)));
        let mut c = ClusterTrace::new("fp");
        c.push_rank(r);
        c
    }

    #[test]
    fn identical_traces_fingerprint_equal() {
        assert_eq!(
            TraceFingerprint::of(&trace()),
            TraceFingerprint::of(&trace())
        );
        assert!(TraceFingerprint::of(&trace())
            .first_mismatch(&TraceFingerprint::of(&trace()))
            .is_none());
    }

    #[test]
    fn content_change_flips_hash_only() {
        let a = TraceFingerprint::of(&trace());
        let mut t = trace();
        t.ranks_mut()[0].events_mut()[0].name = "renamed".into();
        let b = TraceFingerprint::of(&t);
        assert_eq!(a.events, b.events);
        assert_eq!(a.makespan, b.makespan);
        assert_ne!(a.content_hash, b.content_hash);
        let (field, _, _) = a.first_mismatch(&b).unwrap();
        assert_eq!(field, "content hash");
    }

    #[test]
    fn structural_change_reported_first() {
        let a = TraceFingerprint::of(&trace());
        let mut t = trace();
        t.ranks_mut()[0].push(TraceEvent::cpu_op("x", Ts(9_000), Dur(1), ThreadId(1)));
        let b = TraceFingerprint::of(&t);
        let (field, av, bv) = a.first_mismatch(&b).unwrap();
        assert_eq!(field, "event count");
        assert_eq!(av, "1");
        assert_eq!(bv, "2");
    }
}
