//! Typed failures of calibration-artifact construction and loading.

use std::fmt;

/// Anything that can go wrong creating, persisting, or validating a
/// calibration artifact. Every file-touching variant names the path.
#[derive(Debug)]
pub enum CalibError {
    /// Filesystem failure, with the offending path.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// The artifact document failed to parse or deserialize.
    Parse {
        /// The file it came from (`None` for in-memory documents).
        path: Option<String>,
        /// What went wrong.
        detail: String,
    },
    /// The artifact was written by an incompatible format version.
    VersionMismatch {
        /// The version found in the document.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
    /// The stored content digest does not match the loaded payload
    /// (corruption or hand-editing of any artifact field).
    DigestMismatch {
        /// Digest recorded in the artifact.
        stored: u64,
        /// Digest of the content actually loaded.
        computed: u64,
    },
    /// The artifact was calibrated from a different trace than the
    /// one it is being used against.
    FingerprintMismatch {
        /// Which fingerprint field differed first.
        field: &'static str,
        /// The artifact's value.
        artifact: String,
        /// The trace's value.
        trace: String,
    },
    /// Block extraction failed while calibrating.
    Extraction {
        /// The underlying extraction failure.
        source: lumos_core::CoreError,
    },
}

impl fmt::Display for CalibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibError::Io { path, source } => write!(f, "`{path}`: {source}"),
            CalibError::Parse {
                path: Some(p),
                detail,
            } => {
                write!(f, "`{p}`: invalid calibration artifact: {detail}")
            }
            CalibError::Parse { path: None, detail } => {
                write!(f, "invalid calibration artifact: {detail}")
            }
            CalibError::VersionMismatch { found, expected } => write!(
                f,
                "calibration artifact version {found} is not supported (this build \
                 reads version {expected}; re-run `lumos calibrate` on the source trace)"
            ),
            CalibError::DigestMismatch { stored, computed } => write!(
                f,
                "calibration artifact is corrupt: content digest \
                 {computed:#018x} does not match stored {stored:#018x}"
            ),
            CalibError::FingerprintMismatch {
                field,
                artifact,
                trace,
            } => write!(
                f,
                "calibration artifact does not match this trace: {field} differs \
                 (artifact: {artifact}, trace: {trace})"
            ),
            CalibError::Extraction { source } => write!(f, "block extraction: {source}"),
        }
    }
}

impl std::error::Error for CalibError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibError::Io { source, .. } => Some(source),
            CalibError::Extraction { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_paths_and_fields() {
        let e = CalibError::Io {
            path: "x.json".into(),
            source: std::io::Error::other("boom"),
        };
        assert!(e.to_string().contains("x.json"));
        assert!(e.to_string().contains("boom"));

        let e = CalibError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));

        let e = CalibError::FingerprintMismatch {
            field: "event count",
            artifact: "10".into(),
            trace: "12".into(),
        };
        assert!(e.to_string().contains("event count"));
    }
}
