//! The versioned calibration artifact itself.

use crate::error::CalibError;
use crate::fingerprint::TraceFingerprint;
use lumos_core::manipulate::{value_digest, BlockLibrary};
use lumos_cost::{CostModel, LookupCostModel, LookupTables};
use lumos_model::TrainingSetup;
use lumos_trace::ClusterTrace;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The content fields covered by [`CalibrationArtifact::digest`], in
/// hashing order (everything but the digest itself).
const CONTENT_FIELDS: [&str; 6] = [
    "version",
    "setup",
    "hardware",
    "fingerprint",
    "tables",
    "library",
];

/// Folds per-field digests into one (the digest of the array of
/// digests), so neither writer nor loader ever has to materialize one
/// combined value tree.
fn combine_digests(parts: &[u64]) -> u64 {
    value_digest(&parts.serialize_value())
}

/// The artifact format version this build reads and writes. Bump on
/// any incompatible change to the serialized shape of the artifact or
/// its bundled components; loading rejects every other version
/// (artifacts are cheap to regenerate — there is no migration).
pub const ARTIFACT_VERSION: u32 = 1;

/// Everything a consumer needs to answer what-if queries for one
/// profiled trace, without the trace: the fitted lookup tables, the
/// extracted block library, the base [`TrainingSetup`], the hardware
/// preset the calibration assumed, and a fingerprint of the source
/// trace.
///
/// Constructed by [`CalibrationArtifact::calibrate`], persisted with
/// [`CalibrationArtifact::save`] / loaded with
/// [`CalibrationArtifact::load`] (which checks the format version and
/// the whole-content digest). Predictions priced from a loaded
/// artifact are bit-identical to ones priced from a fresh fit of the
/// same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationArtifact {
    /// Format version ([`ARTIFACT_VERSION`]).
    pub version: u32,
    /// The profiled deployment the trace came from — the base
    /// configuration of every query answered from this artifact.
    pub setup: TrainingSetup,
    /// Hardware-preset name the calibration assumed for fallback
    /// costs (e.g. `"h100"`).
    pub hardware: String,
    /// Identity of the source trace, checked whenever the artifact is
    /// used against a trace ([`CalibrationArtifact::verify_trace`]).
    pub fingerprint: TraceFingerprint,
    /// FNV-1a digest over the artifact's entire serialized content
    /// (every field except this one), re-checked on load — corruption
    /// or hand-editing of any part is rejected.
    pub digest: u64,
    /// The fitted compute/collective observation tables.
    pub tables: LookupTables,
    /// The reassembly block library extracted from the trace.
    pub library: BlockLibrary,
}

impl CalibrationArtifact {
    /// Fits a complete calibration from one profiled trace: lookup
    /// tables from every kernel observation, the block library from
    /// every annotation range, and the trace fingerprint.
    ///
    /// `hardware` names the fallback preset consumers should pair the
    /// tables with (purely informational at fit time — the tables
    /// themselves are model-free observations). `gpus_per_node`
    /// classifies collective placements; use the same value consumers
    /// will query with (the repository default is 8).
    ///
    /// # Errors
    ///
    /// Returns [`CalibError::Extraction`] when the trace has no
    /// annotation ranges to carve blocks from.
    pub fn calibrate(
        trace: &ClusterTrace,
        setup: &TrainingSetup,
        hardware: &str,
        gpus_per_node: u32,
    ) -> Result<Self, CalibError> {
        let tables = LookupTables::fit_from_trace(trace, gpus_per_node);
        let library = BlockLibrary::extract(trace, setup.parallelism)
            .map_err(|source| CalibError::Extraction { source })?;
        let mut artifact = CalibrationArtifact {
            version: ARTIFACT_VERSION,
            setup: setup.clone(),
            hardware: hardware.to_string(),
            fingerprint: TraceFingerprint::of(trace),
            digest: 0,
            tables,
            library,
        };
        artifact.digest = artifact.content_digest();
        Ok(artifact)
    }

    /// The digest of everything the artifact carries except the
    /// `digest` field itself: the combined [`value_digest`] of each
    /// content field's serialized tree, in declaration order.
    fn content_digest(&self) -> u64 {
        combine_digests(&[
            value_digest(&self.version.serialize_value()),
            value_digest(&self.setup.serialize_value()),
            value_digest(&self.hardware.serialize_value()),
            value_digest(&self.fingerprint.serialize_value()),
            value_digest(&self.tables.serialize_value()),
            value_digest(&self.library.serialize_value()),
        ])
    }

    /// Pairs the fitted tables with a fallback cost model — the model
    /// every query path prices kernels through. The tables are cloned;
    /// the artifact stays usable for further queries.
    pub fn cost_model<F: CostModel>(&self, fallback: F) -> LookupCostModel<F> {
        LookupCostModel::from_tables(self.tables.clone(), fallback)
    }

    /// Checks that `trace` is the trace this artifact was calibrated
    /// from.
    ///
    /// # Errors
    ///
    /// Returns [`CalibError::FingerprintMismatch`] naming the first
    /// differing field.
    pub fn verify_trace(&self, trace: &ClusterTrace) -> Result<(), CalibError> {
        let actual = TraceFingerprint::of(trace);
        match self.fingerprint.first_mismatch(&actual) {
            None => Ok(()),
            Some((field, artifact, trace)) => Err(CalibError::FingerprintMismatch {
                field,
                artifact,
                trace,
            }),
        }
    }

    /// Serializes to the on-disk JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifacts serialize")
    }

    /// Parses and validates an artifact document: format version
    /// first, then the whole-content digest.
    ///
    /// # Errors
    ///
    /// Returns [`CalibError::Parse`], [`CalibError::VersionMismatch`],
    /// or [`CalibError::DigestMismatch`].
    pub fn from_json(text: &str) -> Result<Self, CalibError> {
        Self::parse(text, None)
    }

    fn parse(text: &str, path: Option<&str>) -> Result<Self, CalibError> {
        // Check the version before deserializing the full payload so
        // future format changes fail with "wrong version", not with a
        // confusing shape mismatch from deep inside the document.
        let value: serde_json::Value =
            serde_json::from_str(text).map_err(|e| CalibError::Parse {
                path: path.map(str::to_string),
                detail: e.to_string(),
            })?;
        let version = value
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| CalibError::Parse {
                path: path.map(str::to_string),
                detail: "missing `version` field".to_string(),
            })?;
        if version != ARTIFACT_VERSION as u64 {
            return Err(CalibError::VersionMismatch {
                found: version as u32,
                expected: ARTIFACT_VERSION,
            });
        }
        // Hash the parsed content subtrees directly (integers and
        // strings round-trip the JSON layer exactly, so this equals
        // the digest computed when the artifact was written) — cheaper
        // than deserializing and re-serializing the payload.
        let mut parts = [0u64; CONTENT_FIELDS.len()];
        for (slot, field) in parts.iter_mut().zip(CONTENT_FIELDS) {
            *slot = value
                .get(field)
                .map(value_digest)
                .ok_or_else(|| CalibError::Parse {
                    path: path.map(str::to_string),
                    detail: format!("missing `{field}` field"),
                })?;
        }
        let computed = combine_digests(&parts);
        let artifact: CalibrationArtifact =
            serde_json::from_value(value).map_err(|e| CalibError::Parse {
                path: path.map(str::to_string),
                detail: e.to_string(),
            })?;
        if computed != artifact.digest {
            return Err(CalibError::DigestMismatch {
                stored: artifact.digest,
                computed,
            });
        }
        Ok(artifact)
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CalibError::Io`] naming the path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CalibError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|source| CalibError::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Reads and validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CalibError::Io`] (naming the path),
    /// [`CalibError::Parse`], [`CalibError::VersionMismatch`], or
    /// [`CalibError::DigestMismatch`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CalibError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|source| CalibError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Self::parse(&text, Some(&path.display().to_string()))
    }
}
