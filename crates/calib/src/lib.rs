//! Calibration artifacts: fit once, query many.
//!
//! Lumos's workflow is "profile one iteration, then answer many
//! what-if questions from it" (§3.4) — but fitting the question-
//! answering machinery (the [`lumos_cost::LookupTables`] priced from
//! every kernel observation and the [`BlockLibrary`] carved out of
//! every annotation range) costs a full walk over the trace. This
//! crate makes that fit a **persistent, versioned artifact** so the
//! walk happens once per trace instead of once per invocation:
//!
//! ```text
//! lumos calibrate trace.json --out trace.calib.json   # fit once
//! lumos predict --calib trace.calib.json --dp 8       # query many,
//! lumos search  --calib trace.calib.json --dp 1,2,4   # no re-ingest
//! ```
//!
//! # Artifact format and versioning policy
//!
//! An artifact is a single JSON document with these fields:
//!
//! * `version` — the format version ([`ARTIFACT_VERSION`]). Loading
//!   rejects any other value: artifacts are cheap to regenerate from
//!   their source trace, so there is no cross-version migration —
//!   bump the constant whenever the serialized shape of any bundled
//!   component changes incompatibly;
//! * `setup` — the [`TrainingSetup`] of the profiled deployment (what
//!   `predict`/`search` treat as the base configuration);
//! * `hardware` — the hardware-preset name the calibration assumed
//!   for fallback costs (e.g. `"h100"`); consumers resolve the same
//!   preset (`AnalyticalCostModel::from_preset`) so reloaded
//!   predictions are bit-identical to fit-on-the-fly ones;
//! * `fingerprint` — a [`TraceFingerprint`] of the source trace
//!   (event count, rank count, makespan, content hash), checked when
//!   an artifact is used *against* a trace so a stale artifact can
//!   never silently price the wrong workload;
//! * `digest` — FNV-1a digest over every other field's serialized
//!   content, re-computed and checked on load (bit-rot / hand-edit
//!   detection for the whole payload);
//! * `tables` — the fitted [`lumos_cost::LookupTables`];
//! * `library` — the extracted [`BlockLibrary`].
//!
//! Round-trips are bit-exact: a prediction priced from a reloaded
//! artifact is identical — output bytes included — to one priced from
//! a fresh fit of the same trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod error;
mod fingerprint;
mod registry;

pub use artifact::{CalibrationArtifact, ARTIFACT_VERSION};
pub use error::CalibError;
pub use fingerprint::TraceFingerprint;
pub use registry::{digest_hex, scan_registry_dir, ScanReport, ScannedArtifact};
