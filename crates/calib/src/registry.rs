//! Registry-directory loading: scan a directory of persisted
//! artifacts, keeping the good ones and reporting the bad ones.
//!
//! A long-lived consumer (the `lumos serve` daemon) points at a
//! directory of `*.json` calibration artifacts and (re)scans it to
//! pick up new calibrations without restarting. The failure contract
//! matters more than the happy path: one corrupt, hand-edited, or
//! version-mismatched file must never take down the scan — it is
//! reported per-path in [`ScanReport::rejected`] while every loadable
//! artifact still loads. Callers decide what rejection means (the
//! daemon keeps serving its live artifacts and logs the rejects).

use crate::artifact::CalibrationArtifact;
use crate::error::CalibError;
use std::path::{Path, PathBuf};

/// One artifact successfully loaded (and digest/version-verified) from
/// a registry directory.
#[derive(Debug)]
pub struct ScannedArtifact {
    /// Where it was loaded from.
    pub path: PathBuf,
    /// The verified artifact.
    pub artifact: CalibrationArtifact,
}

/// Everything one registry-directory scan found, good and bad.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Artifacts that loaded and verified, in filename order.
    pub loaded: Vec<ScannedArtifact>,
    /// Files that looked like artifacts (`*.json`) but failed to load
    /// — parse errors, version mismatches, digest mismatches, I/O —
    /// with the per-file reason. Never fatal to the scan.
    pub rejected: Vec<(PathBuf, CalibError)>,
}

/// The display form registry consumers key artifacts by: the content
/// digest as a zero-padded hex literal (e.g. `0x00ab12…`), matching
/// how `lumos calibrate` and `lumos info` print it.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:#018x}")
}

/// Scans `dir` for `*.json` calibration artifacts, loading and
/// verifying each (version check, whole-content digest check). Files
/// without a `.json` extension and subdirectories are ignored. Entries
/// are visited in filename order so scan reports are deterministic.
///
/// # Errors
///
/// Returns [`CalibError::Io`] only when the directory itself cannot be
/// read; per-file failures land in [`ScanReport::rejected`] instead.
pub fn scan_registry_dir(dir: impl AsRef<Path>) -> Result<ScanReport, CalibError> {
    let dir = dir.as_ref();
    let entries = std::fs::read_dir(dir).map_err(|source| CalibError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| CalibError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        let path = entry.path();
        if path.is_file() && path.extension().is_some_and(|ext| ext == "json") {
            paths.push(path);
        }
    }
    paths.sort();

    let mut report = ScanReport::default();
    for path in paths {
        match CalibrationArtifact::load(&path) {
            Ok(artifact) => report.loaded.push(ScannedArtifact { path, artifact }),
            Err(err) => report.rejected.push((path, err)),
        }
    }
    Ok(report)
}
