//! Artifact guarantees:
//!
//! * serialize → deserialize → predict is bit-identical to predicting
//!   from a freshly fitted model (property-tested over transforms);
//! * version and fingerprint mismatches are typed rejections;
//! * tampered content fails the digest check.

use lumos_calib::{CalibError, CalibrationArtifact, TraceFingerprint, ARTIFACT_VERSION};
use lumos_cluster::{GroundTruthCluster, JitterModel};
use lumos_core::manipulate::Transform;
use lumos_core::Lumos;
use lumos_cost::AnalyticalCostModel;
use lumos_model::{BatchConfig, ModelConfig, Parallelism, ScheduleKind, TrainingSetup};
use lumos_trace::{to_chrome_json, ChromeTraceOptions, ClusterTrace};
use proptest::prelude::*;
use std::sync::OnceLock;

fn base_setup() -> TrainingSetup {
    TrainingSetup {
        model: ModelConfig::custom("artifact-e2e", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 2).unwrap(),
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    }
}

fn shared() -> &'static (TrainingSetup, ClusterTrace, CalibrationArtifact) {
    static CELL: OnceLock<(TrainingSetup, ClusterTrace, CalibrationArtifact)> = OnceLock::new();
    CELL.get_or_init(|| {
        let base = base_setup();
        let trace = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())
            .unwrap()
            .with_jitter(JitterModel::realistic(42))
            .profile_iteration(0)
            .unwrap()
            .trace;
        let artifact = CalibrationArtifact::calibrate(&trace, &base, "h100", 8).unwrap();
        (base, trace, artifact)
    })
}

#[test]
fn round_trip_is_exact() {
    let (_, trace, artifact) = shared();
    let json = artifact.to_json();
    let back = CalibrationArtifact::from_json(&json).unwrap();
    assert_eq!(&back, artifact);
    // Deterministic encoding: the reloaded artifact re-serializes to
    // the same bytes.
    assert_eq!(back.to_json(), json);
    // And still verifies against its source trace.
    back.verify_trace(trace).unwrap();
    assert_eq!(back.fingerprint, TraceFingerprint::of(trace));
}

#[test]
fn schedule_keeps_its_pre_registry_wire_name() {
    // The schedule registry refactor must not move serialized
    // artifacts: the wire encoding stays the old enum variant string,
    // so artifacts written before the registry load unchanged (and
    // re-encode byte-identically, per `round_trip_is_exact`).
    let (_, _, artifact) = shared();
    let json = artifact.to_json();
    assert!(
        json.contains("\"OneFOneB\""),
        "schedule lost its legacy wire name"
    );
    let back = CalibrationArtifact::from_json(&json).unwrap();
    assert_eq!(back.setup.schedule, ScheduleKind::OneFOneB);
    assert_eq!(back.setup.schedule.name(), "1f1b");
}

#[test]
fn version_mismatch_rejected_before_payload() {
    let (_, _, artifact) = shared();
    let json = artifact.to_json();
    let wrong = json.replace(
        &format!("\"version\":{ARTIFACT_VERSION}"),
        "\"version\":9999",
    );
    assert_ne!(wrong, json, "version field must exist in the document");
    match CalibrationArtifact::from_json(&wrong) {
        Err(CalibError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 9999);
            assert_eq!(expected, ARTIFACT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn tampered_library_fails_digest() {
    let (_, _, artifact) = shared();
    let mut tampered = artifact.clone();
    tampered.library.host.launch = lumos_trace::Dur::from_us(12345);
    let err = CalibrationArtifact::from_json(&tampered.to_json()).unwrap_err();
    assert!(matches!(err, CalibError::DigestMismatch { .. }), "{err}");
    assert!(err.to_string().contains("digest"), "{err}");
}

#[test]
fn digest_covers_every_content_field() {
    let (_, _, artifact) = shared();
    // Tampering with *any* part of the payload — not just the block
    // library — must fail the load-time digest check.
    let mut bad_tables = artifact.clone();
    bad_tables
        .tables
        .record_compute(lumos_trace::KernelClass::Other, lumos_trace::Dur(1));
    let mut bad_setup = artifact.clone();
    bad_setup.setup.model.hidden_size += 1;
    let mut bad_fingerprint = artifact.clone();
    bad_fingerprint.fingerprint.events += 1;
    let mut bad_hardware = artifact.clone();
    bad_hardware.hardware = "h999".to_string();
    for tampered in [bad_tables, bad_setup, bad_fingerprint, bad_hardware] {
        let err = CalibrationArtifact::from_json(&tampered.to_json()).unwrap_err();
        assert!(matches!(err, CalibError::DigestMismatch { .. }), "{err}");
    }
}

#[test]
fn fingerprint_mismatch_names_field() {
    let (base, _, artifact) = shared();
    // A different seed produces a different trace of the same shape
    // class.
    let other = GroundTruthCluster::new(base, AnalyticalCostModel::h100())
        .unwrap()
        .with_jitter(JitterModel::realistic(7))
        .profile_iteration(0)
        .unwrap()
        .trace;
    let err = artifact.verify_trace(&other).unwrap_err();
    assert!(
        matches!(err, CalibError::FingerprintMismatch { .. }),
        "{err}"
    );
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn missing_fields_are_parse_errors() {
    assert!(matches!(
        CalibrationArtifact::from_json("{}"),
        Err(CalibError::Parse { .. })
    ));
    assert!(matches!(
        CalibrationArtifact::from_json("not json"),
        Err(CalibError::Parse { .. })
    ));
    // Right version, but the library payload is missing entirely.
    let bare = format!("{{\"version\":{}}}", ARTIFACT_VERSION);
    assert!(matches!(
        CalibrationArtifact::from_json(&bare),
        Err(CalibError::Parse { .. })
    ));
}

/// The trace a prediction synthesizes, as comparable bytes.
fn predicted_bytes(p: &lumos_core::manipulate::Prediction) -> String {
    format!(
        "{}|{}|{}",
        p.replayed.makespan().as_ns(),
        p.setup.label(),
        to_chrome_json(&p.trace, &ChromeTraceOptions::default())
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// serialize → deserialize → predict equals predict from a fresh
    /// fit, bit for bit, across a range of transform stacks.
    #[test]
    fn round_tripped_predictions_bit_identical(
        dp in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        pp in prop_oneof![Just(1u32), Just(2), Just(4)],
        microbatches in prop_oneof![Just(2u32), Just(4), Just(8)],
        layers in prop_oneof![Just(4u32), Just(8), Just(16)],
    ) {
        let (base, trace, artifact) = shared();
        let transforms = vec![
            Transform::PipelineParallel { pp },
            Transform::DataParallel { dp },
            Transform::Microbatches { num: microbatches },
            Transform::NumLayers { layers },
        ];

        let lumos = Lumos::new();
        let fresh = lumos.predict(trace, base, &transforms, AnalyticalCostModel::h100());

        let reloaded = CalibrationArtifact::from_json(&artifact.to_json()).unwrap();
        let lookup = reloaded.cost_model(AnalyticalCostModel::h100());
        let calibrated =
            lumos.predict_with_library(&reloaded.library, &reloaded.setup, &transforms, &lookup);

        match (fresh, calibrated) {
            (Ok(a), Ok(b)) => prop_assert_eq!(predicted_bytes(&a), predicted_bytes(&b)),
            // Invalid stacks (e.g. layers not divisible by pp) must
            // fail identically on both paths.
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => prop_assert!(false, "paths diverged: {a:?} vs {b:?}"),
        }
    }
}
