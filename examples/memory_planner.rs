//! Capacity planning: combine the memory model (the paper's §5
//! "future work" metric) with trace-driven prediction to find the
//! fastest *feasible* deployment of a model — without touching
//! hardware.
//!
//! The planner sweeps parallelism layouts for a fixed GPU budget,
//! discards the ones the memory model predicts would OOM, and ranks
//! the survivors by predicted iteration time from a single profiled
//! base trace.
//!
//! Run with: `cargo run --release --example memory_planner`

use lumos::prelude::*;
use lumos_cost::GpuSpec;
use lumos_model::memory::{MemoryModel, OptimizerPlacement};
use lumos_model::{utilization, Recompute};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-layer GPT-3-15B-width model on a 16-GPU budget.
    let model = ModelConfig::custom("planner-model", 8, 6144, 12288, 48, 128);
    let gpu = GpuSpec::h100_sxm();
    let budget = 16u32;
    println!(
        "planning {} ({:.1}B params) on {budget}× {} ({} GiB each)\n",
        model.name,
        model.num_params() as f64 / 1e9,
        gpu.name,
        gpu.memory_gib
    );

    // One profiled base configuration: everything else is predicted.
    let base = TrainingSetup::new(model.clone(), Parallelism::new(2, 2, 4)?);
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(11));
    let base_trace = cluster.profile_iteration(0)?.trace;
    println!("profiled base {} once; predicting the rest\n", base.label());

    let memory = MemoryModel {
        optimizer: OptimizerPlacement::DistributedOptimizer,
        ..MemoryModel::default()
    };
    let lumos = Lumos::new();

    println!(
        "{:<10} {:>12} {:>14} {:>10} {:>8}",
        "TPxPPxDP", "peak mem", "iteration", "MFU", "verdict"
    );
    println!("{}", "-".repeat(60));

    let mut best: Option<(String, Dur)> = None;
    for (tp, pp, dp) in [
        (1u32, 2u32, 8u32),
        (2, 1, 8),
        (2, 2, 4),
        (2, 4, 2),
        (4, 2, 2),
        (4, 4, 1),
        (8, 2, 1),
    ] {
        let label = format!("{tp}x{pp}x{dp}");
        assert_eq!(tp * pp * dp, budget);
        let mut target = TrainingSetup::new(model.clone(), Parallelism::new(tp, pp, dp)?);
        target.batch.num_microbatches = 8;

        // Feasibility gate first: no point simulating OOM configs.
        let (_, estimate) = memory.estimate_peak(&target);
        if let Err(oom) = memory.check(&target, gpu.memory_bytes()) {
            println!(
                "{label:<10} {:>9.1} GiB {:>14} {:>10} {:>8}",
                estimate.total() as f64 / (1u64 << 30) as f64,
                "-",
                "-",
                format!("OOM@{}", oom.stage)
            );
            continue;
        }

        // Predict from the base trace (tp/pp/dp + microbatch moves).
        let transforms = [
            Transform::TensorParallel { tp },
            Transform::PipelineParallel { pp },
            Transform::DataParallel { dp },
            Transform::Microbatches { num: 8 },
        ];
        let predicted =
            match lumos.predict(&base_trace, &base, &transforms, AnalyticalCostModel::h100()) {
                Ok(p) => p,
                Err(e) => {
                    println!("{label:<10} {:>30}", format!("unpredictable: {e}"));
                    continue;
                }
            };
        let iter = predicted.makespan();
        let util = utilization(
            &predicted.setup,
            Recompute::Selective,
            iter.as_secs_f64(),
            gpu.peak_flops(),
        );
        println!(
            "{label:<10} {:>9.1} GiB {:>11.2} ms {:>9.1}% {:>8}",
            estimate.total() as f64 / (1u64 << 30) as f64,
            iter.as_ms_f64(),
            util.mfu * 100.0,
            "ok"
        );
        if best.as_ref().is_none_or(|(_, b)| iter < *b) {
            best = Some((label, iter));
        }
    }

    let (label, iter) = best.expect("at least one feasible configuration");
    println!(
        "\nbest feasible layout: {label} at {:.2} ms/iteration",
        iter.as_ms_f64()
    );
    println!(
        "(the paper's workflow: one profile, many what-ifs — \"estimating\n\
         performance through simulation rather than experimenting on real\n\
         hardware\")"
    );
    Ok(())
}
