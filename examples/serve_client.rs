//! Serve-protocol walkthrough: start an in-process `lumos serve`
//! daemon on a throwaway artifact registry, then drive every request
//! kind over its line-delimited JSON protocol — one request object
//! per line, one response object per line.
//!
//! In production the daemon runs standalone (`lumos serve --registry
//! calib/ --addr 127.0.0.1:7700`) and any language with a TCP socket
//! is a client; `lumos query` is the one-shot CLI client. The
//! `predict`/`search` response lines below are byte-identical to
//! `lumos predict --json` / `lumos search --json` against the same
//! artifact.
//!
//! Run with: `cargo run --release --example serve_client`

use lumos::prelude::*;
use lumos::serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn ask(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    request: &str,
) -> std::io::Result<String> {
    println!("-> {request}");
    writeln!(writer, "{request}")?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    println!("<- {line}");
    Ok(line)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Calibrate a small base into a throwaway registry directory.
    //    A real deployment points --registry at a directory of
    //    `lumos calibrate` artifacts, one per profiled workload.
    let cfg = SimConfig {
        model: ModelConfig::custom("serve-example", 8, 256, 1024, 4, 64),
        parallelism: Parallelism::new(1, 2, 1)?,
        batch: BatchConfig {
            seq_len: 128,
            microbatch_size: 1,
            num_microbatches: 4,
        },
        schedule: ScheduleKind::OneFOneB,
    };
    let trace = GroundTruthCluster::new(&cfg, AnalyticalCostModel::h100())?
        .profile_iteration(0)?
        .trace;
    let artifact = CalibrationArtifact::calibrate(&trace, &cfg, "h100", 8)?;
    let registry = std::env::temp_dir().join(format!("lumos-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&registry)?;
    artifact.save(registry.join("example.calib.json").to_str().unwrap())?;

    // 2. Start the daemon on an ephemeral port. `Server::bind` scans
    //    the registry before accepting traffic and reports what it
    //    loaded.
    let (server, outcome) = Server::bind(&ServeConfig::new("127.0.0.1:0", &registry))?;
    let digest = outcome.loaded[0].clone();
    let addr = server.local_addr()?;
    let daemon = std::thread::spawn(move || server.run());
    println!("daemon on {addr}, serving artifact {digest}\n");

    // 3. One persistent connection; requests pipeline down it in
    //    order.
    let mut writer = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(writer.try_clone()?);
    let mut ask = |request: &str| ask(&mut writer, &mut reader, request);

    // What-if prediction: price 2x data parallelism against the base.
    ask(&format!(
        r#"{{"kind":"predict","artifact":"{digest}","dp":2}}"#
    ))?;

    // Configuration search over a small grid, analytic phase only.
    ask(&format!(
        r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2,4],"top":3}}"#
    ))?;

    // Engine-refine one pinned candidate with jitter replicas.
    ask(&format!(
        r#"{{"kind":"refine","artifact":"{digest}","dp":2,"jitter_replicas":8}}"#
    ))?;

    // A deadline the request cannot meet comes back as a typed
    // `deadline_exceeded` error instead of blocking the queue.
    ask(&format!(
        r#"{{"kind":"search","artifact":"{digest}","dp":[1,2],"microbatches":[2,4],"deadline_ms":0}}"#
    ))?;

    // Admin plane: observability, registry rescan, shutdown.
    ask(r#"{"kind":"stats"}"#)?;
    ask(r#"{"kind":"reload"}"#)?;
    ask(r#"{"kind":"shutdown"}"#)?;

    daemon.join().expect("daemon thread panicked")?;
    std::fs::remove_dir_all(&registry).ok();
    Ok(())
}
