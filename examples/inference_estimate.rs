//! Inference (serving) estimation: the §5 discussion's extension of
//! the methodology to inference, end to end — profile a prefill +
//! decode request batch, replay it, extract serving metrics
//! (time-to-first-token, per-token latency), and answer what-if
//! questions about host overhead and kernel speedups.
//!
//! Run with: `cargo run --release --example inference_estimate`

use lumos::prelude::*;
use lumos_cluster::{execute, lower_inference};
use lumos_cost::HostOverheads;
use lumos_model::InferenceSetup;
use lumos_trace::KernelClass;

fn ttft_of(trace: &ClusterTrace) -> Option<Dur> {
    let rank0 = trace.ranks().first()?;
    let origin = rank0.events().iter().map(|e| e.ts).min()?;
    let first_sample = rank0.annotations().find(|a| &*a.name == "sample step=0")?;
    Some(first_sample.end().saturating_since(origin))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let setup = InferenceSetup {
        model: ModelConfig::custom("GPT-3 15B (8-layer slice)", 8, 6144, 12288, 48, 128),
        tp: 4,
        batch_size: 8,
        prompt_len: 1024,
        decode_tokens: 32,
    };
    println!("serving config: {}", setup.label());
    println!(
        "  kv cache at end of generation: {:.2} GiB/rank\n",
        setup.kv_cache_bytes(setup.prompt_len + setup.decode_tokens as u64) as f64
            / (1u64 << 30) as f64
    );

    // Profile one request batch on the ground-truth engine.
    let job = lower_inference(&setup)?;
    let out = execute(
        &job,
        &AnalyticalCostModel::h100(),
        &HostOverheads::default(),
        &JitterModel::realistic(23),
        0,
    )?;
    let ttft = ttft_of(&out.trace).expect("sample annotations present");
    let decode_time = out.makespan.saturating_sub(ttft);
    let tpot = decode_time.scale(1.0 / setup.decode_tokens as f64);
    println!("profiled request batch:");
    println!("  end-to-end:          {:.2} ms", out.makespan.as_ms_f64());
    println!("  time-to-first-token: {:.2} ms", ttft.as_ms_f64());
    println!("  per-token latency:   {:.3} ms", tpot.as_ms_f64());

    // Replay through the Lumos pipeline — same machinery as training.
    let lumos = Lumos::new();
    let replayed = lumos.replay(&out.trace)?;
    println!(
        "  replay error:        {:.2}%\n",
        replayed.makespan().relative_error(out.makespan) * 100.0
    );

    // What-if 1: a fused decode step halves host dispatch work.
    let mut host_graph = lumos.build_graph(&out.trace)?;
    lumos::core::manipulate::whatif::scale_host(&mut host_graph, 0.5);
    let host_fast = lumos::core::simulate(&host_graph, &SimOptions::default())?.makespan();

    // What-if 2: a better decode-attention kernel runs 2x faster.
    let mut attn_graph = lumos.build_graph(&out.trace)?;
    let touched = lumos::core::manipulate::whatif::scale_kernel_class(&mut attn_graph, 0.5, |c| {
        matches!(c, KernelClass::AttentionDecode { .. })
    });
    let attn_fast = lumos::core::simulate(&attn_graph, &SimOptions::default())?.makespan();

    // What-if 3: pointwise fusion absorbs adjacent elementwise/norm
    // kernels (the §5 "new operator fusion pattern" example).
    let mut fuse_graph = lumos.build_graph(&out.trace)?;
    let fused = lumos::core::manipulate::whatif::fuse_pointwise(&mut fuse_graph, Dur::from_us(2));
    let fuse_fast = lumos::core::simulate(&fuse_graph, &SimOptions::default())?.makespan();

    let baseline = replayed.makespan();
    let gain = |d: Dur| (1.0 - d.as_secs_f64() / baseline.as_secs_f64()) * 100.0;
    println!(
        "what-if studies (vs {:.2} ms replay):",
        baseline.as_ms_f64()
    );
    println!(
        "  2x faster host dispatch:    {:.2} ms ({:+.1}%)",
        host_fast.as_ms_f64(),
        -gain(host_fast)
    );
    println!(
        "  2x faster decode attention: {:.2} ms ({:+.1}%), {touched} kernels",
        attn_fast.as_ms_f64(),
        -gain(attn_fast)
    );
    println!(
        "  pointwise fusion:           {:.2} ms ({:+.1}%), {fused} boundaries fused",
        fuse_fast.as_ms_f64(),
        -gain(fuse_fast)
    );
    let winner = if gain(host_fast) > gain(attn_fast) {
        "host dispatch — decode is launch-bound at this batch size, which is \
         why serving engines batch aggressively and use CUDA graphs"
    } else {
        "the decode-attention kernel — KV-cache reads dominate at this \
         prompt length, the optimization paged/flash-decoding targets"
    };
    println!("\nreading: the binding constraint is {winner}.");

    // Decode-length scaling: replay cost per generated token.
    println!("\ngeneration-length scaling (predicted by fresh ground truth):");
    for decode in [8u32, 16, 32, 64] {
        let mut s = setup.clone();
        s.decode_tokens = decode;
        let job = lower_inference(&s)?;
        let out = execute(
            &job,
            &AnalyticalCostModel::h100(),
            &HostOverheads::default(),
            &JitterModel::none(),
            0,
        )?;
        println!("  {decode:>3} tokens: {:>8.2} ms", out.makespan.as_ms_f64());
    }

    // Export for chrome://tracing.
    let json = lumos::trace::to_chrome_json(&out.trace, &Default::default());
    std::fs::write("/tmp/lumos_inference_trace.json", json)?;
    println!("\nwrote /tmp/lumos_inference_trace.json (open in chrome://tracing)");
    Ok(())
}
