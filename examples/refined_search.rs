//! Two-phase configuration search: a streaming analytic screen picks
//! the finalists, then the ground-truth discrete-event engine replays
//! each one in full — overlap, host dispatch, and collective
//! rendezvous included — re-ranking by simulated makespan and, with
//! jitter replicas, by robustness under run-to-run variance.
//!
//! The point: the analytic screen prices *millions* of candidates per
//! minute but models scheduling effects in closed form; the engine is
//! thousands of times slower per candidate but sees everything. Two
//! phases buy both: screen wide, simulate the short list.
//!
//! Run with: `cargo run --release --example refined_search`

use lumos::prelude::*;
use lumos::search::SpaceSpec as Space;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: an 8-layer model profiled on 4 GPUs (TP=1, PP=2, DP=2).
    let model = ModelConfig::custom("refined-demo", 8, 1024, 4096, 8, 128);
    let base = TrainingSetup::new(model, Parallelism::new(1, 2, 2)?);

    println!("profiling base configuration {} ...", base.label());
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(7));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "base iteration: {:.2} ms on {} GPUs\n",
        profiled.makespan.as_ms_f64(),
        base.parallelism.world_size()
    );

    let spec = Space::deployment_grid(&[1], &[1, 2, 4], &[1, 2, 4])
        .with_microbatches(&[4, 8, 16])
        .with_max_gpus(16);

    // Phase one only: the analytic screen's verdict.
    let analytic_opts = SearchOptions {
        objective: Objective::Makespan,
        top_k: Some(5),
        ..SearchOptions::default()
    };
    let analytic = search_space(
        &profiled.trace,
        &base,
        &spec,
        &analytic_opts,
        AnalyticalCostModel::h100(),
    )?;
    println!("analytic screen only:\n{}", analytic.format_top(5));

    // Both phases: the engine re-prices the finals and, with three
    // deterministic jitter replicas each, ranks by expected makespan
    // under run-to-run variance. Deltas show where the closed-form
    // schedule model diverged from full trace-level simulation.
    let refined_opts = SearchOptions {
        refine_sim: true,
        jitter_replicas: 3,
        ..analytic_opts
    };
    let refined = search_space(
        &profiled.trace,
        &base,
        &spec,
        &refined_opts,
        AnalyticalCostModel::h100(),
    )?;
    println!("with simulation-refined finals:\n{}", refined.format_top(5));

    if let Some(finals) = &refined.refined {
        let worst = finals
            .iter()
            .max_by(|a, b| a.delta.abs().total_cmp(&b.delta.abs()))
            .expect("finalists exist");
        println!(
            "largest analytic-vs-simulated divergence: {} at {:+.1}% — \
             the engine {} it relative to the screen",
            worst.label,
            worst.delta * 100.0,
            if worst.delta > 0.0 {
                "slowed"
            } else {
                "sped up"
            }
        );
        if let Some(j) = finals.first().and_then(|r| r.jitter.as_ref()) {
            println!(
                "winner robustness over {} replicas: mean {:.2} ms, p95 {:.2} ms \
                 (stability {})",
                j.replicas,
                j.mean.as_ms_f64(),
                j.p95.as_ms_f64(),
                j.stability
                    .map_or_else(|| "n/a".to_string(), |s| format!("{s:.3}"))
            );
        }
    }
    Ok(())
}
