//! Quickstart: profile a small GPT-3 deployment, replay it with
//! Lumos, and check the replay error — the paper's core loop.
//!
//! Run with: `cargo run --release --example quickstart`

use lumos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-layer slice of GPT-3 15B on 8 GPUs (TP=2, PP=2, DP=2).
    let model = ModelConfig::custom("GPT-3 15B (4-layer slice)", 4, 6144, 12288, 48, 128);
    let setup = TrainingSetup::new(model, Parallelism::new(2, 2, 2)?);
    println!("configuration: {}", setup.label());
    println!(
        "  {} parameters, {} GPUs, {} micro-batches\n",
        setup.model.num_params(),
        setup.parallelism.world_size(),
        setup.batch.num_microbatches
    );

    // Profile one iteration on the ground-truth engine. On a real
    // cluster this would be a PyTorch Kineto JSON loaded with
    // `lumos::trace::from_chrome_json`.
    let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(7));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "profiled iteration: {:.2} ms, {} events across {} ranks",
        profiled.makespan.as_ms_f64(),
        profiled.trace.total_events(),
        profiled.trace.world_size()
    );

    // Build the execution graph and replay it (paper §3.3 + §3.5).
    let lumos = Lumos::new();
    let graph = lumos.build_graph(&profiled.trace)?;
    let stats = graph.stats();
    println!(
        "execution graph: {} tasks, {} edges ({} inter-stream, {} collective instances)",
        stats.tasks,
        stats.total_edges(),
        stats.inter_stream,
        stats.collective_instances
    );

    let replayed = lumos.replay(&profiled.trace)?;
    println!(
        "replayed: {:.2} ms (error vs profiled: {:.2}%)",
        replayed.makespan().as_ms_f64(),
        replayed.makespan().relative_error(profiled.makespan) * 100.0
    );
    println!("breakdown: {}", replayed.breakdown());

    // Compare with the dPRO baseline.
    let dpro = Dpro::new().replay(&profiled.trace)?;
    println!(
        "dPRO replay: {:.2} ms (error {:.2}%) — optimistic, as the paper reports",
        dpro.makespan().as_ms_f64(),
        dpro.makespan().relative_error(profiled.makespan) * 100.0
    );

    // Export the simulated trace for chrome://tracing.
    let json = lumos::trace::to_chrome_json(&replayed.trace, &Default::default());
    std::fs::write("/tmp/lumos_quickstart_replay.json", json)?;
    println!("\nwrote /tmp/lumos_quickstart_replay.json (open in chrome://tracing)");
    Ok(())
}
