//! Bottleneck hunting and operator-level what-if studies (paper §5):
//! find the kernels dominating an iteration, then ask "how much would
//! the iteration improve if X ran twice as fast?" — before
//! implementing any optimization.
//!
//! Run with: `cargo run --release --example whatif_bottlenecks`

use lumos::core::analysis::{bottleneck_kernels, critical_path};
use lumos::core::manipulate::whatif;
use lumos::core::simulate;
use lumos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::custom("whatif-model", 6, 4096, 16384, 32, 128);
    let setup = TrainingSetup::new(model, Parallelism::new(2, 1, 2)?);
    let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(3));
    let profiled = cluster.profile_iteration(0)?;

    let lumos = Lumos::new();
    let replayed = lumos.replay(&profiled.trace)?;
    let baseline = replayed.makespan();
    println!("baseline iteration: {:.2} ms\n", baseline.as_ms_f64());

    // Where does the time go?
    println!("top kernels by total device time:");
    for (name, total, count) in bottleneck_kernels(&replayed.graph, &replayed.result, 5) {
        println!(
            "  {:<40} {:>10.2} ms  ({count} launches)",
            name,
            total.as_ms_f64()
        );
    }
    let cp = critical_path(&replayed.graph, &replayed.result);
    println!(
        "\ncritical path: {} steps — compute {:.1} ms, comm {:.1} ms, host {:.1} ms, idle {:.1} ms",
        cp.len(),
        cp.compute.as_ms_f64(),
        cp.comm.as_ms_f64(),
        cp.host.as_ms_f64(),
        cp.idle.as_ms_f64()
    );

    // What-if studies: apply each speedup to a fresh graph and
    // re-simulate (paper: "how much the overall runtime would be
    // reduced if a kernel ran twice as fast").
    println!("\nwhat-if studies (2x speedups):");
    type Edit = Box<dyn Fn(&mut lumos::core::ExecutionGraph) -> usize>;
    let scenarios: Vec<(&str, Edit)> = vec![
        ("GEMMs 2x faster", Box::new(|g| whatif::scale_gemms(g, 0.5))),
        (
            "network 2x faster",
            Box::new(|g| whatif::scale_comms(g, 0.5)),
        ),
        (
            "host dispatch 2x faster",
            Box::new(|g| whatif::scale_host(g, 0.5)),
        ),
    ];
    for (label, apply) in scenarios {
        let mut graph = lumos.build_graph(&profiled.trace)?;
        let touched = apply(&mut graph);
        let sim = simulate(&graph, &SimOptions::default())?;
        let speedup = baseline.as_secs_f64() / sim.makespan().as_secs_f64();
        println!(
            "  {:<28} -> {:>8.2} ms  ({speedup:.2}x end-to-end, {touched} tasks touched)",
            label,
            sim.makespan().as_ms_f64()
        );
    }
    println!("\n(the most valuable optimization is the one with the largest end-to-end factor,\n not the largest kernel count — overlap absorbs some improvements)");
    Ok(())
}
