//! Architecture exploration: estimate iteration time for model
//! variants (layers, width) from one profiled trace — the paper's
//! Figure 8 workflow ("how will changes to the model architecture
//! impact performance?").
//!
//! Run with: `cargo run --release --example arch_search`

use lumos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: an 8-layer, d=2048 research model on 4 GPUs.
    let model = ModelConfig::custom("base-8L-2048d", 8, 2048, 8192, 16, 128);
    let base = TrainingSetup::new(model, Parallelism::new(1, 2, 2)?);
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(23));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "base {}: {:.2} ms/iter, {:.2}B params\n",
        base.label(),
        profiled.makespan.as_ms_f64(),
        base.model.num_params() as f64 / 1e9
    );

    let lumos = Lumos::new();
    let variants: Vec<(&str, Vec<Transform>)> = vec![
        ("deeper (12 layers)", vec![Transform::NumLayers { layers: 12 }]),
        ("deeper (16 layers)", vec![Transform::NumLayers { layers: 16 }]),
        (
            "wider (d=3072)",
            vec![Transform::HiddenSize {
                hidden: 3072,
                ffn: 12288,
            }],
        ),
        (
            "wider (d=4096)",
            vec![Transform::HiddenSize {
                hidden: 4096,
                ffn: 16384,
            }],
        ),
        (
            "deeper + wider",
            vec![
                Transform::NumLayers { layers: 12 },
                Transform::HiddenSize {
                    hidden: 3072,
                    ffn: 12288,
                },
            ],
        ),
    ];

    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "variant", "params", "iter (ms)", "ms per Gparam"
    );
    for (label, transforms) in variants {
        let prediction = lumos.predict(
            &profiled.trace,
            &base,
            &transforms,
            AnalyticalCostModel::h100(),
        )?;
        let params = prediction.setup.model.num_params() as f64 / 1e9;
        let iter_ms = prediction.makespan().as_ms_f64();
        println!(
            "{label:<22} {params:>9.2}B {iter_ms:>12.2} {:>14.2}",
            iter_ms / params
        );
    }
    println!("\n(each row predicted from the single base trace via graph manipulation;\n shape-changed GEMMs and collectives re-priced by the cost model)");
    Ok(())
}
