//! Architecture exploration: estimate iteration time for model
//! variants (layers, width) from one profiled trace — the paper's
//! Figure 8 workflow ("how will changes to the model architecture
//! impact performance?") driven by the `lumos-search` engine's
//! architecture axis.
//!
//! Run with: `cargo run --release --example arch_search`

use lumos::prelude::*;
use lumos::search::ArchPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: an 8-layer, d=2048 research model on 4 GPUs.
    let model = ModelConfig::custom("base-8L-2048d", 8, 2048, 8192, 16, 128);
    let base = TrainingSetup::new(model, Parallelism::new(1, 2, 2)?);
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(23));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "base {}: {:.2} ms/iter, {:.2}B params\n",
        base.label(),
        profiled.makespan.as_ms_f64(),
        base.model.num_params() as f64 / 1e9
    );

    // The variant grid: every (architecture × deployment) combination
    // is one candidate; the engine prunes the ones that no longer fit
    // and ranks the rest. The base shape is included so variants are
    // always compared against it under the same ranking.
    let spec = SpaceSpec::deployment_grid(&[1], &[2, 4], &[1, 2])
        .with_microbatches(&[4, 8])
        .with_arch(vec![
            ArchPoint::new("base-8L-2048d", 8, 2048, 8192),
            ArchPoint::new("deeper-12L", 12, 2048, 8192),
            ArchPoint::new("deeper-16L", 16, 2048, 8192),
            ArchPoint::new("wider-3072d", 8, 3072, 12288),
            ArchPoint::new("wider-4096d", 8, 4096, 16384),
            ArchPoint::new("deep+wide", 12, 3072, 12288),
        ])
        .with_max_gpus(16);
    println!(
        "searching {} (arch × deployment) candidates ...",
        spec.grid_upper_bound(&base)
    );

    // `top_k: None` keeps every evaluated candidate: the per-variant
    // analysis below walks the full ranking, not just the table.
    let opts = SearchOptions {
        objective: Objective::Makespan,
        top_k: None,
        ..SearchOptions::default()
    };
    let report = search_space(
        &profiled.trace,
        &base,
        &spec,
        &opts,
        AnalyticalCostModel::h100(),
    )?;
    println!("{}", report.format_top(12));

    // Per-variant cost efficiency, from the same report: best
    // deployment found for each architecture, priced per Gparam.
    println!(
        "{:<16} {:>10} {:>12} {:>14}",
        "variant", "params", "iter (ms)", "ms per Gparam"
    );
    let mut seen = std::collections::HashSet::new();
    for r in &report.results {
        let name = r.setup.model.name.clone();
        if !seen.insert(name.clone()) {
            continue; // keep only each architecture's best deployment
        }
        let params = r.setup.model.num_params() as f64 / 1e9;
        let iter_ms = r.makespan.as_ms_f64();
        println!(
            "{name:<16} {params:>9.2}B {iter_ms:>12.2} {:>14.2}",
            iter_ms / params
        );
    }
    println!("\n(each row predicted from the single base trace via graph manipulation;\n shape-changed GEMMs and collectives re-priced by the shared cost model)");
    Ok(())
}
