//! Capacity planning: predict how a training job scales across
//! parallelism configurations *from one profiled trace* — the paper's
//! "which parallelism configuration will deliver the best results?"
//! what-if question (§3.4), answered without re-running on hardware.
//!
//! Run with: `cargo run --release --example parallelism_sweep`

use lumos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: an 8-layer model on 8 GPUs (TP=2, PP=2, DP=2).
    let model = ModelConfig::custom("sweep-model", 8, 4096, 16384, 32, 128);
    let base = TrainingSetup::new(model, Parallelism::new(2, 2, 2)?);

    println!("profiling base configuration {} ...", base.label());
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(11));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "base iteration: {:.2} ms on {} GPUs\n",
        profiled.makespan.as_ms_f64(),
        base.parallelism.world_size()
    );

    // Sweep deployment candidates by manipulating the base trace.
    let lumos = Lumos::new();
    let candidates: Vec<(&str, Vec<Transform>)> = vec![
        ("2x2x4 (2x DP)", vec![Transform::DataParallel { dp: 4 }]),
        ("2x2x8 (4x DP)", vec![Transform::DataParallel { dp: 8 }]),
        ("2x4x2 (2x PP)", vec![Transform::PipelineParallel { pp: 4 }]),
        (
            "2x4x4 (2x PP + 2x DP)",
            vec![
                Transform::PipelineParallel { pp: 4 },
                Transform::DataParallel { dp: 4 },
            ],
        ),
        (
            "2x8x2 (4x PP)",
            vec![Transform::PipelineParallel { pp: 8 }],
        ),
    ];

    println!(
        "{:<24} {:>6} {:>12} {:>16} {:>14}",
        "candidate", "GPUs", "iter (ms)", "tokens/s/GPU", "bubble frac"
    );
    let tokens_per_iter = |s: &TrainingSetup| {
        s.batch.tokens_per_microbatch() * s.batch.num_microbatches as u64 * s.parallelism.dp as u64
    };
    for (label, transforms) in candidates {
        let prediction = lumos.predict(
            &profiled.trace,
            &base,
            &transforms,
            AnalyticalCostModel::h100(),
        )?;
        let setup = &prediction.setup;
        let secs = prediction.makespan().as_secs_f64();
        let tput = tokens_per_iter(setup) as f64 / secs / setup.parallelism.world_size() as f64;
        let schedule = PipelineSchedule::generate(
            setup.schedule,
            setup.parallelism.pp,
            setup.batch.num_microbatches,
        )?;
        println!(
            "{label:<24} {:>6} {:>12.2} {:>16.0} {:>14.3}",
            setup.parallelism.world_size(),
            prediction.makespan().as_ms_f64(),
            tput,
            schedule.bubble_fraction()
        );
    }
    println!("\n(all predictions derived from the single base trace — no new runs)");

    // Schedule-level what-if: how much pipeline bubble would
    // interleaved 1F1B (Megatron's virtual pipeline) recover at pp=4,
    // and what does it cost in extra pipeline communication?
    use lumos::model::InterleavedSchedule;
    let pp = 4u32;
    let m = 8u32;
    let plain = PipelineSchedule::generate(ScheduleKind::OneFOneB, pp, m)?;
    println!("\ninterleaved-1F1B analysis (pp={pp}, {m} micro-batches):");
    println!(
        "  {:<12} {:>12} {:>18}",
        "schedule", "bubble frac", "pp-comm multiplier"
    );
    println!("  {:<12} {:>12.3} {:>18.2}", "plain 1F1B", plain.bubble_fraction(), 1.0);
    for v in [2u32, 4] {
        let inter = InterleavedSchedule::generate(pp, v, m)?;
        println!(
            "  {:<12} {:>12.3} {:>18.2}",
            format!("v={v} chunks"),
            inter.bubble_fraction(),
            inter.comm_amplification()
        );
    }
    println!(
        "  (interleaving divides the bubble by v but multiplies pipeline\n\
         transfers; profitable when bubbles dominate transfers — deep\n\
         pipelines with few micro-batches)"
    );
    Ok(())
}
