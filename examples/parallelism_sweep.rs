//! Capacity planning: rank *every* parallelism configuration reachable
//! from one profiled trace — the paper's "which parallelism
//! configuration will deliver the best results?" what-if question
//! (§3.4), answered by the `lumos-search` engine instead of a
//! hand-written candidate list.
//!
//! Run with: `cargo run --release --example parallelism_sweep`

use lumos::prelude::*;
use lumos::search::ArchPoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base: an 8-layer model on 8 GPUs (TP=2, PP=2, DP=2).
    let model = ModelConfig::custom("sweep-model", 8, 4096, 16384, 32, 128);
    let base = TrainingSetup::new(model, Parallelism::new(2, 2, 2)?);

    println!("profiling base configuration {} ...", base.label());
    let cluster = GroundTruthCluster::new(&base, AnalyticalCostModel::h100())?
        .with_jitter(JitterModel::realistic(11));
    let profiled = cluster.profile_iteration(0)?;
    println!(
        "base iteration: {:.2} ms on {} GPUs\n",
        profiled.makespan.as_ms_f64(),
        base.parallelism.world_size()
    );

    // The whole deployment lattice up to 64 GPUs, in one spec: the
    // engine streams it (no materialized grid), drops configurations
    // that cannot divide the model or would OOM an H100, skips ones a
    // memoized lower bound proves dominated, prices the rest in
    // parallel from the single base trace, and ranks by per-GPU
    // throughput. `top_k` caps retention, so the same code handles
    // million-point spaces with memory proportional to the report.
    let spec = SpaceSpec::deployment_grid(&[2, 4], &[2, 4, 8], &[1, 2, 4, 8])
        .with_microbatches(&[4, 8, 16])
        .with_interleave(&[1, 2])
        .with_max_gpus(64);
    println!(
        "searching {} grid points (≤64 GPUs, 1F1B and interleaved) ...",
        spec.grid_upper_bound(&base)
    );

    let opts = SearchOptions {
        objective: Objective::PerGpuThroughput,
        top_k: Some(10),
        ..SearchOptions::default()
    };
    let report = search_space(
        &profiled.trace,
        &base,
        &spec,
        &opts,
        AnalyticalCostModel::h100(),
    )?;
    println!("{}", report.format_top(10));
    println!(
        "(all predictions derived from the single base trace — {} fully simulated, \
         {} skipped by the analytic bound)",
        report.stats.evaluated, report.stats.bound_skipped
    );

    // The same engine answers the fastest-iteration question too —
    // note how the winner shifts once per-GPU efficiency stops
    // mattering.
    let fastest = search_space(
        &profiled.trace,
        &base,
        &spec,
        &SearchOptions {
            objective: Objective::Makespan,
            top_k: Some(1),
            ..SearchOptions::default()
        },
        AnalyticalCostModel::h100(),
    )?;
    if let Some(best) = fastest.best() {
        println!(
            "\nfastest-iteration winner instead: {} ({} GPUs, {:.2} ms)",
            best.label,
            best.world_size(),
            best.makespan.as_ms_f64()
        );
    }

    // Architecture axes ride along in the same spec (Figure 8 style):
    // a deeper variant joins the sweep without a second profile.
    let with_arch = SpaceSpec::deployment_grid(&[2], &[2, 4], &[2])
        .with_microbatches(&[8])
        .with_arch(vec![ArchPoint::new("12L", 12, 4096, 16384)])
        .with_max_gpus(64);
    let arch_report = search_space(
        &profiled.trace,
        &base,
        &with_arch,
        &opts,
        AnalyticalCostModel::h100(),
    )?;
    println!("\ndeeper-variant sweep:\n{}", arch_report.format_top(5));
    Ok(())
}
