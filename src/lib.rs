//! # Lumos
//!
//! A trace-driven performance modeling and estimation toolkit for
//! large-scale LLM training — a from-scratch Rust reproduction of
//! *"Lumos: Efficient Performance Modeling and Estimation for
//! Large-scale LLM Training"* (MLSys 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — Kineto-style traces, Chrome Trace Format I/O,
//!   breakdown / SM-utilization / queue-delay analytics;
//! * [`model`] — GPT-3 architectures, 3D parallelism, operator IR
//!   (training and inference), pipeline schedules (1F1B, GPipe,
//!   interleaved), memory estimation, and MFU accounting;
//! * [`cost`] — H100/A100 hardware specs and kernel/collective cost
//!   models (ring and tree algorithm families);
//! * [`cluster`] — the ground-truth multi-rank execution engine
//!   (production-cluster substitute) that emits traces, for training
//!   iterations and inference request batches;
//! * [`core`] — the paper's contribution: execution-graph
//!   construction, Algorithm 1 replay, and graph manipulation
//!   (DP/PP/TP/layers/width/sequence-length transforms and what-if
//!   studies);
//! * [`calib`] — versioned, serializable calibration artifacts: fit
//!   the lookup tables and block library from a trace once
//!   (`lumos calibrate`), then answer predict/search/replay/mfu
//!   queries from the artifact without re-ingesting the trace;
//! * [`dpro`] — the dPRO baseline replayer;
//! * [`serve`] — the persistent estimation daemon behind
//!   `lumos serve`: a calibration-artifact registry with atomic hot
//!   reload, a bounded worker pool with load shedding and per-request
//!   deadlines, and a line-delimited JSON protocol over TCP whose
//!   `predict`/`search` responses are byte-identical to the CLI's
//!   `--json` output (see `examples/serve_client.rs`);
//! * [`search`] — the parallel what-if configuration-search engine:
//!   space descriptors, streaming enumeration, memory-feasibility
//!   pre-pruning, memoized stage costs with analytic lower-bound
//!   skipping, bounded top-k reports over million-candidate spaces
//!   with NaN-safe ranking and typed infeasibility reasons, and an
//!   optional second phase that executes the finals through the
//!   discrete-event engine (simulation-refined re-ranking with
//!   analytic-vs-simulated deltas and jitter-robustness statistics).
//!
//! A command-line interface over the same workflow ships as the
//! `lumos` binary in the `lumos-cli` crate.
//!
//! # Quickstart
//!
//! ```
//! use lumos::prelude::*;
//!
//! // 1. Describe a training job (GPT-3-tiny on 2 GPUs for the test).
//! let setup = TrainingSetup::new(ModelConfig::tiny(), Parallelism::new(1, 2, 1)?);
//!
//! // 2. Profile one iteration on the ground-truth cluster — in real
//! //    use this is a PyTorch Kineto trace loaded via
//! //    `lumos::trace::from_chrome_json`.
//! let cluster = GroundTruthCluster::new(&setup, AnalyticalCostModel::h100())?
//!     .with_jitter(JitterModel::realistic(42));
//! let profiled = cluster.profile_iteration(0)?;
//!
//! // 3. Replay the trace through Lumos's execution graph + simulator.
//! let replayed = Lumos::new().replay(&profiled.trace)?;
//! let error = replayed.makespan().relative_error(profiled.makespan);
//! assert!(error < 0.05);
//!
//! // 4. Ask a what-if question: how would 2× data parallelism run?
//! let prediction = Lumos::new().predict(
//!     &profiled.trace,
//!     &setup,
//!     &[Transform::DataParallel { dp: 2 }],
//!     AnalyticalCostModel::h100(),
//! )?;
//! assert!(prediction.makespan() > lumos::trace::Dur::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lumos_calib as calib;
pub use lumos_cluster as cluster;
pub use lumos_core as core;
pub use lumos_cost as cost;
pub use lumos_dpro as dpro;
pub use lumos_model as model;
pub use lumos_search as search;
pub use lumos_serve as serve;
pub use lumos_trace as trace;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use lumos_calib::{CalibrationArtifact, TraceFingerprint};
    pub use lumos_cluster::{GroundTruthCluster, JitterModel, SimConfig};
    pub use lumos_core::manipulate::Transform;
    pub use lumos_core::{analysis, manipulate, Lumos, Replayed, SimOptions};
    pub use lumos_cost::{AnalyticalCostModel, CostModel, LookupCostModel};
    pub use lumos_dpro::Dpro;
    pub use lumos_model::{
        registry, BatchConfig, ModelConfig, Parallelism, PipelineSchedule, Schedule,
        ScheduleBuilder, ScheduleKind, TrainingSetup,
    };
    pub use lumos_search::{
        search as search_space, search_calibrated, Objective, SearchCalibration, SearchOptions,
        SearchReport, SpaceSpec,
    };
    pub use lumos_trace::{Breakdown, BreakdownExt, ClusterTrace, Dur, RankTrace, TraceEvent, Ts};
}
